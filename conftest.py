"""Repository-level pytest configuration.

Makes the package importable even when ``pip install -e .`` has not been run
(e.g. a fresh offline checkout): the ``src`` layout directory is appended to
``sys.path`` as a fallback.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
