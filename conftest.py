"""Repository-level pytest configuration.

Makes the package importable even when ``pip install -e .`` has not been run
(e.g. a fresh offline checkout): the ``src`` layout directory is appended to
``sys.path`` as a fallback.

Also registers the ``perf`` marker used by the microbenchmark suite under
``benchmarks/perf/``.  Perf tests measure wall-clock throughput, so they are
excluded from the default (tier-1) run and only collected when pytest is
invoked with ``--run-perf``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--run-perf", action="store_true", default=False,
        help="run the performance microbenchmarks in benchmarks/perf/ "
             "(excluded from the default test run)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance microbenchmark (deselected unless --run-perf is given)")
    config.addinivalue_line(
        "markers",
        "watchdog(seconds): override the per-test wall-clock limit enforced by "
        "the reliability/serving suites' watchdog fixture")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-perf"):
        return
    skip_perf = pytest.mark.skip(reason="perf benchmark; pass --run-perf to run")
    for item in items:
        # Only the explicit marker counts: the benchmarks/perf/ directory name
        # also appears in item.keywords, and the unmarked smoke tests that
        # live there must run in the default (tier-1) collection.
        if item.get_closest_marker("perf") is not None:
            item.add_marker(skip_perf)


# --------------------------------------------------------------------------- #
# Shared per-test wall-clock watchdog                                          #
# --------------------------------------------------------------------------- #
#: suites whose tests spawn processes / inject faults and must fail rather
#: than wedge the run when supervision breaks; relative to the repo root
_WATCHDOG_SUITES = (
    os.path.join("tests", "reliability"),
    os.path.join("tests", "serve_server"),
    os.path.join("tests", "experiments_orchestrator"),
)


@pytest.fixture(autouse=True)
def _suite_watchdog(request):
    """Per-test SIGALRM wall-clock limit for the process/chaos suites.

    Applies only to the suites in ``_WATCHDOG_SUITES`` (a no-op elsewhere, so
    plain unit tests pay nothing).  Override the 120s default per test with
    ``@pytest.mark.watchdog(seconds)``.
    """
    path = str(getattr(request.node, "fspath", ""))
    relative = os.path.relpath(path, os.path.dirname(__file__))
    if not relative.startswith(_WATCHDOG_SUITES):
        yield
        return
    from repro.reliability import watchdog

    marker = request.node.get_closest_marker("watchdog")
    seconds = float(marker.args[0]) if marker and marker.args else 120.0
    with watchdog(seconds, message=f"test {request.node.nodeid}"):
        yield
