"""``repro.reliability`` — deterministic faults, retries and durable I/O.

The systems counterpart to the paper's robustness claim: distribution shift
is handled by the models, *infrastructure* shift (partial writes, corrupt
artifacts, flaky I/O, mid-epoch crashes, poisoned requests) is handled here.

* :mod:`repro.reliability.faults` — seeded fault-injection harness
  (:class:`FaultPlan`, :func:`inject`, :func:`fault_point`) instrumenting the
  I/O, encoder, trainer-step and serving-flush call sites.
* :mod:`repro.reliability.retry` — :class:`RetryPolicy` with exponential
  backoff, experiment-seeded jitter and deadline budgets, wrapped around
  frozen-encoder calls and artifact reads.
* :mod:`repro.reliability.durable` — atomic temp-file + fsync + ``os.replace``
  writes and the SHA-256 checksums recorded in checkpoint headers, pipeline
  ``checksums.json`` and training snapshots.
* :mod:`repro.reliability.circuit` — :class:`CircuitBreaker`
  (closed/open/half-open with seeded probe jitter) converting a persistently
  failing dependency into fast :class:`CircuitOpen` rejections; the serving
  worker pool wraps the frozen-encoder dependency with one.
* :mod:`repro.reliability.watchdog` — ``SIGALRM`` wall-clock guard turning a
  hang into a readable :class:`WatchdogTimeout`; the chaos and server test
  suites run every test under one.

Downstream: :func:`repro.nn.save_checkpoint` / ``load_checkpoint`` refuse
corrupt archives, ``repro.serve`` artifacts verify end-to-end, and
``Trainer.snapshot``/``resume`` give crash-resumable training (see the
``tests/reliability/`` chaos suite).
"""

from repro.reliability.circuit import CircuitBreaker, CircuitOpen
from repro.reliability.durable import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    fsync_directory,
    sha256_bytes,
    sha256_file,
)
from repro.reliability.faults import (
    FaultEvent,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_point,
    inject,
    install_plan,
)
from repro.reliability.retry import DeadlineExceeded, RetryPolicy, default_read_policy
from repro.reliability.watchdog import WatchdogTimeout, watchdog

__all__ = [
    "FaultPlan", "FaultRule", "FaultEvent", "InjectedFault",
    "inject", "fault_point", "active_plan", "install_plan",
    "RetryPolicy", "DeadlineExceeded", "default_read_policy",
    "CircuitBreaker", "CircuitOpen",
    "watchdog", "WatchdogTimeout",
    "atomic_writer", "atomic_write_bytes", "atomic_write_text",
    "sha256_bytes", "sha256_file", "fsync_directory",
]
