"""Deterministic fault injection: make failures a first-class, testable input.

The production story of this repository — checkpoints, pipeline artifacts,
serving queues — is only as strong as its behaviour under failure, and
failures that cannot be reproduced cannot be tested.  This module provides a
seeded, deterministic fault-injection harness:

* :func:`fault_point` — an instrumentation hook placed at the durability- and
  availability-critical call sites (artifact reads/writes, frozen-encoder
  calls, trainer batch steps, serving flushes).  With no plan installed it is
  a single global load and ``is None`` check — measurably free (pinned by
  ``benchmarks/perf/test_perf_reliability.py``).
* :class:`FaultPlan` — a schedule of :class:`FaultRule`\\ s saying *which* site
  fails, *when* (call count, probability drawn from the plan's seeded RNG, or
  a predicate over the site's detail payload) and *how* (raise or stall).
* :func:`inject` — a context manager installing a plan for the duration of a
  ``with`` block; the chaos suite under ``tests/reliability/`` is built on it.

Every decision a plan makes is derived from its constructor seed and the
deterministic order of ``fault_point`` calls, so a chaos test that fails
replays identically.
"""

from __future__ import annotations

import fnmatch
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

#: The currently installed plan; ``None`` keeps fault_point at zero cost.
_ACTIVE: "FaultPlan | None" = None


class InjectedFault(RuntimeError):
    """The error raised by a firing fault rule (unless the rule overrides it)."""


@dataclass
class FaultRule:
    """One scheduled failure: where, when and how.

    ``site`` is an ``fnmatch`` pattern against the fault-point name
    (``"io.*"`` matches every I/O site).  The rule starts firing after the
    matching call with index ``after`` (0-based count of *matching* calls),
    fires at most ``times`` times (``None`` = unlimited) and, when
    ``probability < 1``, flips a coin from the owning plan's seeded RNG.
    ``when`` optionally gates on the site's detail payload (e.g. *fail any
    serving batch containing this text*), which is how data-dependent poison
    is modelled deterministically.
    """

    site: str
    action: str = "raise"                      # "raise" | "stall"
    error: BaseException | type[BaseException] | None = None
    delay_s: float = 0.0
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    when: Callable[[dict], bool] | None = None
    #: mutable counters (owned by the plan, not user input)
    seen: int = 0
    fired: int = 0


@dataclass
class FaultEvent:
    """One firing, recorded on the plan for assertions and diagnostics."""

    site: str
    action: str
    call_index: int
    rule_index: int


class FaultPlan:
    """A seeded, deterministic schedule of injected failures."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        self.events: list[FaultEvent] = []
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    # Authoring                                                            #
    # ------------------------------------------------------------------ #
    def fail(self, site: str, *, error: BaseException | type[BaseException] | None = None,
             after: int = 0, times: int | None = 1, probability: float = 1.0,
             when: Callable[[dict], bool] | None = None) -> "FaultPlan":
        """Schedule matching calls to raise (``InjectedFault`` by default)."""
        self.rules.append(FaultRule(site=site, action="raise", error=error,
                                    after=after, times=times,
                                    probability=probability, when=when))
        return self

    def stall(self, site: str, *, delay_s: float, after: int = 0,
              times: int | None = 1, probability: float = 1.0,
              when: Callable[[dict], bool] | None = None) -> "FaultPlan":
        """Schedule matching calls to sleep ``delay_s`` before proceeding."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self.rules.append(FaultRule(site=site, action="stall", delay_s=delay_s,
                                    after=after, times=times,
                                    probability=probability, when=when))
        return self

    def reset(self) -> None:
        """Re-arm every rule and reseed the probability stream (exact replay)."""
        for rule in self.rules:
            rule.seen = 0
            rule.fired = 0
        self.events.clear()
        self._rng = np.random.default_rng(self.seed)

    @property
    def fired(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    # Firing (called from fault_point)                                     #
    # ------------------------------------------------------------------ #
    def _on(self, site: str, detail: dict) -> None:
        for index, rule in enumerate(self.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            if rule.when is not None and not rule.when(detail):
                continue
            call_index = rule.seen
            rule.seen += 1
            if call_index < rule.after:
                continue
            if rule.times is not None and rule.fired >= rule.times:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fired += 1
            self.events.append(FaultEvent(site=site, action=rule.action,
                                          call_index=call_index, rule_index=index))
            if rule.action == "stall":
                time.sleep(rule.delay_s)
                continue
            error = rule.error
            if error is None:
                raise InjectedFault(
                    f"injected fault at '{site}' (matching call #{call_index})")
            raise error() if isinstance(error, type) else error


def fault_point(site: str, **detail) -> None:
    """Instrumentation hook; a no-op unless a plan is installed via :func:`inject`.

    ``detail`` keyword arguments become the payload rules can predicate on
    (e.g. ``fault_point("serve.encode", texts=tuple(texts))``).
    """
    if _ACTIVE is None:
        return
    _ACTIVE._on(site, detail)


def active_plan() -> "FaultPlan | None":
    """The plan currently installed (``None`` outside :func:`inject`)."""
    return _ACTIVE


def install_plan(plan: "FaultPlan | None") -> None:
    """Install ``plan`` unconditionally (or clear it with ``None``).

    :func:`inject` is the right tool inside one process — it scopes the plan
    to a ``with`` block and refuses to nest.  Worker *processes* have no such
    scope: the serving pool ships a pickled plan to each spawned worker, whose
    entire lifetime is the chaos experiment, so the worker installs it once at
    startup and never uninstalls it.  Rule counters start fresh in every
    worker (each gets its own copy of the plan), which is what makes
    per-worker schedules like "die on your 3rd batch" deterministic.
    """
    global _ACTIVE
    _ACTIVE = plan


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the ``with`` block.

    Plans do not nest — chaos runs compose rules into one plan instead, which
    keeps the call-count bookkeeping unambiguous.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already installed; inject() does not nest")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
