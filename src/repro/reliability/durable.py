"""Atomic, durable, checksummed file writes.

Every durability-critical artifact in the repository (checkpoints, pipeline
directories, results JSON, training snapshots, benchmark records) goes through
this module.  The contract:

* **Atomic**: content is written to a temporary file in the destination
  directory, flushed, ``fsync``\\ ed and then ``os.replace``\\ d over the target
  — a crash mid-write leaves either the old file or the new file, never a
  truncated hybrid.  The containing directory is fsynced after the rename so
  the *name* is durable too.
* **Checksummed**: :func:`sha256_bytes` / :func:`sha256_file` provide the
  digests recorded in checkpoint headers, pipeline ``checksums.json`` and
  snapshot metadata; readers verify them and refuse corrupt artifacts with a
  readable error instead of a raw ``zipfile``/JSON traceback.
* **Injectable**: the write path carries an ``io.write`` fault point, so the
  chaos suite can prove that a crash at any moment never leaves partial state
  behind.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator

from repro.reliability.faults import fault_point


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | os.PathLike, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of the file at ``path`` (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def fsync_directory(path: str | os.PathLike) -> None:
    """Flush directory metadata so a rename within it survives a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: str | os.PathLike, mode: str = "wb",
                  encoding: str | None = None, fsync: bool = True) -> Iterator[IO]:
    """Yield a handle whose content replaces ``path`` atomically on success.

    On any exception inside the block the temporary file is removed and the
    destination is untouched.  ``mode`` must be a write mode (``"w"``/``"wb"``);
    text mode defaults to UTF-8.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_writer needs a write mode, got {mode!r}")
    path = os.fspath(path)
    fault_point("io.write", path=path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, mode, encoding=("utf-8" if encoding is None and "b" not in mode
                                           else encoding)) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str | os.PathLike, data: bytes,
                       fsync: bool = True) -> str:
    """Atomically write ``data`` to ``path``; returns its SHA-256 hex digest."""
    with atomic_writer(path, "wb", fsync=fsync) as handle:
        handle.write(data)
    return sha256_bytes(data)


def atomic_write_text(path: str | os.PathLike, text: str,
                      fsync: bool = True) -> str:
    """Atomically write UTF-8 ``text`` to ``path``; returns its SHA-256 digest."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
