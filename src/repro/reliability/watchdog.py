"""Wall-clock watchdog: turn a hang into a readable failure.

A deadlocked worker, a queue that never drains or a signal handler that never
fires are the worst kind of test failure — tier-1 just stops, with no message
and no traceback.  :func:`watchdog` bounds a block of code by wall-clock time
using ``SIGALRM``: if the block is still running when the timer fires, a
:class:`WatchdogTimeout` is raised *inside* it with a readable message, so
pytest reports a normal failure (with the hanging frame in the traceback)
instead of hanging forever.

Used by the shared autouse fixture in the repository-root ``conftest.py``,
which arms it for ``tests/reliability``, ``tests/serve_server`` and
``tests/experiments_orchestrator`` (the suites that spawn processes and
block on queues); individual tests override the 120 s default with
``@pytest.mark.watchdog(seconds)``.  The orchestrator also uses it directly
to bound serial cell execution (``OrchestratorConfig(cell_timeout_s=...)``).
``SIGALRM`` only exists on Unix and only the main thread can receive it; off
the main thread (or on platforms without ``setitimer``) the watchdog degrades
to a no-op rather than failing the caller.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator


class WatchdogTimeout(RuntimeError):
    """The watchdogged block exceeded its wall-clock budget."""


def _can_arm() -> bool:
    return (hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def watchdog(seconds: float, message: str = "") -> Iterator[None]:
    """Raise :class:`WatchdogTimeout` if the block runs longer than ``seconds``.

    The previous ``SIGALRM`` handler and any pending itimer are restored on
    exit, so nesting works (the inner watchdog temporarily masks the outer
    one — the outer budget keeps counting and fires on restore if overrun).
    """
    if seconds <= 0:
        raise ValueError("watchdog budget must be positive")
    if not _can_arm():  # pragma: no cover - platform/thread dependent
        yield
        return

    def on_alarm(signum, frame):
        detail = f" ({message})" if message else ""
        raise WatchdogTimeout(
            f"wall-clock watchdog fired after {seconds:g}s{detail}; "
            "the block is deadlocked or far over budget")

    previous_handler = signal.signal(signal.SIGALRM, on_alarm)
    previous_delay, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, previous_delay or 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
