"""Circuit breaking: stop hammering a dependency that has stopped answering.

A :class:`repro.reliability.RetryPolicy` absorbs *transient* faults — one
flaky read costs one backoff sleep.  A *persistently* failing dependency (a
remote encoder backend that is down, a filesystem that went read-only) turns
that same policy into a liability: every caller burns its full retry budget
and deadline discovering the same outage.  :class:`CircuitBreaker` sits in
front of such a dependency and converts sustained failure into fast, readable
rejections:

* **closed** (healthy): calls pass through; consecutive failures are counted.
* **open** (tripped): after ``failure_threshold`` consecutive failures every
  call raises :class:`CircuitOpen` immediately — no call, no retry, no sleep —
  until a cooldown elapses.
* **half-open** (probing): after the cooldown exactly one call is let through
  as a probe.  Success closes the circuit; failure re-opens it for another
  cooldown.

The cooldown is jittered multiplicatively from a *seeded* RNG (derived from
:func:`repro.utils.get_global_seed` unless an explicit seed is given), the
same determinism contract as :class:`~repro.reliability.RetryPolicy` and
:class:`~repro.reliability.FaultPlan`: a chaos run that trips the breaker
replays its probe schedule exactly.

The serving tier (``repro.serve.server``) installs a breaker around the
frozen-encoder dependency in every worker, so a dead encoder backend degrades
the pool to fast rejections instead of deadline-burning retries — see
``tests/reliability/test_circuit.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.utils import get_global_seed


class CircuitOpen(RuntimeError):
    """Raised instead of calling through a circuit that is currently open."""


class CircuitBreaker:
    """Count consecutive failures of a dependency; trip, cool down, probe.

    Parameters
    ----------
    name:
        Used in :class:`CircuitOpen` messages ("circuit 'encoder' is open").
    failure_threshold:
        Consecutive failures (while closed) that trip the circuit.
    cooldown_s:
        Base open-state duration before a probe is allowed.
    probe_jitter:
        +/- fraction of each cooldown drawn from the seeded jitter stream, so
        fleets of breakers do not probe in lockstep.
    failure_on:
        Exception classes counted as dependency failures (and re-raised).
        Anything else propagates without touching the failure count.
    seed:
        Jitter stream seed; ``None`` derives it from the experiment-wide seed.
    clock:
        Injectable monotonic clock (tests step it manually).
    """

    def __init__(self, name: str = "dependency", failure_threshold: int = 5,
                 cooldown_s: float = 0.5, probe_jitter: float = 0.25,
                 failure_on: tuple[type[BaseException], ...] = (Exception,),
                 seed: int | None = None,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if not 0.0 <= probe_jitter <= 1.0:
            raise ValueError("probe_jitter must be in [0, 1]")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.probe_jitter = probe_jitter
        self.failure_on = failure_on
        self._clock = clock
        self._rng = np.random.default_rng(
            seed if seed is not None else get_global_seed())
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._current_cooldown = 0.0
        self._probe_in_flight = False
        self._last_error = ""
        #: lifetime counters, reported by :meth:`snapshot`
        self.calls = 0
        self.successes = 0
        self.failures = 0
        self.rejections = 0
        self.opened = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self._current_cooldown):
            self._state = "half_open"
            self._probe_in_flight = False

    def _open_locked(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        jitter = 1.0 + self.probe_jitter * (2.0 * self._rng.random() - 1.0)
        self._current_cooldown = self.cooldown_s * jitter
        self._probe_in_flight = False
        self.opened += 1

    # ------------------------------------------------------------------ #
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` through the breaker.

        Raises :class:`CircuitOpen` without calling ``fn`` while the circuit
        is open (or while another probe is already in flight half-open).
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == "open":
                self.rejections += 1
                remaining = self._current_cooldown - (self._clock() - self._opened_at)
                raise CircuitOpen(
                    f"circuit '{self.name}' is open after "
                    f"{self.failure_threshold} consecutive failures "
                    f"(last: {self._last_error}); next probe in "
                    f"{max(remaining, 0.0):.3f}s")
            if self._state == "half_open":
                if self._probe_in_flight:
                    self.rejections += 1
                    raise CircuitOpen(
                        f"circuit '{self.name}' is half-open with a probe "
                        "already in flight; rejecting until it resolves")
                self._probe_in_flight = True
            self.calls += 1
        try:
            result = fn(*args, **kwargs)
        except self.failure_on as error:
            with self._lock:
                self.failures += 1
                self._last_error = f"{type(error).__name__}: {error}"
                if self._state == "half_open":
                    self._open_locked()          # failed probe: re-open
                else:
                    self._consecutive_failures += 1
                    if self._consecutive_failures >= self.failure_threshold:
                        self._open_locked()
            raise
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._state = "closed"
                self._probe_in_flight = False
        return result

    def wrap(self, fn: Callable) -> Callable:
        """A callable running ``fn`` through this breaker."""

        def wrapped(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        return wrapped

    def reset(self) -> None:
        """Force the circuit closed and clear the failure count (not counters)."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def snapshot(self) -> dict:
        """A JSON-able view for health endpoints and diagnostics."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "calls": self.calls,
                "successes": self.successes,
                "failures": self.failures,
                "rejections": self.rejections,
                "opened": self.opened,
                "last_error": self._last_error,
            }
