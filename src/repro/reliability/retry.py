"""Retry with exponential backoff, deterministic jitter and deadline budgets.

Transient faults (a stalled filesystem, an interrupted read, a flaky remote
encoder backend) should cost a retry, not a training run.  :class:`RetryPolicy`
wraps any callable with:

* up to ``attempts`` tries, re-raising the last error when exhausted;
* exponential backoff (``base_delay_s * multiplier**attempt``, capped at
  ``max_delay_s``) with multiplicative jitter drawn from a *seeded* RNG —
  derived from :func:`repro.utils.get_global_seed` unless an explicit seed is
  given — so two identical runs back off identically.  The jitter stream is
  the policy's own; it never consumes the experiment fallback stream, so
  retries cannot perturb training randomness;
* an optional wall-clock ``deadline_s`` budget: when the next sleep would
  overrun it, :class:`DeadlineExceeded` is raised instead of sleeping;
* ``retry_on`` / ``give_up_on`` exception filters — corrupt-state errors
  (:class:`repro.nn.CheckpointError`, ``PipelineError``) are *not* retried by
  the default read policy: corruption is permanent, retrying it only delays
  the readable diagnostic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.utils import get_global_seed


class DeadlineExceeded(TimeoutError):
    """The retry deadline budget ran out before the call succeeded."""


@dataclass
class RetryPolicy:
    """Call a function until it succeeds, with seeded exponential backoff."""

    attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    #: +/- fraction of each delay drawn from the seeded jitter stream
    jitter: float = 0.25
    deadline_s: float | None = None
    retry_on: tuple[type[BaseException], ...] = (OSError, TimeoutError)
    give_up_on: tuple[type[BaseException], ...] = ()
    #: ``None`` derives the jitter stream from the experiment-wide seed
    seed: int | None = None
    #: injectable for tests (and for event-loop front-ends)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = np.random.default_rng(
            self.seed if self.seed is not None else get_global_seed())

    # ------------------------------------------------------------------ #
    def delays(self) -> Iterator[float]:
        """The jittered backoff schedule (one delay per retry, not per attempt)."""
        for attempt in range(self.attempts - 1):
            delay = min(self.base_delay_s * self.multiplier ** attempt,
                        self.max_delay_s)
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
            yield delay

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy; return its result."""
        start = time.monotonic()
        schedule = self.delays()
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except self.give_up_on:
                raise
            except self.retry_on as error:
                if attempt == self.attempts - 1:
                    raise
                delay = next(schedule)
                if (self.deadline_s is not None
                        and time.monotonic() - start + delay > self.deadline_s):
                    raise DeadlineExceeded(
                        f"retry deadline of {self.deadline_s:.3f}s exhausted after "
                        f"{attempt + 1} attempt(s); last error: {error}") from error
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def wrap(self, fn: Callable) -> Callable:
        """A callable running ``fn`` under this policy (for extractor plumbing)."""

        def wrapped(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        return wrapped


#: Default policy for artifact reads: short, bounded, transient-only.  Missing
#: files and corrupt-state errors fail immediately — only genuinely transient
#: I/O errors are worth the wait.
def default_read_policy() -> RetryPolicy:
    return RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.25,
                       deadline_s=2.0, retry_on=(OSError, TimeoutError),
                       give_up_on=(FileNotFoundError, IsADirectoryError))
