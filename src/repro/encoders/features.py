"""Handcrafted style and emotion features.

StyleLSTM concatenates writing-style features with the text representation and
DualEmo concatenates dual-emotion features; M3FEND consumes semantics, emotion
and style views.  These extractors compute the equivalent feature vectors from
the symbolic token streams of the synthetic corpora (emotion / style tokens are
explicit there), plus generic surface statistics so the features are not
degenerate on arbitrary text.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import NewsItem, default_token_lists

#: Token prefixes emitted by the synthetic generator.
EMOTION_PREFIXES = ("emo_arousal", "emo_neutral")
STYLE_PREFIXES = ("style_sensational", "style_formal")

STYLE_FEATURE_DIM = 6
EMOTION_FEATURE_DIM = 5


def style_features(tokens: Sequence[str]) -> np.ndarray:
    """Writing-style feature vector (length, lexical diversity, style-token mix).

    The three prefix fractions are counted in a single pass over the tokens
    (the prefixes are mutually exclusive), which matters on the serving hot
    path where this runs per request; integer counts divide to exactly the
    same floats as the per-prefix scans they replaced.
    """
    length = len(tokens)
    unique = len(set(tokens))
    type_token_ratio = unique / length if length else 0.0
    sensational = formal = common = total_chars = 0
    for token in tokens:
        total_chars += len(token)
        if token.startswith(STYLE_PREFIXES[0]):
            sensational += 1
        elif token.startswith(STYLE_PREFIXES[1]):
            formal += 1
        elif token.startswith("common"):
            common += 1
    # exact-integer sum / count: bit-identical to the np.mean it replaced
    mean_token_length = total_chars / length if length else 0.0
    return np.array([
        min(length / 64.0, 1.0),
        type_token_ratio,
        mean_token_length / 24.0,
        sensational / length if length else 0.0,
        formal / length if length else 0.0,
        common / length if length else 0.0,
    ], dtype=np.float64)


def emotion_features(tokens: Sequence[str]) -> np.ndarray:
    """Dual-emotion feature vector (publisher emotion mix and intensity)."""
    length = len(tokens)
    arousal_count = neutral_count = 0
    for token in tokens:
        if token.startswith(EMOTION_PREFIXES[0]):
            arousal_count += 1
        elif token.startswith(EMOTION_PREFIXES[1]):
            neutral_count += 1
    arousal = arousal_count / length if length else 0.0
    neutral = neutral_count / length if length else 0.0
    total = arousal + neutral
    dominance = (arousal - neutral) / total if total else 0.0
    return np.array([
        arousal,
        neutral,
        dominance,
        1.0 if arousal > neutral else 0.0,
        min((arousal + neutral) * 4.0, 1.0),
    ], dtype=np.float64)


# --------------------------------------------------------------------------- #
# Batched (vectorised) extraction                                              #
# --------------------------------------------------------------------------- #
# The scalar functions above are the ground truth; the batch versions below
# compute the same integer counts with one flat NumPy pass over all tokens
# (np.char predicates + per-segment bincount sums) and divide them in exactly
# the same order, so every row is bit-identical to its scalar counterpart
# (pinned by tests/encoders/test_encoders.py).  They are the hot path for
# both DataLoader construction and repro.serve batch encoding.

#: Widest token the vectorised extractors will pack into a flat unicode
#: array.  ``np.array(list_of_str)`` allocates ``4 * max_len`` bytes for
#: EVERY slot, so one adversarially long unbroken token (a pasted URL in a
#: raw serving request) would inflate the whole batch; such batches fall
#: back to the scalar path, which is O(total characters).
MAX_VECTORISED_TOKEN_CHARS = 256


def _flat_tokens(token_lists: Sequence[Sequence[str]]):
    """Flatten ragged token lists into (flat, segment_ids, lengths)."""
    lengths = np.array([len(tokens) for tokens in token_lists], dtype=np.int64)
    if int(lengths.sum()) == 0:
        flat = np.empty(0, dtype="U1")
    else:
        flat = np.array([token for tokens in token_lists for token in tokens])
    segments = np.repeat(np.arange(len(token_lists)), lengths)
    return flat, segments, lengths


def _scalar_fallback(token_lists, per_item, width: int) -> np.ndarray | None:
    """Scalar rows when vectorised packing would blow up (or n is 0)."""
    if not len(token_lists):
        return np.empty((0, width), dtype=np.float64)
    widest = max((len(token) for tokens in token_lists for token in tokens),
                 default=0)
    if widest <= MAX_VECTORISED_TOKEN_CHARS:
        return None
    return np.stack([per_item(tokens) for tokens in token_lists])


def _segment_counts(flags: np.ndarray, segments: np.ndarray, count: int) -> np.ndarray:
    """Per-segment sums of 0/1 flags (exact integers in float64)."""
    return np.bincount(segments, weights=flags.astype(np.float64), minlength=count)


def style_features_batch(token_lists: Sequence[Sequence[str]]) -> np.ndarray:
    """Vectorised :func:`style_features` over many token lists → ``(n, 6)``."""
    fallback = _scalar_fallback(token_lists, style_features, STYLE_FEATURE_DIM)
    if fallback is not None:
        return fallback
    n = len(token_lists)
    flat, segments, lengths = _flat_tokens(token_lists)
    populated = lengths > 0
    safe = np.where(populated, lengths, 1).astype(np.float64)
    unique = np.array([len(set(tokens)) for tokens in token_lists], dtype=np.int64)
    char_sums = np.bincount(segments, weights=np.char.str_len(flat), minlength=n)
    out = np.empty((n, STYLE_FEATURE_DIM), dtype=np.float64)
    out[:, 0] = np.minimum(lengths / 64.0, 1.0)
    out[:, 1] = np.where(populated, unique / safe, 0.0)
    out[:, 2] = np.where(populated, char_sums / safe, 0.0) / 24.0
    for column, prefix in enumerate((STYLE_PREFIXES[0], STYLE_PREFIXES[1], "common"),
                                    start=3):
        counts = _segment_counts(np.char.startswith(flat, prefix), segments, n)
        out[:, column] = np.where(populated, counts / safe, 0.0)
    return out


def emotion_features_batch(token_lists: Sequence[Sequence[str]]) -> np.ndarray:
    """Vectorised :func:`emotion_features` over many token lists → ``(n, 5)``."""
    fallback = _scalar_fallback(token_lists, emotion_features, EMOTION_FEATURE_DIM)
    if fallback is not None:
        return fallback
    n = len(token_lists)
    flat, segments, lengths = _flat_tokens(token_lists)
    populated = lengths > 0
    safe = np.where(populated, lengths, 1).astype(np.float64)
    arousal = np.where(
        populated,
        _segment_counts(np.char.startswith(flat, EMOTION_PREFIXES[0]), segments, n) / safe,
        0.0)
    neutral = np.where(
        populated,
        _segment_counts(np.char.startswith(flat, EMOTION_PREFIXES[1]), segments, n) / safe,
        0.0)
    total = arousal + neutral
    emotional = total > 0
    out = np.empty((n, EMOTION_FEATURE_DIM), dtype=np.float64)
    out[:, 0] = arousal
    out[:, 1] = neutral
    out[:, 2] = np.where(emotional,
                         (arousal - neutral) / np.where(emotional, total, 1.0), 0.0)
    out[:, 3] = np.where(arousal > neutral, 1.0, 0.0)
    out[:, 4] = np.minimum((arousal + neutral) * 4.0, 1.0)
    return out


def style_feature_extractor(items: Sequence[NewsItem], token_ids: np.ndarray,
                            mask: np.ndarray) -> np.ndarray:
    """Loader-compatible extractor producing ``(n, STYLE_FEATURE_DIM)``."""
    return style_features_batch(default_token_lists([item.text for item in items]))


def emotion_feature_extractor(items: Sequence[NewsItem], token_ids: np.ndarray,
                              mask: np.ndarray) -> np.ndarray:
    """Loader-compatible extractor producing ``(n, EMOTION_FEATURE_DIM)``."""
    return emotion_features_batch(default_token_lists([item.text for item in items]))
