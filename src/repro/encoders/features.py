"""Handcrafted style and emotion features.

StyleLSTM concatenates writing-style features with the text representation and
DualEmo concatenates dual-emotion features; M3FEND consumes semantics, emotion
and style views.  These extractors compute the equivalent feature vectors from
the symbolic token streams of the synthetic corpora (emotion / style tokens are
explicit there), plus generic surface statistics so the features are not
degenerate on arbitrary text.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import NewsItem
from repro.data.tokenizer import WhitespaceTokenizer

#: Token prefixes emitted by the synthetic generator.
EMOTION_PREFIXES = ("emo_arousal", "emo_neutral")
STYLE_PREFIXES = ("style_sensational", "style_formal")

STYLE_FEATURE_DIM = 6
EMOTION_FEATURE_DIM = 5


def _prefix_fraction(tokens: Sequence[str], prefix: str) -> float:
    if not tokens:
        return 0.0
    return sum(1 for token in tokens if token.startswith(prefix)) / len(tokens)


def style_features(tokens: Sequence[str]) -> np.ndarray:
    """Writing-style feature vector (length, lexical diversity, style-token mix)."""
    length = len(tokens)
    unique = len(set(tokens))
    type_token_ratio = unique / length if length else 0.0
    mean_token_length = float(np.mean([len(token) for token in tokens])) if tokens else 0.0
    return np.array([
        min(length / 64.0, 1.0),
        type_token_ratio,
        mean_token_length / 24.0,
        _prefix_fraction(tokens, STYLE_PREFIXES[0]),
        _prefix_fraction(tokens, STYLE_PREFIXES[1]),
        _prefix_fraction(tokens, "common"),
    ], dtype=np.float64)


def emotion_features(tokens: Sequence[str]) -> np.ndarray:
    """Dual-emotion feature vector (publisher emotion mix and intensity)."""
    arousal = _prefix_fraction(tokens, EMOTION_PREFIXES[0])
    neutral = _prefix_fraction(tokens, EMOTION_PREFIXES[1])
    total = arousal + neutral
    dominance = (arousal - neutral) / total if total else 0.0
    return np.array([
        arousal,
        neutral,
        dominance,
        1.0 if arousal > neutral else 0.0,
        min((arousal + neutral) * 4.0, 1.0),
    ], dtype=np.float64)


def style_feature_extractor(items: Sequence[NewsItem], token_ids: np.ndarray,
                            mask: np.ndarray) -> np.ndarray:
    """Loader-compatible extractor producing ``(n, STYLE_FEATURE_DIM)``."""
    tokenizer = WhitespaceTokenizer()
    return np.stack([style_features(tokenizer(item.text)) for item in items])


def emotion_feature_extractor(items: Sequence[NewsItem], token_ids: np.ndarray,
                              mask: np.ndarray) -> np.ndarray:
    """Loader-compatible extractor producing ``(n, EMOTION_FEATURE_DIM)``."""
    tokenizer = WhitespaceTokenizer()
    return np.stack([emotion_features(tokenizer(item.text)) for item in items])
