"""The ``local`` backend: a zero-overhead wrap of the in-process frozen encoder.

This is the default backend everywhere — every call delegates straight to the
wrapped :class:`repro.encoders.FrozenPretrainedEncoder`, so training tables,
pipeline artifacts and serving probabilities are bit-for-bit what they were
before the registry existed (pinned by ``tests/encoders/test_backends.py``).
"""

from __future__ import annotations

import numpy as np

from repro.encoders.backends.base import EncoderBackend, register_encoder_backend
from repro.encoders.pretrained import FrozenPretrainedEncoder


class LocalBackend(EncoderBackend):
    """Serve :meth:`encode` directly from an in-process frozen encoder."""

    kind = "local"

    def __init__(self, encoder: FrozenPretrainedEncoder):
        self.encoder = encoder

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return self.encoder.vocab_size

    @property
    def output_dim(self) -> int:
        return self.encoder.output_dim

    def encode(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        return self.encoder.encode(token_ids, mask)

    def encode_pooled(self, token_ids: np.ndarray,
                      mask: np.ndarray | None = None) -> np.ndarray:
        return self.encoder.encode_pooled(token_ids, mask)

    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        return {"kind": self.kind, "encoder": self.encoder.to_spec()}

    @classmethod
    def from_spec(cls, spec: dict) -> "LocalBackend":
        return cls(FrozenPretrainedEncoder.from_spec(spec["encoder"]))

    @classmethod
    def from_encoder(cls, encoder: FrozenPretrainedEncoder) -> "LocalBackend":
        return cls(encoder)

    def encoder_spec(self) -> dict:
        return self.encoder.to_spec()


register_encoder_backend("local", LocalBackend)
