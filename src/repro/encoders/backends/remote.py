"""The ``remote`` backend: an embedding-service client shape, in-process.

A real deployment would put the frozen PLM behind an embedding service; this
backend is the *client* for that world, with every client-side concern
implemented for real and only the wire swapped out:

* **Transport** — :class:`EncoderTransport` is the one-method wire interface
  (``request(token_ids, mask) -> states``).  :class:`InProcessTransport`
  "serves" requests from a local :class:`FrozenPretrainedEncoder`, raising
  :class:`TransportError` on injected faults (the ``encoder.transport`` fault
  site), so chaos tests exercise exactly the failure surface a socket would.
* **Request batching** — windows wider than ``max_rows_per_request`` are
  split into row chunks, one RPC each.  The frozen encoder contextualises
  each row independently (stacked per-row GEMMs, per-row context averaging),
  so chunked results are bit-identical to the unchunked call — pinned by
  ``tests/encoders/test_backends.py``.
* **Coalescing** — duplicate rows inside a window (retried texts, hot
  stories, donor-substituted rows from ``predict_safe``) are sent once and
  scattered back to every duplicate position.
* **Degradation** — every RPC runs through a
  :class:`repro.reliability.RetryPolicy` (transient :class:`TransportError`
  costs a backoff, not a failure) and a
  :class:`repro.reliability.CircuitBreaker` (a *persistently* dead service
  trips to fast :class:`~repro.reliability.CircuitOpen` rejections) — the
  same two mechanisms, in the same order, that ``repro.serve`` already wraps
  around direct encoder calls, so a dying transport degrades exactly like a
  dying encoder does today.

``to_spec`` persists the service's encoder spec plus the client knobs, and
``from_spec`` reconstructs the client over an in-process transport — which is
also why a *pipeline artifact* exported against a remote backend loads
anywhere: the dummy transport regenerates the same deterministic weights.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.encoders.backends.base import (
    EncoderBackend,
    EncoderBackendError,
    register_encoder_backend,
)
from repro.encoders.pretrained import FrozenPretrainedEncoder
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy


class TransportError(ConnectionError):
    """The encoder service did not answer (transient unless it persists).

    Subclasses :class:`ConnectionError` (hence :class:`OSError`) so the stock
    :class:`RetryPolicy` retries it without special configuration.
    """


class EncoderTransport:
    """Wire interface of an embedding service: one request, one response."""

    def request(self, token_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> dict:
        """Transport identity for specs/diagnostics."""
        return {"transport": type(self).__name__}


class InProcessTransport(EncoderTransport):
    """A dummy transport answering from a local frozen encoder.

    The ``encoder.transport`` fault site fires on every request, so a
    :class:`repro.reliability.FaultPlan` rule can drop or stall "the wire"
    deterministically without any real networking.
    """

    def __init__(self, encoder: FrozenPretrainedEncoder):
        self.encoder = encoder
        self.requests = 0

    def request(self, token_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self.requests += 1
        fault_point("encoder.transport", rows=int(np.asarray(token_ids).shape[0]))
        return self.encoder.encode(token_ids, mask)

    def describe(self) -> dict:
        return {"transport": "in_process", "encoder": self.encoder.to_spec()}


class RemoteBackend(EncoderBackend):
    """Batching, coalescing, retrying, circuit-broken encoder-service client."""

    kind = "remote"

    def __init__(self, transport: EncoderTransport, *, vocab_size: int,
                 output_dim: int, max_rows_per_request: int = 64,
                 coalesce: bool = True, retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None):
        if max_rows_per_request < 1:
            raise ValueError("max_rows_per_request must be >= 1")
        self.transport = transport
        self._vocab_size = vocab_size
        self._output_dim = output_dim
        self.max_rows_per_request = max_rows_per_request
        self.coalesce = coalesce
        self.retry = retry or RetryPolicy(attempts=3, base_delay_s=0.01,
                                          max_delay_s=0.1)
        self.breaker = breaker or CircuitBreaker(name="encoder-transport")
        # breaker outermost, like the serving tier wraps encoder calls: one
        # exhausted retry round counts as ONE dependency failure.
        self._call = self.breaker.wrap(self.retry.wrap(self.transport.request))
        self._lock = threading.Lock()
        self.requests = 0
        self.rows_sent = 0
        self.rows_coalesced = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def in_process(cls, encoder: FrozenPretrainedEncoder,
                   **options) -> "RemoteBackend":
        """A client over a dummy in-process transport serving ``encoder``."""
        return cls(InProcessTransport(encoder), vocab_size=encoder.vocab_size,
                   output_dim=encoder.output_dim, **options)

    from_encoder = in_process

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return self._vocab_size

    @property
    def output_dim(self) -> int:
        return self._output_dim

    def encode(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        if mask is None:
            mask = (token_ids != 0).astype(np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != token_ids.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match token_ids shape "
                f"{token_ids.shape}")
        rows, unique_index = self._coalesce(token_ids, mask)
        unique_ids = token_ids[rows]
        unique_mask = mask[rows]
        chunks = []
        for start in range(0, len(rows), self.max_rows_per_request):
            stop = start + self.max_rows_per_request
            chunks.append(self._call(unique_ids[start:stop], unique_mask[start:stop]))
            with self._lock:
                self.requests += 1
                self.rows_sent += int(min(stop, len(rows)) - start)
        unique_states = chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)
        return unique_states[unique_index]

    def _coalesce(self, token_ids: np.ndarray,
                  mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Indices of unique rows + the scatter map back to the full window."""
        if not self.coalesce or token_ids.shape[0] < 2:
            identity = np.arange(token_ids.shape[0])
            return identity, identity
        seen: dict[bytes, int] = {}
        rows: list[int] = []
        unique_index = np.empty(token_ids.shape[0], dtype=np.int64)
        for row in range(token_ids.shape[0]):
            key = token_ids[row].tobytes() + mask[row].tobytes()
            position = seen.get(key)
            if position is None:
                position = len(rows)
                seen[key] = position
                rows.append(row)
            else:
                with self._lock:
                    self.rows_coalesced += 1
            unique_index[row] = position
        return np.asarray(rows, dtype=np.int64), unique_index

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "rows_sent": self.rows_sent,
                "rows_coalesced": self.rows_coalesced,
                "circuit": self.breaker.snapshot()["state"],
                "circuit_failures": self.breaker.failures,
            }

    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        described = self.transport.describe()
        if "encoder" not in described:
            raise EncoderBackendError(
                f"transport {described.get('transport')} does not describe an "
                "encoder spec; this remote backend cannot be persisted")
        return {"kind": self.kind, "encoder": described["encoder"],
                "max_rows_per_request": self.max_rows_per_request,
                "coalesce": self.coalesce}

    @classmethod
    def from_spec(cls, spec: dict) -> "RemoteBackend":
        return cls.in_process(
            FrozenPretrainedEncoder.from_spec(spec["encoder"]),
            max_rows_per_request=spec.get("max_rows_per_request", 64),
            coalesce=spec.get("coalesce", True))

    def encoder_spec(self) -> dict | None:
        return self.transport.describe().get("encoder")


register_encoder_backend("remote", RemoteBackend)
