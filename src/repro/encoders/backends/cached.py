"""The ``cached`` backend: a content-hash LRU memo over token-id windows.

Frozen-encoder output is a pure function of ``(token_ids, mask)``, and real
serving traffic repeats itself — health probes, trending stories, the
benchmark suite's fixed windows, :class:`repro.core.distill.TeacherCache`
style precompute passes.  :class:`CachedBackend` decorates *any* other
backend with an exact-match cache:

* the key is a BLAKE2b content hash of the window's raw bytes (token ids,
  mask and both shapes), so two windows collide only if they are
  byte-identical — in which case the frozen encoder's answer is identical
  too, making a hit bit-exact by construction;
* entries are LRU-evicted past ``max_entries`` *or* ``max_bytes`` of stored
  feature arrays, so a long-running server's memory stays bounded;
* :meth:`stats` reports hits / misses / evictions / resident bytes (surfaced
  by ``Predictor.health()`` and the ``/stats`` endpoint);
* :meth:`invalidate` drops everything — the hook the streaming/continual
  -learning roadmap item needs when fresh labels retrain the upstream
  encoder (mirrors ``TeacherCache.invalidate``).

Cached arrays are handed out with ``writeable=False``: every consumer treats
feature channels as read-only, and the flag turns an accidental in-place
mutation (which would silently poison later hits) into an immediate error.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.encoders.backends.base import (
    EncoderBackend,
    backend_from_spec,
    register_encoder_backend,
)


def _window_key(token_ids: np.ndarray, mask: np.ndarray | None) -> bytes:
    """Content hash of one encode window (shape-aware, collision-safe)."""
    digest = hashlib.blake2b(digest_size=16)
    token_ids = np.ascontiguousarray(token_ids)
    digest.update(repr(token_ids.shape).encode())
    digest.update(token_ids.tobytes())
    if mask is not None:
        mask = np.ascontiguousarray(mask)
        digest.update(repr(mask.shape).encode())
        digest.update(mask.tobytes())
    return digest.digest()


class CachedBackend(EncoderBackend):
    """Memoise another backend's :meth:`encode` per token-id window.

    Parameters
    ----------
    inner:
        The backend doing the actual encoding on a miss.
    max_entries:
        LRU capacity in windows.
    max_bytes:
        LRU capacity in stored feature bytes (evaluated after every insert;
        both bounds apply, whichever bites first).
    """

    kind = "cached"

    def __init__(self, inner: EncoderBackend, max_entries: int = 1024,
                 max_bytes: int = 256 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.inner = inner
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lru: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return self.inner.vocab_size

    @property
    def output_dim(self) -> int:
        return self.inner.output_dim

    def encode(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        key = _window_key(token_ids, mask)
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        states = self.inner.encode(token_ids, mask)
        states.setflags(write=False)
        with self._lock:
            if key not in self._lru:
                self._lru[key] = states
                self._bytes += states.nbytes
                self._evict_locked()
        return states

    def _evict_locked(self) -> None:
        while self._lru and (len(self._lru) > self.max_entries
                             or self._bytes > self.max_bytes):
            if len(self._lru) == 1 and len(self._lru) <= self.max_entries:
                break  # a single over-budget window still has to be servable
            _, evicted = self._lru.popitem(last=False)
            self._bytes -= evicted.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cached window (and the inner backend's state too)."""
        with self._lock:
            self._lru.clear()
            self._bytes = 0
            self.invalidations += 1
        self.inner.invalidate()

    def stats(self) -> dict:
        with self._lock:
            requests = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / requests if requests else 0.0,
                "entries": len(self._lru),
                "resident_bytes": self._bytes,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                **{f"inner_{k}": v for k, v in self.inner.stats().items()},
            }

    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        return {"kind": self.kind, "inner": self.inner.to_spec(),
                "max_entries": self.max_entries, "max_bytes": self.max_bytes}

    @classmethod
    def from_spec(cls, spec: dict) -> "CachedBackend":
        return cls(backend_from_spec(spec["inner"]),
                   max_entries=spec.get("max_entries", 1024),
                   max_bytes=spec.get("max_bytes", 256 * 1024 * 1024))

    @classmethod
    def from_encoder(cls, encoder, **options) -> "CachedBackend":
        from repro.encoders.backends.local import LocalBackend

        return cls(LocalBackend(encoder), **options)

    def encoder_spec(self) -> dict | None:
        return self.inner.encoder_spec()


register_encoder_backend("cached", CachedBackend)
