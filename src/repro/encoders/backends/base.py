"""The :class:`EncoderBackend` interface and the backend kind registry.

The paper's student and every baseline consume a frozen PLM ("frozen BERT,
layer 11") purely as an *input feature channel*: token ids go in, a frozen
``(batch, seq, dim)`` activation comes out.  Nothing downstream cares where
that activation was computed — an in-process stand-in, a memoising cache, or
a remote embedding service are all interchangeable as long as they answer
``encode``/``encode_pooled`` deterministically for the same window.

:class:`EncoderBackend` is that contract, in the style of a client registry:

* ``encode(token_ids, mask)`` / ``encode_pooled(token_ids, mask)`` — the two
  call shapes :class:`repro.encoders.FrozenPretrainedEncoder` already serves;
* ``to_spec()`` / ``from_spec(spec)`` — a JSON round-trip through the kind
  registry, so a pipeline artifact can persist *which backend, configured
  how* and any process can reconstruct it (``backend_from_spec``);
* ``fingerprint()`` — a stable content hash of the spec, surfaced by
  ``Predictor.health()`` and the serving ``/stats`` endpoint so operators can
  tell at a glance which encoder configuration a replica is running;
* ``stats()`` / ``invalidate()`` — operational hooks (cache hit rates,
  streaming-refresh invalidation) that default to no-ops.

Register new kinds with :func:`register_encoder_backend`; the stock kinds are
``local`` (:class:`~repro.encoders.backends.local.LocalBackend`), ``cached``
(:class:`~repro.encoders.backends.cached.CachedBackend`) and ``remote``
(:class:`~repro.encoders.backends.remote.RemoteBackend`).
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import Callable

import numpy as np


class EncoderBackendError(RuntimeError):
    """A backend spec is malformed, unknown, or the backend cannot serve."""


def spec_fingerprint(spec: dict) -> str:
    """Stable 16-hex-digit content hash of a backend (or channel) spec.

    Computable from a manifest alone — no backend needs to be constructed —
    so the multi-process server can report the same fingerprint its workers'
    live backends report.
    """
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class EncoderBackend(abc.ABC):
    """A pluggable feature-extraction service behind the ``plm`` channel.

    Subclasses set the class attribute ``kind`` (their registry key) and
    implement :meth:`encode` plus the spec round-trip.  The default
    :meth:`encode_pooled` reproduces the masked mean-pool of
    :class:`repro.encoders.FrozenPretrainedEncoder` bit-for-bit (identical
    operations in identical order), so most backends only implement
    :meth:`encode`.
    """

    #: registry key; subclasses must override
    kind: str = ""

    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def vocab_size(self) -> int:
        """Largest servable token id + 1 (pipelines check it against the vocab)."""

    @property
    @abc.abstractmethod
    def output_dim(self) -> int:
        """Feature dimension of the returned states."""

    @abc.abstractmethod
    def encode(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Frozen features ``(batch, seq, output_dim)`` for a token-id window."""

    def encode_pooled(self, token_ids: np.ndarray,
                      mask: np.ndarray | None = None) -> np.ndarray:
        """Masked mean-pooled sentence representation ``(batch, output_dim)``.

        Same operations in the same order as
        :meth:`FrozenPretrainedEncoder.encode_pooled`, so any backend whose
        :meth:`encode` is bit-identical to the frozen encoder pools
        bit-identically too.
        """
        if mask is None:
            mask = (np.asarray(token_ids) != 0).astype(np.float64)
        states = self.encode(token_ids, mask)
        counts = np.maximum(np.asarray(mask).sum(axis=1, keepdims=True), 1.0)
        return states.sum(axis=1) / counts

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def to_spec(self) -> dict:
        """JSON-serialisable description; must include ``{"kind": self.kind}``."""

    @classmethod
    @abc.abstractmethod
    def from_spec(cls, spec: dict) -> "EncoderBackend":
        """Reconstruct a backend from :meth:`to_spec` output (exact inverse)."""

    def fingerprint(self) -> str:
        """Stable 16-hex-digit content hash of this backend's spec.

        Two backends with byte-identical specs produce the same fingerprint
        in any process, so health endpoints can compare replicas without
        shipping the full spec.
        """
        return spec_fingerprint(self.to_spec())

    def encoder_spec(self) -> dict | None:
        """Spec of the underlying :class:`FrozenPretrainedEncoder`, if any.

        Pipeline manifests keep writing the legacy ``"encoder"`` key from
        this, so artifacts exported with any stock backend stay loadable by
        readers that predate the backend registry.  Backends with no frozen
        encoder underneath return ``None``.
        """
        return None

    # ------------------------------------------------------------------ #
    # Operational hooks (no-ops by default)                                #
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Backend-specific operational counters (cache hits, RPC rounds...)."""
        return {}

    def invalidate(self) -> None:
        """Drop any memoised state (the streaming-refresh hook)."""

    def state(self) -> dict:
        """The health-endpoint view: kind, fingerprint and live counters."""
        return {"kind": self.kind, "fingerprint": self.fingerprint(),
                **self.stats()}

    # ------------------------------------------------------------------ #
    # Loader adapters (same shape FrozenPretrainedEncoder provides)        #
    # ------------------------------------------------------------------ #
    def as_feature_extractor(self) -> Callable:
        """Adapter matching :data:`repro.data.loader.FeatureExtractor`."""

        def extractor(items, token_ids, mask):
            return self.encode(token_ids, mask)

        return extractor

    def as_pooled_feature_extractor(self) -> Callable:
        def extractor(items, token_ids, mask):
            return self.encode_pooled(token_ids, mask)

        return extractor


# --------------------------------------------------------------------------- #
# Kind registry                                                                #
# --------------------------------------------------------------------------- #
ENCODER_BACKENDS: dict[str, type[EncoderBackend]] = {}


def register_encoder_backend(kind: str, backend_cls: type[EncoderBackend],
                             overwrite: bool = False) -> None:
    """Register ``backend_cls`` under ``kind`` for spec-based reconstruction.

    Like :func:`repro.models.register_model`: a process that registers the
    same kind before calling :func:`backend_from_spec` (or
    ``repro.serve.load_pipeline``) round-trips custom backends through
    pipeline artifacts.
    """
    if not kind:
        raise ValueError("backend kind must be a non-empty string")
    if not overwrite and kind in ENCODER_BACKENDS:
        raise ValueError(f"encoder backend kind '{kind}' is already registered "
                         "(pass overwrite=True to replace it)")
    ENCODER_BACKENDS[kind] = backend_cls


def available_encoder_backends() -> tuple[str, ...]:
    """Registered backend kinds, sorted."""
    return tuple(sorted(ENCODER_BACKENDS))


def backend_from_spec(spec: dict) -> EncoderBackend:
    """Reconstruct any registered backend from its :meth:`~EncoderBackend.to_spec`."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise EncoderBackendError(
            f"encoder backend spec must be a dict with a 'kind' key, got {spec!r}")
    kind = spec["kind"]
    backend_cls = ENCODER_BACKENDS.get(kind)
    if backend_cls is None:
        raise EncoderBackendError(
            f"unknown encoder backend kind '{kind}'; registered kinds: "
            f"{list(available_encoder_backends())}. Custom backends must call "
            "repro.encoders.backends.register_encoder_backend first")
    return backend_cls.from_spec(spec)


def wrap_encoder(kind: str, encoder, **options) -> EncoderBackend:
    """Wrap a :class:`FrozenPretrainedEncoder` in the backend ``kind``.

    The construction path :func:`repro.experiments.prepare_data` uses:
    every stock backend knows how to stand itself up over an in-process
    frozen encoder (``from_encoder``), so experiment configs select a
    backend by name plus keyword options.
    """
    backend_cls = ENCODER_BACKENDS.get(kind)
    if backend_cls is None:
        raise EncoderBackendError(
            f"unknown encoder backend kind '{kind}'; registered kinds: "
            f"{list(available_encoder_backends())}")
    factory = getattr(backend_cls, "from_encoder", None)
    if factory is None:
        raise EncoderBackendError(
            f"encoder backend '{kind}' cannot be built from a local encoder "
            "(no from_encoder constructor); build it explicitly and pass it "
            "through the channel registry instead")
    return factory(encoder, **options)
