"""Pluggable encoder backends: one client registry behind the ``plm`` channel.

The stock kinds — importable and pre-registered:

* ``local`` — :class:`LocalBackend`, the default; delegates to the in-process
  :class:`repro.encoders.FrozenPretrainedEncoder` bit-identically.
* ``cached`` — :class:`CachedBackend`, a content-hash LRU decorator over any
  other backend (hit/miss stats, bounded memory, ``invalidate()``).
* ``remote`` — :class:`RemoteBackend`, an embedding-service client shape with
  request batching/coalescing, retry and circuit breaking, answered by an
  in-process dummy transport.

Select one per experiment with ``ExperimentConfig.encoder_backend`` (or
``REPRO_ENCODER_BACKEND``), construct from an artifact spec with
:func:`backend_from_spec`, and register new kinds with
:func:`register_encoder_backend`.
"""

from repro.encoders.backends.base import (
    ENCODER_BACKENDS,
    EncoderBackend,
    EncoderBackendError,
    available_encoder_backends,
    backend_from_spec,
    register_encoder_backend,
    spec_fingerprint,
    wrap_encoder,
)
from repro.encoders.backends.cached import CachedBackend
from repro.encoders.backends.local import LocalBackend
from repro.encoders.backends.remote import (
    EncoderTransport,
    InProcessTransport,
    RemoteBackend,
    TransportError,
)

__all__ = [
    "EncoderBackend", "EncoderBackendError", "ENCODER_BACKENDS",
    "register_encoder_backend", "available_encoder_backends",
    "backend_from_spec", "wrap_encoder", "spec_fingerprint",
    "LocalBackend", "CachedBackend", "RemoteBackend",
    "EncoderTransport", "InProcessTransport", "TransportError",
]


def as_backend(encoder) -> EncoderBackend:
    """Normalise ``encoder`` to a backend: raw frozen encoders become ``local``.

    The adapter every refactored entry point (``Pipeline``, ``DataBundle``,
    the ``plm`` channel) uses so existing call sites passing a bare
    :class:`FrozenPretrainedEncoder` keep working unchanged.
    """
    if isinstance(encoder, EncoderBackend):
        return encoder
    from repro.encoders.pretrained import FrozenPretrainedEncoder

    if isinstance(encoder, FrozenPretrainedEncoder):
        return LocalBackend(encoder)
    raise EncoderBackendError(
        f"expected an EncoderBackend or FrozenPretrainedEncoder, got "
        f"{type(encoder).__name__}")
