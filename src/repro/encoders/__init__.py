"""Frozen pre-trained encoder stand-in and handcrafted feature extractors."""

from repro.encoders.features import (
    EMOTION_FEATURE_DIM,
    STYLE_FEATURE_DIM,
    emotion_feature_extractor,
    emotion_features,
    style_feature_extractor,
    style_features,
)
from repro.encoders.pretrained import FrozenPretrainedEncoder

__all__ = [
    "FrozenPretrainedEncoder",
    "style_features", "emotion_features",
    "style_feature_extractor", "emotion_feature_extractor",
    "STYLE_FEATURE_DIM", "EMOTION_FEATURE_DIM",
]
