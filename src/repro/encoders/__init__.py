"""Frozen pre-trained encoder stand-in, pluggable backends and feature channels."""

from repro.encoders.backends import (
    CachedBackend,
    EncoderBackend,
    EncoderBackendError,
    InProcessTransport,
    LocalBackend,
    RemoteBackend,
    TransportError,
    as_backend,
    available_encoder_backends,
    backend_from_spec,
    register_encoder_backend,
    spec_fingerprint,
    wrap_encoder,
)
from repro.encoders.channels import (
    FEATURE_CHANNELS,
    STOCK_CHANNELS,
    EmotionChannel,
    FeatureChannel,
    FeatureChannelError,
    PLMChannel,
    ServeRequest,
    StyleChannel,
    available_feature_channels,
    build_feature_channel,
    channels_from_specs,
    register_feature_channel,
    stock_channels,
)
from repro.encoders.features import (
    EMOTION_FEATURE_DIM,
    STYLE_FEATURE_DIM,
    emotion_feature_extractor,
    emotion_features,
    style_feature_extractor,
    style_features,
)
from repro.encoders.pretrained import FrozenPretrainedEncoder

__all__ = [
    "FrozenPretrainedEncoder",
    "style_features", "emotion_features",
    "style_feature_extractor", "emotion_feature_extractor",
    "STYLE_FEATURE_DIM", "EMOTION_FEATURE_DIM",
    # backends
    "EncoderBackend", "EncoderBackendError", "LocalBackend", "CachedBackend",
    "RemoteBackend", "InProcessTransport", "TransportError",
    "register_encoder_backend", "available_encoder_backends",
    "backend_from_spec", "as_backend", "wrap_encoder", "spec_fingerprint",
    # channels
    "FeatureChannel", "FeatureChannelError", "ServeRequest",
    "PLMChannel", "StyleChannel", "EmotionChannel",
    "FEATURE_CHANNELS", "STOCK_CHANNELS",
    "register_feature_channel", "available_feature_channels",
    "build_feature_channel", "channels_from_specs", "stock_channels",
]
