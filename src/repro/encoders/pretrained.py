"""Frozen pre-trained encoder stand-in.

The paper freezes a BERT / RoBERTa encoder and feeds the activation of layer 11
to the student (TextCNN-S) and to several baselines.  Pre-trained language
models are unavailable offline, so :class:`FrozenPretrainedEncoder` provides a
deterministic, frozen token encoder with the same interface and the same role:

* every vocabulary id gets a fixed dense embedding derived from a hashed random
  projection (stable across runs for a given seed and vocabulary size);
* sinusoidal position encodings are added;
* a fixed two-layer random mixing network with a local context average gives
  each position a mildly contextual representation.

Nothing here is trainable — exactly like the frozen PLM in the paper — so the
encoder output can be treated as an input feature channel and precomputed once
per dataset by the :class:`repro.data.DataLoader`.
"""

from __future__ import annotations

import numpy as np

from repro.reliability.faults import fault_point


class FrozenPretrainedEncoder:
    """Deterministic frozen token encoder emulating "frozen BERT, layer 11"."""

    def __init__(self, vocab_size: int, output_dim: int = 48, hidden_dim: int = 64,
                 context_window: int = 0, positional_scale: float = 0.2, seed: int = 1234):
        if vocab_size < 2:
            raise ValueError("vocab_size must be at least 2 (pad + unk)")
        if output_dim < 1 or hidden_dim < 1:
            raise ValueError("dimensions must be positive")
        self.vocab_size = vocab_size
        self.output_dim = output_dim
        self.hidden_dim = hidden_dim
        self.context_window = context_window
        self.positional_scale = positional_scale
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Unit-variance token embeddings: token identity must stay the dominant
        # part of the representation (the positional signal is scaled down).
        self._embeddings = rng.standard_normal((vocab_size, output_dim))
        self._embeddings[0] = 0.0  # padding id stays zero
        self._mix_in = rng.standard_normal((output_dim, hidden_dim)) / np.sqrt(output_dim)
        self._mix_out = rng.standard_normal((hidden_dim, output_dim)) / np.sqrt(hidden_dim)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _positional_encoding(length: int, dim: int) -> np.ndarray:
        positions = np.arange(length)[:, None]
        dims = np.arange(dim)[None, :]
        angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
        encoding = np.zeros((length, dim))
        encoding[:, 0::2] = np.sin(angles[:, 0::2])
        encoding[:, 1::2] = np.cos(angles[:, 1::2])
        return encoding

    def _contextualise(self, token_states: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Average each position with its ``context_window`` neighbours."""
        if self.context_window <= 0:
            return token_states
        batch, length, dim = token_states.shape
        accumulated = np.zeros_like(token_states)
        weights = np.zeros((batch, length, 1))
        for offset in range(-self.context_window, self.context_window + 1):
            shifted = np.zeros_like(token_states)
            shifted_mask = np.zeros((batch, length, 1))
            source = slice(max(0, -offset), length - max(0, offset))
            target = slice(max(0, offset), length - max(0, -offset))
            shifted[:, target] = token_states[:, source]
            shifted_mask[:, target, 0] = mask[:, source]
            accumulated += shifted * shifted_mask
            weights += shifted_mask
        return accumulated / np.maximum(weights, 1.0)

    # ------------------------------------------------------------------ #
    def encode(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Return frozen features ``(batch, seq, output_dim)`` for ``token_ids``."""
        fault_point("encoder.encode")
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must be (batch, seq)")
        if np.any(token_ids < 0) or np.any(token_ids >= self.vocab_size):
            raise ValueError("token id outside the encoder's vocabulary")
        if mask is None:
            mask = (token_ids != 0).astype(np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != token_ids.shape:
            # A mismatched mask would otherwise broadcast silently against the
            # token states (wrong features, no error) or surface as a raw
            # numpy shape error deep inside _contextualise.
            raise ValueError(
                f"mask shape {mask.shape} does not match token_ids shape "
                f"{token_ids.shape}")

        states = self._embeddings[token_ids]
        positional = self._positional_encoding(token_ids.shape[1], self.output_dim)
        states = states + self.positional_scale * positional[None]
        states = states * mask[..., None]
        states = self._contextualise(states, mask)
        hidden = np.tanh(states @ self._mix_in)
        output = np.tanh(hidden @ self._mix_out) + states  # residual connection
        return output * mask[..., None]

    def encode_pooled(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Masked mean-pooled sentence representation ``(batch, output_dim)``."""
        if mask is None:
            mask = (np.asarray(token_ids) != 0).astype(np.float64)
        states = self.encode(token_ids, mask)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        return states.sum(axis=1) / counts

    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """JSON-serialisable description; :meth:`from_spec` is its exact inverse.

        Every weight in this encoder is a deterministic function of the
        constructor arguments (hashed random projections from ``seed``), so
        persisting the arguments reconstructs bit-identical features — no
        weight arrays need to ship with a pipeline artifact.
        """
        return {
            "vocab_size": self.vocab_size,
            "output_dim": self.output_dim,
            "hidden_dim": self.hidden_dim,
            "context_window": self.context_window,
            "positional_scale": self.positional_scale,
            "seed": self.seed,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FrozenPretrainedEncoder":
        return cls(**spec)

    # ------------------------------------------------------------------ #
    def as_feature_extractor(self):
        """Adapter matching :data:`repro.data.loader.FeatureExtractor`."""

        def extractor(items, token_ids, mask):
            return self.encode(token_ids, mask)

        return extractor

    def as_pooled_feature_extractor(self):
        def extractor(items, token_ids, mask):
            return self.encode_pooled(token_ids, mask)

        return extractor
