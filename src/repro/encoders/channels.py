"""Feature-channel registry: one abstraction from loader to serving artifact.

A *feature channel* is a named, precomputable view of the data that models
consume through ``batch.feature(name)`` — the paper's frozen-PLM activations
(``plm``), handcrafted writing-style (``style``) and dual-emotion
(``emotion``) vectors, or any custom extractor a user registers.  Before this
registry the three stock channels were hard-wired separately into
``experiments.prepare_data`` (training), ``serve.Predictor`` (inference) and
the pipeline manifest (persistence); a custom extractor could train but never
round-trip through a serving artifact.

:class:`FeatureChannel` unifies the three roles:

* :meth:`extract` — the training/loader path: items + encoded token window
  in, one ``(n, ...)`` array out (the :data:`repro.data.loader.FeatureExtractor`
  contract, adapted by :meth:`as_extractor`);
* :meth:`serve` — the serving path: recompute the same values from raw
  request texts (a :class:`ServeRequest` carries texts, the encoded window,
  lazily tokenised token lists and the pipeline's wrapped ``plm`` encode);
* :meth:`to_spec` / ``from_spec`` — the persistence path: a JSON spec the
  pipeline manifest stores, reconstructed through :data:`FEATURE_CHANNELS`
  in any process that performed the same :func:`register_feature_channel`.

The stock channels register themselves at import; custom channels follow the
same two-step custom-model recipe (``register_model`` +
``register_feature_channel``) to round-trip through ``export_pipeline`` /
``load_pipeline`` — pinned bit-identically in ``tests/serve/test_pipeline.py``.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import NewsItem, default_token_lists
from repro.encoders.backends import EncoderBackend, as_backend, backend_from_spec
from repro.encoders.features import (
    emotion_features_batch,
    style_features_batch,
)


class FeatureChannelError(RuntimeError):
    """A channel spec is malformed or names an unregistered kind."""


class ServeRequest:
    """Everything a channel may need to recompute features from raw text.

    ``token_lists`` tokenises the *untruncated* raw texts with the default
    whitespace tokenizer exactly once, shared across channels — the same
    contract the training extractors use (they read ``item.text``, not the
    truncated token window).
    """

    def __init__(self, texts: Sequence[str], token_ids: np.ndarray,
                 mask: np.ndarray, encode_plm: Callable | None = None):
        self.texts = texts
        self.token_ids = token_ids
        self.mask = mask
        self._encode_plm = encode_plm
        self._token_lists: list[list[str]] | None = None

    @property
    def token_lists(self) -> list[list[str]]:
        if self._token_lists is None:
            self._token_lists = default_token_lists(self.texts)
        return self._token_lists

    def encode_plm(self, token_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """The pipeline's ``plm`` encode, wrapped in its retry/circuit policy."""
        if self._encode_plm is None:
            raise FeatureChannelError(
                "this serving context provides no plm encoder; the pipeline "
                "was built without an encoder backend")
        return self._encode_plm(token_ids, mask)


class FeatureChannel(abc.ABC):
    """One named feature view, usable by the loader, the server and the manifest."""

    #: registry key of this channel implementation; subclasses override
    kind: str = ""

    @property
    def name(self) -> str:
        """The key models look up via ``batch.feature(name)`` (default: kind)."""
        return self.kind

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def extract(self, items: Sequence[NewsItem], token_ids: np.ndarray,
                mask: np.ndarray) -> np.ndarray:
        """Training-time extraction over a whole dataset (loader contract)."""

    @abc.abstractmethod
    def serve(self, request: ServeRequest) -> np.ndarray:
        """Serving-time extraction from raw request texts."""

    @abc.abstractmethod
    def to_spec(self) -> dict:
        """JSON-serialisable description; must include ``{"kind": self.kind}``."""

    def fingerprint(self) -> str:
        canonical = json.dumps(self.to_spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def as_extractor(self) -> Callable:
        """Adapter to the legacy :data:`repro.data.loader.FeatureExtractor` shape."""

        def extractor(items, token_ids, mask):
            return self.extract(items, token_ids, mask)

        return extractor


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
#: kind -> build_fn(spec) -> FeatureChannel
FEATURE_CHANNELS: dict[str, Callable[[dict], FeatureChannel]] = {}


def register_feature_channel(name: str, build_fn, overwrite: bool = False) -> None:
    """Register a channel kind for spec-based reconstruction.

    ``build_fn`` is either a callable ``spec -> FeatureChannel`` or a
    :class:`FeatureChannel` subclass (its ``from_spec`` classmethod is used).
    A process that registers the same kinds before ``load_pipeline`` can
    round-trip pipelines whose manifests carry custom channel specs.
    """
    if not name:
        raise ValueError("feature channel name must be a non-empty string")
    if not overwrite and name in FEATURE_CHANNELS:
        raise ValueError(f"feature channel '{name}' is already registered "
                         "(pass overwrite=True to replace it)")
    if isinstance(build_fn, type) and issubclass(build_fn, FeatureChannel):
        build_fn = build_fn.from_spec
    if not callable(build_fn):
        raise TypeError("build_fn must be callable or a FeatureChannel subclass")
    FEATURE_CHANNELS[name] = build_fn


def available_feature_channels() -> tuple[str, ...]:
    """Registered channel kinds, sorted."""
    return tuple(sorted(FEATURE_CHANNELS))


def build_feature_channel(spec: dict) -> FeatureChannel:
    """Reconstruct a channel from its :meth:`~FeatureChannel.to_spec`."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise FeatureChannelError(
            f"feature channel spec must be a dict with a 'kind' key, got {spec!r}")
    build_fn = FEATURE_CHANNELS.get(spec["kind"])
    if build_fn is None:
        raise FeatureChannelError(
            f"unknown feature channel kind '{spec['kind']}'; registered kinds: "
            f"{list(available_feature_channels())}. Custom channels must call "
            "repro.encoders.register_feature_channel first")
    return build_fn(spec)


def channels_from_specs(specs: Sequence[dict],
                        backend: EncoderBackend | None = None) -> list[FeatureChannel]:
    """Build a channel list from manifest specs, sharing ``backend`` where possible.

    A ``plm`` spec whose backend fingerprint matches the pipeline's backend is
    re-bound to the *same* backend instance, so the pipeline's cache / circuit
    state stays singular instead of every channel owning a private copy.
    """
    channels = []
    for spec in specs:
        channel = build_feature_channel(spec)
        if (backend is not None and isinstance(channel, PLMChannel)
                and channel.backend.fingerprint() == backend.fingerprint()):
            channel.backend = backend
        channels.append(channel)
    return channels


# --------------------------------------------------------------------------- #
# Stock channels                                                               #
# --------------------------------------------------------------------------- #
class PLMChannel(FeatureChannel):
    """Frozen-PLM activations served by any :class:`EncoderBackend`."""

    kind = "plm"

    def __init__(self, backend: EncoderBackend):
        self.backend = as_backend(backend)

    def extract(self, items, token_ids, mask):
        return self.backend.encode(token_ids, mask)

    def serve(self, request: ServeRequest) -> np.ndarray:
        # Through the request's wrapped encode so the pipeline's retry policy
        # and circuit breaker apply, exactly like the pre-registry hard wiring.
        return request.encode_plm(request.token_ids, request.mask)

    def to_spec(self) -> dict:
        return {"kind": self.kind, "backend": self.backend.to_spec()}

    @classmethod
    def from_spec(cls, spec: dict) -> "PLMChannel":
        return cls(backend_from_spec(spec["backend"]))


class StyleChannel(FeatureChannel):
    """Handcrafted writing-style features (:func:`style_features_batch`)."""

    kind = "style"

    def extract(self, items, token_ids, mask):
        return style_features_batch(default_token_lists(
            [item.text for item in items]))

    def serve(self, request: ServeRequest) -> np.ndarray:
        return style_features_batch(request.token_lists)

    def to_spec(self) -> dict:
        return {"kind": self.kind}

    @classmethod
    def from_spec(cls, spec: dict) -> "StyleChannel":
        return cls()


class EmotionChannel(FeatureChannel):
    """Handcrafted dual-emotion features (:func:`emotion_features_batch`)."""

    kind = "emotion"

    def extract(self, items, token_ids, mask):
        return emotion_features_batch(default_token_lists(
            [item.text for item in items]))

    def serve(self, request: ServeRequest) -> np.ndarray:
        return emotion_features_batch(request.token_lists)

    def to_spec(self) -> dict:
        return {"kind": self.kind}

    @classmethod
    def from_spec(cls, spec: dict) -> "EmotionChannel":
        return cls()


register_feature_channel("plm", PLMChannel)
register_feature_channel("style", StyleChannel)
register_feature_channel("emotion", EmotionChannel)

#: the names every stock training loader precomputes, in loader order
STOCK_CHANNELS: tuple[str, ...] = ("plm", "style", "emotion")


def stock_channels(backend: EncoderBackend) -> list[FeatureChannel]:
    """The three stock channels, with ``plm`` bound to ``backend``."""
    return [PLMChannel(backend), StyleChannel(), EmotionChannel()]
