"""Plain-text table formatting for the reproduced experiments.

The formatting mirrors the layout of the paper's tables so that the benchmark
output can be compared side-by-side with the published numbers.  Everything
returns a string (and never prints directly) so the callers decide where the
output goes.
"""

from __future__ import annotations

from repro.analysis.bias_analysis import BiasAudit
from repro.analysis.case_study import CaseStudyRow
from repro.metrics import EvaluationReport
from repro.models import display_name

#: method-name → pretty row label for the "Our" rows
_OUR_ROWS = {"our_md": "Our(MD)", "our_m3": "Our(M3)"}

#: static functional-comparison matrix of Table II (method → capabilities)
FUNCTIONAL_COMPARISON: dict[str, dict[str, object]] = {
    "BiGRU": {"single_domain": True, "multi_domain": False, "debiasing": False,
              "bias_type": None, "datasets": ["Twitter", "Weibo"]},
    "StyleLSTM": {"single_domain": True, "multi_domain": False, "debiasing": False,
                  "bias_type": None, "datasets": ["StyleLSTM"]},
    "DualEmo": {"single_domain": True, "multi_domain": False, "debiasing": False,
                "bias_type": None, "datasets": ["RumourEval-19", "Weibo-16", "Weibo-20"]},
    "EANN": {"single_domain": True, "multi_domain": False, "debiasing": False,
             "bias_type": None, "datasets": ["Twitter", "Weibo"]},
    "Diachronic Bias Mitigation": {"single_domain": True, "multi_domain": False,
                                   "debiasing": True, "bias_type": "Diachronic",
                                   "datasets": ["MultiFC", "Horne17", "Celebrity", "Constraint"]},
    "EDDFN": {"single_domain": False, "multi_domain": True, "debiasing": False,
              "bias_type": None, "datasets": ["PolitiFact", "Gossipcop", "CoAID"]},
    "MDFEND": {"single_domain": False, "multi_domain": True, "debiasing": False,
               "bias_type": None, "datasets": ["Weibo21"]},
    "ENDEF": {"single_domain": True, "multi_domain": False, "debiasing": True,
              "bias_type": "Entity", "datasets": ["Weibo", "GossipCop"]},
    "M3FEND": {"single_domain": False, "multi_domain": True, "debiasing": False,
               "bias_type": None,
               "datasets": ["Weibo21", "Politifact", "Gossipcop", "COVID"]},
    "DTDBD (ours)": {"single_domain": False, "multi_domain": True, "debiasing": True,
                     "bias_type": "Domain",
                     "datasets": ["Weibo21", "Politifact", "Gossipcop", "COVID"]},
}


def _row_label(name: str) -> str:
    return _OUR_ROWS.get(name, display_name(name))


def format_comparison_table(reports: dict[str, EvaluationReport], domain_names: list[str],
                            title: str = "Comparison") -> str:
    """Format Table VI / VII: per-domain F1 then overall F1, FNED, FPED, Total."""
    short = [name[:6].capitalize() for name in domain_names]
    header = ["Method"] + short + ["F1", "FNED", "FPED", "Total"]
    widths = [max(14, len(header[0]))] + [7] * (len(header) - 1)
    lines = [title, "-" * (sum(widths) + len(widths))]
    lines.append(" ".join(h.ljust(w) for h, w in zip(header, widths)))
    for name, report in reports.items():
        row = [_row_label(name).ljust(widths[0])]
        for domain in domain_names:
            row.append(f"{report.per_domain_f1.get(domain, float('nan')):.4f}".ljust(7))
        row.append(f"{report.overall_f1:.4f}".ljust(7))
        row.append(f"{report.fned:.4f}".ljust(7))
        row.append(f"{report.fped:.4f}".ljust(7))
        row.append(f"{report.total:.4f}".ljust(7))
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_compact_table(reports: dict[str, EvaluationReport],
                         title: str = "Ablation") -> str:
    """Format Table VIII / IX rows: F1, FNED, FPED, Total only."""
    header = ["Variant".ljust(20), "F1".ljust(8), "FNED".ljust(8), "FPED".ljust(8), "Total".ljust(8)]
    lines = [title, "-" * 56, " ".join(header)]
    for name, report in reports.items():
        lines.append(" ".join([
            name.ljust(20),
            f"{report.overall_f1:.4f}".ljust(8),
            f"{report.fned:.4f}".ljust(8),
            f"{report.fped:.4f}".ljust(8),
            f"{report.total:.4f}".ljust(8),
        ]))
    return "\n".join(lines)


def format_bias_audit(audit: BiasAudit, title: str = "Table III — domain bias audit") -> str:
    """Format Table III: FNR / FPR per model per skewed domain."""
    table = audit.as_table()
    domains = sorted({row.domain for row in audit.rows})
    header = ["Model".ljust(12)]
    for domain in domains:
        header.append(f"{domain[:8]}-FNR".ljust(13))
        header.append(f"{domain[:8]}-FPR".ljust(13))
    lines = [title, "-" * (len(header) * 13), " ".join(header)]
    for model, values in table.items():
        row = [display_name(model).ljust(12)]
        for domain in domains:
            row.append(f"{values.get(f'{domain}_fnr', 0.0):.4f}".ljust(13))
            row.append(f"{values.get(f'{domain}_fpr', 0.0):.4f}".ljust(13))
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_dataset_statistics(table: dict, title: str = "Dataset statistics") -> str:
    """Format Table I / IV / V from :func:`repro.data.dataset_statistics_table`."""
    lines = [title, "-" * 64]
    lines.append(" ".join(["Domain".ljust(15), "Fake".ljust(7), "Real".ljust(7),
                           "Total".ljust(7), "%Fake".ljust(7), "%News".ljust(7)]))
    for row in table["domains"]:
        lines.append(" ".join([
            str(row["domain"]).ljust(15),
            str(row["fake"]).ljust(7),
            str(row["real"]).ljust(7),
            str(row["total"]).ljust(7),
            f"{row['pct_fake']:.1f}".ljust(7),
            f"{row['pct_news']:.1f}".ljust(7),
        ]))
    lines.append(f"All: {table['total']} items, {table['total_fake']} fake, "
                 f"{table['total_real']} real (avg %Fake "
                 f"{table['average']['pct_fake']:.1f})")
    return "\n".join(lines)


def format_case_study(rows: list[CaseStudyRow], title: str = "Figure 3 — case study") -> str:
    """Format the case-study probes with each model's probability of the truth."""
    lines = [title, "-" * 72]
    for row in rows:
        truth = "fake" if row.true_label == 1 else "real"
        lines.append(f"[{row.domain}] true={truth} — {row.description}")
        for prediction in row.predictions:
            verdict = "correct" if prediction.correct else "WRONG"
            lines.append(f"    {prediction.model.ljust(10)} "
                         f"p(true label)={prediction.probability_true_label:.3f} ({verdict})")
    return "\n".join(lines)


def format_mixing_scores(scores: dict[str, dict], title: str = "Figure 2 — domain mixing") -> str:
    """Format the quantitative Figure-2 analysis (t-SNE domain-mixing entropy)."""
    lines = [title, "-" * 48, "Model".ljust(24) + "mixing score"]
    for name, result in scores.items():
        lines.append(name.ljust(24) + f"{result['mixing_score']:.4f}")
    return "\n".join(lines)


def format_functional_comparison(title: str = "Table II — functional comparison") -> str:
    """Format the static capability matrix of Table II."""
    header = ["Method".ljust(28), "Single".ljust(8), "Multi".ljust(8),
              "Debias".ljust(8), "BiasType".ljust(12)]
    lines = [title, "-" * 72, " ".join(header)]
    for method, caps in FUNCTIONAL_COMPARISON.items():
        lines.append(" ".join([
            method.ljust(28),
            ("yes" if caps["single_domain"] else "-").ljust(8),
            ("yes" if caps["multi_domain"] else "-").ljust(8),
            ("yes" if caps["debiasing"] else "-").ljust(8),
            (str(caps["bias_type"]) if caps["bias_type"] else "-").ljust(12),
        ]))
    return "\n".join(lines)
