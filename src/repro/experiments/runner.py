"""Experiment runner: data preparation and the per-table reproduction pipelines.

Every public function here corresponds to a table or figure of the paper and is
called both by ``benchmarks/`` (pytest-benchmark targets) and by the example
scripts, so the numbers printed by either always come from the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bias_analysis import BiasAudit, TABLE3_MODELS, audit_models
from repro.analysis.case_study import CaseStudyRow, run_case_study
from repro.analysis.tsne import feature_domain_mixing
from repro.core.dat import DATConfig, train_dat_student, train_unbiased_teacher
from repro.core.dtdbd import DTDBDConfig, DTDBDTrainer
from repro.core.trainer import Trainer, collect_features, evaluate_model
from repro.data.loader import DataLoader
from repro.data.splits import DatasetSplits, stratified_split
from repro.data.synthetic import (
    ENGLISH_DOMAIN_SPECS,
    WEIBO21_DOMAIN_SPECS,
    SyntheticCorpusConfig,
    SyntheticNewsGenerator,
    make_english_like,
    make_weibo21_like,
)
from repro.data.vocab import Vocabulary
from repro.encoders import (
    EncoderBackend,
    FrozenPretrainedEncoder,
    stock_channels,
    wrap_encoder,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics import EvaluationReport
from repro.models import build_model
from repro.models.base import FakeNewsDetector, ModelConfig
from repro.serve import export_pipeline as serve_export_pipeline
from repro.tensor import set_default_dtype
from repro.utils import set_global_seed


# --------------------------------------------------------------------------- #
# Data preparation                                                             #
# --------------------------------------------------------------------------- #
@dataclass
class DataBundle:
    """Dataset, splits, vocabulary, frozen encoder and the three loaders."""

    config: ExperimentConfig
    dataset: object
    splits: DatasetSplits
    vocab: Vocabulary
    encoder: FrozenPretrainedEncoder
    train_loader: DataLoader
    val_loader: DataLoader
    test_loader: DataLoader
    #: legacy name -> extractor view of ``channels`` (case study, callers
    #: that build their own loaders)
    feature_extractors: dict = field(default_factory=dict)
    #: the backend serving the ``plm`` channel (selected by
    #: ``ExperimentConfig.encoder_backend``; wraps ``encoder``)
    encoder_backend: EncoderBackend | None = None
    #: the resolved FeatureChannel objects the loaders precomputed with —
    #: what :meth:`export_pipeline` persists, so custom channels round-trip
    channels: list = field(default_factory=list)

    @property
    def num_domains(self) -> int:
        return self.dataset.num_domains

    def reseed(self) -> None:
        """Reset every mutable random stream this bundle owns.

        Restores the three loaders' shuffle generators to their constructor
        state and re-installs the experiment seed as the process-wide fallback
        seed.  After a ``reseed()`` a pipeline run over this bundle produces
        exactly the numbers it would produce against a freshly built bundle —
        which is how the benchmark suite keeps every table reproducible both
        standalone and in a full collection run.
        """
        for loader in (self.train_loader, self.val_loader, self.test_loader):
            loader.reseed()
        set_global_seed(self.config.seed)

    def model_config(self, seed_offset: int = 0, **overrides) -> ModelConfig:
        base = self.config.model.with_overrides(
            plm_dim=self.config.plm_dim,
            num_domains=self.num_domains,
            seed=self.config.seed + seed_offset,
        )
        return base.with_overrides(**overrides) if overrides else base

    def export_pipeline(self, model: FakeNewsDetector, path,
                        model_name: str | None = None, metadata: dict | None = None) -> str:
        """Bundle ``model`` (trained against this bundle) into a servable artifact.

        Every piece of serving state — vocabulary, tokenizer, frozen encoder,
        sequence length, domain names — comes from the bundle the model was
        trained on, so any student returned by :func:`train_baseline`,
        :func:`train_unbiased` or :func:`train_dtdbd_student` is one call away
        from ``repro.serve.load_pipeline``-able.
        """
        return export_pipeline(model, bundle=self, path=path,
                               model_name=model_name, metadata=metadata)


def prepare_data(config: ExperimentConfig) -> DataBundle:
    """Generate the corpus, split it, build the vocabulary and the loaders."""
    # Install the compute-dtype policy before anything dtype-sensitive is
    # built (feature channels, parameters, zero states); models constructed
    # later against this bundle inherit the same policy.  The experiment seed
    # also becomes the process-wide fallback seed, so components built without
    # an explicit rng (e.g. a bare Dropout) stay reproducible run-to-run.
    # Both installs are process-global: interleaving prepare_data calls for
    # several configs leaves the *last* config's policy/seed active, so a
    # caller juggling bundles should invoke bundle.reseed() before training
    # against an earlier one (the benchmark fixtures do exactly that).
    set_default_dtype(config.dtype)
    set_global_seed(config.seed)
    if config.dataset == "chinese":
        dataset = make_weibo21_like(scale=config.scale, seed=config.seed)
    elif config.dataset == "english":
        dataset = make_english_like(scale=config.scale, seed=config.seed)
    else:
        raise ValueError(f"unknown dataset '{config.dataset}' (use 'chinese' or 'english')")
    splits = stratified_split(dataset, train_fraction=config.train_fraction,
                              val_fraction=config.val_fraction, seed=config.split_seed)
    vocab = splits.train.build_vocabulary()
    encoder = FrozenPretrainedEncoder(len(vocab), output_dim=config.plm_dim,
                                      seed=config.seed + 1)
    # The backend is the single ``plm`` service every consumer shares: the
    # three loaders, the channel objects and (via export_pipeline) the
    # serving artifact.  "local" is bit-identical to calling the encoder
    # directly; "cached"/"remote" are bit-identical too (pinned by
    # tests/encoders/test_backends.py), just with different operational
    # behaviour.
    backend = wrap_encoder(config.encoder_backend, encoder,
                           **config.encoder_backend_options)
    channels = stock_channels(backend)
    extractors = {channel.name: channel.as_extractor() for channel in channels}

    def loader(split, shuffle):
        return DataLoader(split, vocab, max_length=config.max_length,
                          batch_size=config.batch_size, shuffle=shuffle,
                          seed=config.split_seed, channels=channels)

    return DataBundle(
        config=config,
        dataset=dataset,
        splits=splits,
        vocab=vocab,
        encoder=encoder,
        train_loader=loader(splits.train, True),
        val_loader=loader(splits.val, False),
        test_loader=loader(splits.test, False),
        feature_extractors=extractors,
        encoder_backend=backend,
        channels=channels,
    )


# --------------------------------------------------------------------------- #
# Serving export                                                               #
# --------------------------------------------------------------------------- #
def export_pipeline(model: FakeNewsDetector, bundle: DataBundle, path,
                    model_name: str | None = None, metadata: dict | None = None) -> str:
    """Export a bundle-trained model as a ``repro.serve`` pipeline artifact.

    Records the experiment provenance (dataset, scale, seed, dtype) in the
    artifact's metadata; returns the artifact path.
    """
    provenance = {
        "dataset": bundle.config.dataset,
        "scale": bundle.config.scale,
        "seed": bundle.config.seed,
        "trained_dtype": bundle.config.dtype,
    }
    provenance.update(metadata or {})
    return serve_export_pipeline(
        model, path,
        vocab=bundle.vocab,
        encoder=bundle.encoder_backend or bundle.encoder,
        tokenizer=bundle.train_loader.tokenizer,
        max_length=bundle.config.max_length,
        domain_names=bundle.dataset.domain_names,
        model_name=model_name,
        # Record the channel objects the model actually trained on, so custom
        # (registered) channels round-trip through the artifact and a
        # non-recomputable one fails fast at predictor construction instead
        # of a KeyError deep inside a serving forward.
        feature_channels=tuple(bundle.feature_extractors),
        channels=list(bundle.channels) or None,
        metadata=provenance,
    )


# --------------------------------------------------------------------------- #
# Single-model pipelines                                                       #
# --------------------------------------------------------------------------- #
def train_baseline(name: str, bundle: DataBundle, seed_offset: int = 0,
                   epochs: int | None = None) -> tuple[FakeNewsDetector, EvaluationReport]:
    """Train one baseline with the standard supervised loop and evaluate on test."""
    config = bundle.config
    model = build_model(name, bundle.model_config(seed_offset=seed_offset))
    trainer_config = config.trainer_config()
    if epochs is not None:
        trainer_config = config.trainer_config(epochs=epochs)
    Trainer(model, trainer_config).fit(bundle.train_loader, bundle.val_loader)
    report = evaluate_model(model, bundle.test_loader, model_name=name)
    return model, report


def train_unbiased(bundle: DataBundle, student_name: str | None = None,
                   dat_config: DATConfig | None = None,
                   seed_offset: int = 100) -> tuple[FakeNewsDetector, EvaluationReport]:
    """Train the DAT-IE unbiased teacher on the student architecture."""
    student_name = student_name or bundle.config.student_name
    backbone = build_model(student_name, bundle.model_config(seed_offset=seed_offset))
    backbone, _ = train_unbiased_teacher(backbone, bundle.train_loader, bundle.val_loader,
                                         config=dat_config or bundle.config.dat,
                                         seed=bundle.config.seed + seed_offset)
    report = evaluate_model(backbone, bundle.test_loader,
                            model_name=f"{student_name}+dat-ie")
    return backbone, report


def train_dtdbd_student(bundle: DataBundle,
                        unbiased_teacher: FakeNewsDetector | None,
                        clean_teacher: FakeNewsDetector | None,
                        student_name: str | None = None,
                        dtdbd_config: DTDBDConfig | None = None,
                        seed_offset: int = 200,
                        ) -> tuple[FakeNewsDetector, EvaluationReport, DTDBDTrainer]:
    """Distil a fresh student from the two (frozen) teachers."""
    student_name = student_name or bundle.config.student_name
    student = build_model(student_name, bundle.model_config(seed_offset=seed_offset))
    trainer = DTDBDTrainer(student, unbiased_teacher, clean_teacher,
                           config=dtdbd_config or bundle.config.dtdbd)
    trainer.fit(bundle.train_loader, bundle.val_loader)
    report = evaluate_model(student, bundle.test_loader, model_name=f"dtdbd-{student_name}")
    return student, report, trainer


# --------------------------------------------------------------------------- #
# Table reproductions                                                          #
# --------------------------------------------------------------------------- #
#: baselines appearing in Table VI (Chinese) in paper order
TABLE6_BASELINES: tuple[str, ...] = (
    "bigru", "textcnn", "bert", "roberta", "stylelstm", "dualemo",
    "eann", "eann_nodat", "mmoe", "mose", "eddfn", "eddfn_nodat",
    "mdfend", "m3fend",
)
#: baselines appearing in Table VII (English) in paper order
TABLE7_BASELINES: tuple[str, ...] = (
    "bigru", "textcnn", "roberta", "stylelstm", "dualemo",
    "eann", "eann_nodat", "mmoe", "mose", "eddfn", "eddfn_nodat",
    "mdfend", "m3fend",
)


def run_comparison(config: ExperimentConfig, baselines: tuple[str, ...] | None = None,
                   include_dtdbd: bool = True,
                   bundle: DataBundle | None = None) -> dict[str, EvaluationReport]:
    """Reproduce Table VI / Table VII: every baseline plus Our(MD) and Our(M3).

    Returns a mapping of method name to its :class:`EvaluationReport` on the
    test split.
    """
    bundle = bundle or prepare_data(config)
    if baselines is None:
        baselines = TABLE6_BASELINES if config.dataset == "chinese" else TABLE7_BASELINES
    reports: dict[str, EvaluationReport] = {}
    trained: dict[str, FakeNewsDetector] = {}
    for offset, name in enumerate(baselines):
        model, report = train_baseline(name, bundle, seed_offset=offset)
        trained[name] = model
        reports[name] = report
    if include_dtdbd:
        unbiased, _ = train_unbiased(bundle)
        for teacher_name, row_name in (("mdfend", "our_md"), ("m3fend", "our_m3")):
            if teacher_name in trained:
                clean = trained[teacher_name]
            else:
                clean, _ = train_baseline(teacher_name, bundle, seed_offset=300)
            _, report, _ = train_dtdbd_student(bundle, unbiased, clean,
                                               seed_offset=400 + len(reports))
            reports[row_name] = report
    return reports


def run_table3(config: ExperimentConfig, models: tuple[str, ...] = TABLE3_MODELS,
               bundle: DataBundle | None = None) -> BiasAudit:
    """Reproduce Table III: FNR/FPR of four advanced baselines on skewed domains."""
    bundle = bundle or prepare_data(config)
    trained: dict[str, FakeNewsDetector] = {}
    for offset, name in enumerate(models):
        model, _ = train_baseline(name, bundle, seed_offset=offset)
        trained[name] = model
    return audit_models(trained, bundle.test_loader)


def run_table8_ablation(config: ExperimentConfig, student_names: tuple[str, ...] = ("textcnn_s", "bigru_s"),
                        bundle: DataBundle | None = None) -> dict[str, dict[str, EvaluationReport]]:
    """Reproduce Table VIII: component ablation for each student architecture.

    Rows per student: ``student``, ``student+dat_ie``, ``teacher_m3``,
    ``student+dnd``, ``student+add``, ``wo_daa``, ``dtdbd``.
    """
    bundle = bundle or prepare_data(config)
    clean_teacher, teacher_report = train_baseline("m3fend", bundle, seed_offset=77)
    results: dict[str, dict[str, EvaluationReport]] = {}
    for student_name in student_names:
        rows: dict[str, EvaluationReport] = {}
        _, rows["student"] = train_baseline(student_name, bundle, seed_offset=10)
        unbiased, rows["student+dat_ie"] = train_unbiased(bundle, student_name=student_name)
        rows["teacher_m3"] = teacher_report
        _, rows["student+dnd"], _ = train_dtdbd_student(
            bundle, None, clean_teacher, student_name=student_name,
            dtdbd_config=_override(bundle.config.dtdbd, use_add=False), seed_offset=210)
        _, rows["student+add"], _ = train_dtdbd_student(
            bundle, unbiased, None, student_name=student_name,
            dtdbd_config=_override(bundle.config.dtdbd, use_dkd=False), seed_offset=220)
        _, rows["wo_daa"], _ = train_dtdbd_student(
            bundle, unbiased, clean_teacher, student_name=student_name,
            dtdbd_config=_override(bundle.config.dtdbd, use_dynamic_adjustment=False),
            seed_offset=230)
        _, rows["dtdbd"], _ = train_dtdbd_student(
            bundle, unbiased, clean_teacher, student_name=student_name, seed_offset=240)
        results[student_name] = rows
    return results


def run_table9_dat_comparison(config: ExperimentConfig,
                              student_names: tuple[str, ...] = ("textcnn_s", "bigru_s"),
                              bundle: DataBundle | None = None,
                              ) -> dict[str, dict[str, EvaluationReport]]:
    """Reproduce Table IX: plain student vs +DAT vs +DAT-IE for each student."""
    bundle = bundle or prepare_data(config)
    results: dict[str, dict[str, EvaluationReport]] = {}
    for student_name in student_names:
        rows: dict[str, EvaluationReport] = {}
        _, rows["student"] = train_baseline(student_name, bundle, seed_offset=10)
        for use_ie, row in ((False, "student+dat"), (True, "student+dat_ie")):
            backbone = build_model(student_name, bundle.model_config(seed_offset=20 + int(use_ie)))
            backbone, _ = train_dat_student(
                backbone, bundle.train_loader, bundle.val_loader,
                use_information_entropy=use_ie, epochs=bundle.config.dat.epochs,
                learning_rate=bundle.config.dat.learning_rate, seed=bundle.config.seed)
            rows[row] = evaluate_model(backbone, bundle.test_loader,
                                       model_name=f"{student_name}{'+dat-ie' if use_ie else '+dat'}")
        results[student_name] = rows
    return results


def run_figure2_mixing(config: ExperimentConfig, bundle: DataBundle | None = None,
                       max_points: int = 300) -> dict[str, dict]:
    """Reproduce Figure 2 quantitatively: domain-mixing of intermediate features.

    Compares M3FEND, the plain student (TextCNN-U), the DAT-IE student and the
    DTDBD student.  Higher ``mixing_score`` means domains are more interleaved
    in feature space (the paper's claim is that DTDBD mixes more than the plain
    student while M3FEND keeps domain-specific clusters).
    """
    bundle = bundle or prepare_data(config)
    clean_teacher, _ = train_baseline("m3fend", bundle, seed_offset=77)
    student, _ = train_baseline(bundle.config.student_name, bundle, seed_offset=10)
    unbiased, _ = train_unbiased(bundle)
    dtdbd_student, _, _ = train_dtdbd_student(bundle, unbiased, clean_teacher)
    named = {
        "m3fend": clean_teacher,
        "textcnn_u": student,
        "textcnn_u+dat_ie": unbiased,
        "textcnn_u+dtdbd": dtdbd_student,
    }
    results: dict[str, dict] = {}
    for name, model in named.items():
        features, _, domains = collect_features(model, bundle.test_loader, max_items=max_points)
        analysis = feature_domain_mixing(features, domains, max_points=max_points,
                                         seed=config.seed)
        results[name] = {"mixing_score": analysis["mixing_score"],
                         "num_points": int(analysis["embedding"].shape[0])}
    return results


def run_figure3_case_study(config: ExperimentConfig,
                           bundle: DataBundle | None = None) -> list[CaseStudyRow]:
    """Reproduce Figure 3: probe predictions of M3FEND, MDFEND and DTDBD."""
    bundle = bundle or prepare_data(config)
    m3fend, _ = train_baseline("m3fend", bundle, seed_offset=77)
    mdfend, _ = train_baseline("mdfend", bundle, seed_offset=78)
    unbiased, _ = train_unbiased(bundle)
    dtdbd_student, _, _ = train_dtdbd_student(bundle, unbiased, m3fend)
    specs = WEIBO21_DOMAIN_SPECS if config.dataset == "chinese" else ENGLISH_DOMAIN_SPECS
    generator = SyntheticNewsGenerator(SyntheticCorpusConfig(
        name="case-study", domain_specs=specs, scale=max(config.scale, 0.1),
        seed=config.seed + 7))
    probes = generator.generate_case_study()
    models = {"m3fend": m3fend, "mdfend": mdfend, "dtdbd": dtdbd_student}
    return run_case_study(probes, models, bundle.vocab, bundle.dataset.domain_names,
                          max_length=config.max_length,
                          feature_extractors=bundle.feature_extractors)


def _override(dtdbd_config: DTDBDConfig, **overrides) -> DTDBDConfig:
    from dataclasses import replace

    return replace(dtdbd_config, **overrides)
