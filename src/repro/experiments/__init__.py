"""Experiment configuration, runners and table formatting."""

from repro.experiments.config import (
    ExperimentConfig,
    default_chinese_config,
    default_english_config,
    fast_test_config,
)
from repro.experiments.runner import (
    TABLE6_BASELINES,
    TABLE7_BASELINES,
    DataBundle,
    export_pipeline,
    prepare_data,
    run_comparison,
    run_figure2_mixing,
    run_figure3_case_study,
    run_table3,
    run_table8_ablation,
    run_table9_dat_comparison,
    train_baseline,
    train_dtdbd_student,
    train_unbiased,
)
from repro.experiments.io import (
    load_results,
    report_to_dict,
    results_to_json,
    save_results,
)
from repro.experiments.journal import CellRecord, JournalError, RunJournal
from repro.experiments.orchestrator import (
    CellOutcome,
    CellSpec,
    OrchestratorConfig,
    SweepFailed,
    SweepResult,
    register_cell_kind,
    run_cell,
    run_sweep,
    sweep_fingerprint,
    table_cell_specs,
)
from repro.experiments.stream_schedule import (
    StreamScheduleConfig,
    generate_stream_schedule,
)
from repro.experiments.tables import (
    FUNCTIONAL_COMPARISON,
    format_bias_audit,
    format_case_study,
    format_compact_table,
    format_comparison_table,
    format_dataset_statistics,
    format_functional_comparison,
    format_mixing_scores,
)

__all__ = [
    "ExperimentConfig", "default_chinese_config", "default_english_config", "fast_test_config",
    "DataBundle", "prepare_data", "export_pipeline",
    "train_baseline", "train_unbiased", "train_dtdbd_student",
    "run_comparison", "run_table3", "run_table8_ablation", "run_table9_dat_comparison",
    "run_figure2_mixing", "run_figure3_case_study",
    "TABLE6_BASELINES", "TABLE7_BASELINES",
    "format_comparison_table", "format_compact_table", "format_bias_audit",
    "format_dataset_statistics", "format_case_study", "format_mixing_scores",
    "format_functional_comparison", "FUNCTIONAL_COMPARISON",
    "save_results", "load_results", "results_to_json", "report_to_dict",
    "RunJournal", "CellRecord", "JournalError",
    "CellSpec", "CellOutcome", "OrchestratorConfig", "SweepResult", "SweepFailed",
    "register_cell_kind", "run_cell", "run_sweep", "sweep_fingerprint",
    "table_cell_specs",
    "StreamScheduleConfig", "generate_stream_schedule",
]
