"""Synthetic domain-shift schedules for the streaming subsystem.

A *stream schedule* is an ordered list of
:class:`~repro.streaming.StreamEvent`\\ s replaying three phases of a
production day gone wrong:

* **Phase A — steady state.**  Traffic from the seed domains, mixed
  proportionally to the paper's per-domain volumes, labels following each
  domain's fake ratio, only a fraction of events labeled (labels trail
  traffic in production).
* **Phase B — drift.**  One domain's content turns *ambiguous*
  (``force_ambiguous=True``: no shared veracity signal, no domain cue — only
  the domain prior remains) while its label mix flips **against** that
  prior.  A model leaning on the prior mislabels the window, its per-domain
  FNR/FPR deviates from the pooled rates, its score distribution shifts —
  both :class:`~repro.streaming.DriftMonitor` signals have something to
  fire on.  Mostly labeled, so the bias signal is live.
* **Phase C — novel domain.**  Events from a domain that did not exist at
  training time (:meth:`~repro.data.SyntheticNewsGenerator.sample_novel_item`:
  out-of-vocabulary topic tokens, in-vocab shared veracity signal).  The
  first ``novel_labeled`` events carry labels for few-shot warm-up; the
  rest are unlabeled tracking traffic.

The schedule is a pure function of the config (single seeded RNG + the
corpus generator's own stream), so replays are deterministic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.data.dataset import FAKE_LABEL, REAL_LABEL
from repro.data.synthetic import (
    ENGLISH_DOMAIN_SPECS,
    WEIBO21_DOMAIN_SPECS,
    SyntheticCorpusConfig,
    SyntheticNewsGenerator,
)
from repro.streaming.events import StreamEvent


@dataclass
class StreamScheduleConfig:
    """Shape of one synthetic domain-shift schedule."""

    #: "chinese" (Weibo21-like, nine domains) or "english" (three domains)
    dataset: str = "chinese"
    #: corpus scale — match the trained model's corpus so tokens are in-vocab
    scale: float = 0.05
    seed: int = 2024
    #: event counts per phase
    seed_events: int = 96
    drift_events: int = 64
    novel_events: int = 24
    #: the domain whose traffic turns ambiguous in phase B
    drift_domain: str = "disaster"
    #: share of phase-B events from the drifting domain (rest is background)
    drift_share: float = 0.75
    #: probability a drift item's label opposes the domain prior
    drift_label_flip: float = 0.85
    #: the unseen domain of phase C
    novel_domain: str = "crypto"
    #: labeled fraction of phase-A (and phase-B background) traffic
    labeled_fraction: float = 0.5
    #: labeled fraction of phase-B drift-domain traffic
    drift_labeled_fraction: float = 0.9
    #: the first N phase-C events carry labels (few-shot warm-up budget)
    novel_labeled: int = 8

    def __post_init__(self):
        if self.dataset not in ("chinese", "english"):
            raise ValueError(
                f"dataset must be 'chinese' or 'english', got '{self.dataset}'")
        if not 0.0 < self.drift_share <= 1.0:
            raise ValueError("drift_share must be in (0, 1]")
        for name in ("seed_events", "drift_events", "novel_events"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def domain_specs(self):
        return (WEIBO21_DOMAIN_SPECS if self.dataset == "chinese"
                else ENGLISH_DOMAIN_SPECS)


def generate_stream_schedule(
        config: StreamScheduleConfig | None = None,
) -> "tuple[list[StreamEvent], dict]":
    """Build ``(events, metadata)`` for the configured domain-shift story."""
    config = config or StreamScheduleConfig()
    specs = config.domain_specs()
    names = [spec.name for spec in specs]
    if config.drift_domain not in names:
        raise ValueError(
            f"drift domain '{config.drift_domain}' not in {names}")
    if config.novel_domain in names:
        raise ValueError(
            f"novel domain '{config.novel_domain}' already exists in {names}")
    generator = SyntheticNewsGenerator(SyntheticCorpusConfig(
        name=f"stream-{config.dataset}", domain_specs=specs,
        scale=config.scale, seed=config.seed + 7))
    rng = np.random.default_rng(config.seed + 13)
    weights = np.array([spec.total for spec in specs], dtype=np.float64)
    weights /= weights.sum()
    fake_ratios = {spec.name: spec.fake_ratio for spec in specs}
    drift_prior_fake = fake_ratios[config.drift_domain] >= 0.5

    events: list[StreamEvent] = []

    def background_event(ordinal: int, phase: str,
                         labeled_fraction: float) -> StreamEvent:
        domain = names[int(rng.choice(len(names), p=weights))]
        label = (FAKE_LABEL if rng.random() < fake_ratios[domain]
                 else REAL_LABEL)
        item = generator.sample_item(domain, label, item_id=ordinal)
        labeled = rng.random() < labeled_fraction
        return StreamEvent(ordinal=ordinal, text=item.text, domain=domain,
                           label=label if labeled else None,
                           metadata={"phase": phase})

    # Phase A: steady-state seed traffic.
    for ordinal in range(config.seed_events):
        events.append(background_event(ordinal, "seed",
                                       config.labeled_fraction))

    # Phase B: ambiguous drift-domain traffic with labels against the prior.
    for offset in range(config.drift_events):
        ordinal = config.seed_events + offset
        if rng.random() < config.drift_share:
            against_prior = rng.random() < config.drift_label_flip
            if against_prior:
                label = REAL_LABEL if drift_prior_fake else FAKE_LABEL
            else:
                label = FAKE_LABEL if drift_prior_fake else REAL_LABEL
            item = generator.sample_item(config.drift_domain, label,
                                         item_id=ordinal,
                                         force_ambiguous=True)
            labeled = rng.random() < config.drift_labeled_fraction
            events.append(StreamEvent(
                ordinal=ordinal, text=item.text, domain=config.drift_domain,
                label=label if labeled else None,
                metadata={"phase": "drift", "ambiguous": True}))
        else:
            events.append(background_event(ordinal, "drift",
                                           config.labeled_fraction))

    # Phase C: the unseen domain arrives; first few events are labeled.
    for offset in range(config.novel_events):
        ordinal = config.seed_events + config.drift_events + offset
        label = FAKE_LABEL if rng.random() < 0.5 else REAL_LABEL
        item = generator.sample_novel_item(config.novel_domain, label,
                                           item_id=ordinal)
        labeled = offset < config.novel_labeled
        events.append(StreamEvent(
            ordinal=ordinal, text=item.text, domain=config.novel_domain,
            label=label if labeled else None,
            metadata={"phase": "novel"}))

    metadata = {"generator": "repro.experiments.stream_schedule",
                "config": asdict(config)}
    return events, metadata


__all__ = ["StreamScheduleConfig", "generate_stream_schedule"]
