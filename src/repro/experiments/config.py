"""Experiment configuration shared by benchmarks, examples and the runner."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.dat import DATConfig
from repro.core.dtdbd import DTDBDConfig
from repro.core.trainer import TrainerConfig
from repro.models.base import ModelConfig


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one of the paper's experiments.

    ``scale`` multiplies the paper's per-domain counts; the defaults are chosen
    so the full benchmark suite finishes on a laptop-class CPU while keeping
    every domain populated.  Set ``REPRO_SCALE`` / ``REPRO_EPOCHS`` environment
    variables (see :func:`default_chinese_config`) to run closer to paper size.

    ``dtype`` selects the engine compute dtype for the whole pipeline
    (loaders, models, training): ``"float64"`` is the bit-for-bit seed
    behaviour, ``"float32"`` the fast path (``REPRO_DTYPE=float32``).
    :func:`repro.experiments.runner.prepare_data` installs the policy before
    anything dtype-sensitive is built.  Table VI/VII numbers produced in
    float32 agree with the float64 tables to well within the run-to-run seed
    variance (see ``PERFORMANCE.md``); re-check that tolerance after touching
    kernels before quoting float32 numbers.
    """

    dataset: str = "chinese"               # "chinese" (Weibo21-like) or "english"
    scale: float = 0.3
    seed: int = 2024
    split_seed: int = 0
    train_fraction: float = 0.6
    val_fraction: float = 0.1
    max_length: int = 24
    batch_size: int = 32
    plm_dim: int = 32
    epochs: int = 8
    learning_rate: float = 2e-3
    model: ModelConfig = field(default_factory=ModelConfig)
    dat: DATConfig = field(default_factory=DATConfig)
    dtdbd: DTDBDConfig = field(default_factory=DTDBDConfig)
    student_name: str = "textcnn_s"
    dtype: str = "float64"
    #: encoder backend serving the ``plm`` feature channel — a kind from
    #: :func:`repro.encoders.available_encoder_backends` ("local" is the
    #: bit-for-bit default; "cached" memoises repeated windows; "remote"
    #: exercises the embedding-service client).  ``REPRO_ENCODER_BACKEND``
    #: overrides it in the default configs.
    encoder_backend: str = "local"
    #: keyword options for the backend's ``from_encoder`` constructor
    #: (e.g. ``{"max_entries": 512}`` for "cached")
    encoder_backend_options: dict = field(default_factory=dict)

    def trainer_config(self, **overrides) -> TrainerConfig:
        base = TrainerConfig(epochs=self.epochs, learning_rate=self.learning_rate)
        return replace(base, **overrides) if overrides else base

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else default


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _env_str(name: str, default: str) -> str:
    value = os.environ.get(name)
    return value if value else default


def default_chinese_config(**overrides) -> ExperimentConfig:
    """Default configuration for the Weibo21-like (Chinese) experiments.

    ``REPRO_SCALE`` and ``REPRO_EPOCHS`` environment variables override the
    corpus scale and training epochs, which is how a user runs the benchmarks
    closer to the paper's full dataset size; ``REPRO_DTYPE=float32`` runs the
    whole pipeline on the float32 fast path.
    """
    scale = _env_float("REPRO_SCALE", 0.3)
    epochs = _env_int("REPRO_EPOCHS", 8)
    config = ExperimentConfig(
        dataset="chinese",
        scale=scale,
        epochs=epochs,
        dat=DATConfig(epochs=epochs, learning_rate=2e-3, alpha=1.0),
        dtdbd=DTDBDConfig(epochs=epochs, learning_rate=2e-3),
        dtype=_env_str("REPRO_DTYPE", "float64"),
        encoder_backend=_env_str("REPRO_ENCODER_BACKEND", "local"),
    )
    return config.with_overrides(**overrides) if overrides else config


def default_english_config(**overrides) -> ExperimentConfig:
    """Default configuration for the FakeNewsNet+COVID-like (English) experiments.

    The English corpus is much larger than Weibo21 (28,764 items), so the
    default scale is smaller; its three domains are kept intact.
    """
    scale = _env_float("REPRO_SCALE_EN", 0.08)
    epochs = _env_int("REPRO_EPOCHS", 8)
    config = ExperimentConfig(
        dataset="english",
        scale=scale,
        epochs=epochs,
        dat=DATConfig(epochs=epochs, learning_rate=2e-3, alpha=1.0),
        dtdbd=DTDBDConfig(epochs=epochs, learning_rate=2e-3),
        dtype=_env_str("REPRO_DTYPE", "float64"),
        encoder_backend=_env_str("REPRO_ENCODER_BACKEND", "local"),
    )
    return config.with_overrides(**overrides) if overrides else config


def fast_test_config(dataset: str = "chinese") -> ExperimentConfig:
    """Tiny configuration used by the unit/integration test-suite."""
    base = default_chinese_config() if dataset == "chinese" else default_english_config()
    return base.with_overrides(
        scale=0.05 if dataset == "chinese" else 0.02,
        epochs=2,
        max_length=16,
        dat=DATConfig(epochs=2, learning_rate=2e-3),
        dtdbd=DTDBDConfig(epochs=2, learning_rate=2e-3),
    )
