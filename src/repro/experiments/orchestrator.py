"""Fault-tolerant parallel experiment orchestrator.

Full table regeneration and the DTDBD grid used to run strictly serially: a
crash four tables in lost everything, and the wall-clock was the sum of every
cell.  This module fans **experiment cells** out across a supervised pool of
spawn-context worker processes with robustness as the contract:

* **Cells are deterministic units.**  A cell is a :class:`CellSpec` — a stable
  id, a *kind* (registry name or ``"module:callable"`` import path) and a
  JSON-able parameter dict.  Every stock kind rebuilds its world from scratch
  inside the worker (``prepare_data`` + ``DataBundle.reseed`` +
  ``set_global_seed``), so a cell's result is a pure function of its spec —
  which is what makes parallel execution, retries and re-dispatch after a
  worker death *byte-identical* to the serial run.
* **Journaled.**  With a journal directory, every attempt/completion lands in
  a durable, atomic, checksummed :class:`repro.experiments.journal.RunJournal`
  before the sweep proceeds; a SIGKILLed sweep resumes skipping completed
  cells (``resume=True``) with the skipped results digest-verified, and a
  journal from a different cell grid is refused readably.
* **Supervised.**  Worker death (crash, ``SIGKILL``, an injected
  ``orchestrate.cell`` fault raising ``SystemExit``) is detected by liveness
  polling; the slot respawns within a bounded restart budget and the cell it
  held is re-dispatched — zero lost cells.  Per-cell failures are retried
  with the seeded backoff of a :class:`repro.reliability.RetryPolicy`, and a
  per-cell wall-clock watchdog (``cell_timeout_s``) kills a wedged worker
  instead of wedging the sweep.
* **Chaos-replayable.**  The ``orchestrate.worker`` (startup),
  ``orchestrate.cell`` (execution) and ``orchestrate.journal`` (ledger I/O)
  fault sites drive the whole failure surface from a seeded
  :class:`repro.reliability.FaultPlan`; ``plan.reset()`` replays a chaos run
  exactly.

The **serial path is the ground truth**: ``OrchestratorConfig(jobs=0)`` runs
the same cells in-process in spec order through the same journal machinery,
and ``tests/experiments_orchestrator`` pins parallel-vs-serial byte-identity
(and parallel-vs-committed ``benchmarks/results`` tables) in both
``REPRO_DTYPE``\\ s.  The CLI ``sweep`` subcommand exposes all of it
(``--jobs``, ``--resume``, ``--journal``).
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.experiments.journal import RunJournal
from repro.reliability.durable import sha256_bytes
from repro.reliability.faults import fault_point, install_plan
from repro.reliability.retry import RetryPolicy


class SweepFailed(RuntimeError):
    """The sweep could not complete; the message carries per-cell diagnostics."""


# --------------------------------------------------------------------------- #
# Cell specs and kinds                                                         #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellSpec:
    """One deterministic unit of experiment work.

    ``kind`` is either a name registered via :func:`register_cell_kind` or a
    ``"module:callable"`` import path (resolved inside the worker process, so
    test suites can ship their own cell functions without pre-registration).
    ``params`` must be JSON-serialisable — it is the cell's entire identity:
    the fingerprint over ``(cell_id, kind, params)`` is what the journal uses
    to decide whether a completed result may be reused.
    """

    cell_id: str
    kind: str
    params: dict = field(default_factory=dict)

    def fingerprint(self) -> str:
        payload = {"cell_id": self.cell_id, "kind": self.kind,
                   "params": self.params}
        return sha256_bytes(json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            default=str).encode("utf-8"))[:16]


def sweep_fingerprint(specs) -> str:
    """Content hash over every cell spec — the journal's sweep identity."""
    parts = sorted(f"{spec.cell_id}:{spec.fingerprint()}" for spec in specs)
    return sha256_bytes("\n".join(parts).encode("utf-8"))[:16]


#: registered cell kinds: name -> callable(spec) -> JSON-able result dict
CELL_KINDS: dict[str, Callable[[CellSpec], dict]] = {}


def register_cell_kind(name: str, fn: Callable[[CellSpec], dict] | None = None):
    """Register a cell kind under ``name`` (usable as a decorator)."""

    def decorate(target):
        CELL_KINDS[name] = target
        return target

    return decorate(fn) if fn is not None else decorate


def resolve_cell_kind(kind: str) -> Callable[[CellSpec], dict]:
    """Look up a registered kind, or import a ``"module:callable"`` path."""
    if kind in CELL_KINDS:
        return CELL_KINDS[kind]
    if ":" in kind:
        module_name, _, attr = kind.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as error:
            raise ValueError(
                f"cell kind '{kind}': cannot import module '{module_name}' "
                f"({error})") from error
        fn = getattr(module, attr, None)
        if fn is None:
            raise ValueError(
                f"cell kind '{kind}': module '{module_name}' has no "
                f"attribute '{attr}'")
        return fn
    raise ValueError(
        f"unknown cell kind '{kind}'; registered kinds: "
        f"{sorted(CELL_KINDS)} (or use a 'module:callable' import path)")


def run_cell(spec: CellSpec, attempt: int = 1) -> dict:
    """Execute one cell in the current process and return its result payload.

    The ``orchestrate.cell`` fault site fires before the cell body with the
    cell id, kind and attempt number as its payload — a chaos plan can fail a
    specific cell, a specific attempt, or kill the hosting worker outright
    (``error=SystemExit``).
    """
    fn = resolve_cell_kind(spec.kind)
    fault_point("orchestrate.cell", cell=spec.cell_id, kind=spec.kind,
                attempt=attempt)
    return fn(spec)


# --------------------------------------------------------------------------- #
# Stock cell kinds: paper tables and single-baseline grid cells                #
# --------------------------------------------------------------------------- #
def _json_round_trip(value):
    from repro.experiments.io import results_to_json

    return json.loads(results_to_json(value))


def _experiment_config(dataset: str, overrides: dict | None):
    """Build the dataset's default config with JSON-able overrides applied.

    Mirrors the CLI's config handling: an ``epochs`` override also applies to
    the DAT and DTDBD sub-configs.
    """
    from repro.experiments.config import (
        default_chinese_config,
        default_english_config,
    )

    overrides = dict(overrides or {})
    factory = (default_chinese_config if dataset == "chinese"
               else default_english_config)
    config = factory(**overrides)
    epochs = overrides.get("epochs")
    if epochs is not None:
        config.dat.epochs = int(epochs)
        config.dtdbd.epochs = int(epochs)
    return config


def _prepared_bundle(dataset: str, overrides: dict | None):
    from repro.experiments.runner import prepare_data

    config = _experiment_config(dataset, overrides)
    bundle = prepare_data(config)
    bundle.reseed()
    return config, bundle


def _run_table1(overrides: dict) -> dict:
    from repro.data import (
        dataset_statistics_table,
        imbalance_summary,
        make_weibo21_like,
    )
    from repro.experiments.tables import format_dataset_statistics

    dataset = make_weibo21_like(scale=1.0, seed=2024)
    table = dataset_statistics_table(dataset)
    summary = imbalance_summary(dataset)
    text = format_dataset_statistics(
        table, title="Table I — Weibo21-like statistics (full scale)")
    text += ("\nImbalance: %News spread "
             f"{summary['news_share_spread']:.1f} points, %Fake spread "
             f"{summary['fake_ratio_spread']:.1f} points")
    return {"text": text,
            "results": _json_round_trip({"statistics": table,
                                         "imbalance": summary})}


def _run_table2(overrides: dict) -> dict:
    from repro.experiments.tables import (
        FUNCTIONAL_COMPARISON,
        format_functional_comparison,
    )

    return {"text": format_functional_comparison(),
            "results": _json_round_trip(FUNCTIONAL_COMPARISON)}


def _run_table3(overrides: dict) -> dict:
    import numpy as np

    from repro.analysis import TABLE3_MODELS
    from repro.experiments.runner import run_table3
    from repro.experiments.tables import format_bias_audit

    config, bundle = _prepared_bundle("chinese", overrides)
    audit = run_table3(config, models=TABLE3_MODELS, bundle=bundle)
    text = format_bias_audit(audit, title="Table III — FNR/FPR on skewed domains")
    summary = audit.skew_summary()
    lines = ["", "Shape check (mean over models):"]
    fake_heavy_fpr = np.mean([s["fake_heavy_fpr"] for s in summary.values()])
    fake_heavy_fnr = np.mean([s["fake_heavy_fnr"] for s in summary.values()])
    real_heavy_fpr = np.mean([s["real_heavy_fpr"] for s in summary.values()])
    real_heavy_fnr = np.mean([s["real_heavy_fnr"] for s in summary.values()])
    lines.append(f"  fake-heavy domains: FPR={fake_heavy_fpr:.3f} vs FNR={fake_heavy_fnr:.3f}")
    lines.append(f"  real-heavy domains: FNR={real_heavy_fnr:.3f} vs FPR={real_heavy_fpr:.3f}")
    return {"text": text + "\n".join(lines),
            "results": _json_round_trip({"table": audit.as_table(),
                                         "skew": summary})}


def _run_table4(overrides: dict) -> dict:
    from repro.data import dataset_statistics_table, make_weibo21_like
    from repro.experiments.tables import format_dataset_statistics

    table = dataset_statistics_table(make_weibo21_like(scale=1.0, seed=2024))
    return {"text": format_dataset_statistics(
                table, title="Table IV — Chinese dataset statistics"),
            "results": _json_round_trip(table)}


def _run_table5(overrides: dict) -> dict:
    from repro.data import dataset_statistics_table, make_english_like
    from repro.experiments.tables import format_dataset_statistics

    table = dataset_statistics_table(make_english_like(scale=0.1, seed=2024))
    return {"text": format_dataset_statistics(
                table, title="Table V — English dataset statistics (scale 0.1)"),
            "results": _json_round_trip(table)}


def _run_comparison_table(dataset: str, overrides: dict, baselines,
                          title: str) -> dict:
    from repro.experiments.runner import run_comparison
    from repro.experiments.tables import format_comparison_table

    config, bundle = _prepared_bundle(dataset, overrides)
    reports = run_comparison(config, baselines=baselines, bundle=bundle)
    text = format_comparison_table(reports, bundle.dataset.domain_names,
                                   title=title)
    return {"text": text, "results": _json_round_trip(reports)}


def _run_table6(overrides: dict) -> dict:
    from repro.experiments.runner import TABLE6_BASELINES

    return _run_comparison_table("chinese", overrides, TABLE6_BASELINES,
                                 "Table VI — Chinese dataset comparison")


def _run_table7(overrides: dict) -> dict:
    from repro.experiments.runner import TABLE7_BASELINES

    return _run_comparison_table("english", overrides, TABLE7_BASELINES,
                                 "Table VII — English dataset comparison")


def _run_table8(overrides: dict) -> dict:
    from repro.experiments.runner import run_table8_ablation
    from repro.experiments.tables import format_compact_table

    config, bundle = _prepared_bundle("chinese", overrides)
    results = run_table8_ablation(config, student_names=("textcnn_s", "bigru_s"),
                                  bundle=bundle)
    blocks = [format_compact_table(rows, title=f"Table VIII — ablation ({name})")
              for name, rows in results.items()]
    return {"text": "\n\n".join(blocks), "results": _json_round_trip(results)}


def _run_table9(overrides: dict) -> dict:
    from repro.experiments.runner import run_table9_dat_comparison
    from repro.experiments.tables import format_compact_table

    config, bundle = _prepared_bundle("chinese", overrides)
    results = run_table9_dat_comparison(config,
                                        student_names=("textcnn_s", "bigru_s"),
                                        bundle=bundle)
    blocks = [format_compact_table(rows, title=f"Table IX — DAT vs DAT-IE ({name})")
              for name, rows in results.items()]
    return {"text": "\n\n".join(blocks), "results": _json_round_trip(results)}


def _run_fig2(overrides: dict) -> dict:
    from repro.experiments.runner import run_figure2_mixing
    from repro.experiments.tables import format_mixing_scores

    config, bundle = _prepared_bundle("chinese", overrides)
    scores = run_figure2_mixing(config, bundle=bundle, max_points=250)
    return {"text": format_mixing_scores(
                scores, title="Figure 2 — t-SNE domain-mixing scores"),
            "results": _json_round_trip(scores)}


def _run_fig3(overrides: dict) -> dict:
    from repro.analysis import case_study_summary
    from repro.experiments.runner import run_figure3_case_study
    from repro.experiments.tables import format_case_study

    config, bundle = _prepared_bundle("chinese", overrides)
    rows = run_figure3_case_study(config, bundle=bundle)
    summary = case_study_summary(rows)
    text = format_case_study(rows, title="Figure 3 — case study (ambiguous real news)")
    text += "\n\nPer-model mean confidence in the true label:\n"
    for model, stats in summary.items():
        text += (f"    {model.ljust(10)} accuracy={stats['accuracy']:.2f} "
                 f"confidence={stats['mean_confidence_true_label']:.3f}\n")
    return {"text": text,
            "results": _json_round_trip({"rows": [row.as_dict() for row in rows],
                                         "summary": summary})}


@dataclass(frozen=True)
class TableCell:
    """One regenerable paper table: its runner and its results-file stem."""

    name: str
    output: str                      # benchmarks/results/<output>.txt
    runner: Callable[[dict], dict]


#: every committed ``benchmarks/results`` table, regenerable as a sweep cell
TABLE_CELLS: dict[str, TableCell] = {
    cell.name: cell for cell in (
        TableCell("table1", "table1_dataset_stats", _run_table1),
        TableCell("table2", "table2_functional_matrix", _run_table2),
        TableCell("table3", "table3_domain_bias", _run_table3),
        TableCell("table4", "table4_chinese_stats", _run_table4),
        TableCell("table5", "table5_english_stats", _run_table5),
        TableCell("table6", "table6_chinese_comparison", _run_table6),
        TableCell("table7", "table7_english_comparison", _run_table7),
        TableCell("table8", "table8_ablation", _run_table8),
        TableCell("table9", "table9_dat_vs_datie", _run_table9),
        TableCell("fig2", "fig2_tsne_mixing", _run_fig2),
        TableCell("fig3", "fig3_case_study", _run_fig3),
    )
}


@register_cell_kind("table")
def table_cell(spec: CellSpec) -> dict:
    """Regenerate one paper table (``params: {"table": name, "config": {...}}``)."""
    name = spec.params.get("table")
    if name not in TABLE_CELLS:
        raise ValueError(f"unknown table '{name}'; available tables: "
                         f"{sorted(TABLE_CELLS)}")
    entry = TABLE_CELLS[name]
    payload = entry.runner(dict(spec.params.get("config") or {}))
    payload["table"] = name
    payload["output"] = entry.output
    return payload


@register_cell_kind("baseline")
def baseline_cell(spec: CellSpec) -> dict:
    """Train + evaluate one baseline — one cell of the comparison grid.

    ``params``: ``name`` (registry model name), ``dataset``, optional
    ``seed_offset`` and ``config`` overrides.  The cell builds its own bundle,
    so it is deterministic standalone (unlike a row inside ``run_comparison``,
    whose RNG streams depend on the rows trained before it).
    """
    from repro.experiments.runner import train_baseline

    name = spec.params["name"]
    config, bundle = _prepared_bundle(spec.params.get("dataset", "chinese"),
                                      spec.params.get("config"))
    _, report = train_baseline(name, bundle,
                               seed_offset=int(spec.params.get("seed_offset", 0)))
    return {"name": name, "dataset": config.dataset,
            "report": _json_round_trip(report)}


def table_cell_specs(tables=None, config: dict | None = None) -> list[CellSpec]:
    """Build the cell specs for a table-regeneration sweep."""
    names = list(tables) if tables else list(TABLE_CELLS)
    unknown = [name for name in names if name not in TABLE_CELLS]
    if unknown:
        raise ValueError(f"unknown table(s) {unknown}; available: "
                         f"{sorted(TABLE_CELLS)}")
    overrides = dict(config or {})
    return [CellSpec(cell_id=name, kind="table",
                     params={"table": name, "config": overrides})
            for name in names]


# --------------------------------------------------------------------------- #
# Orchestration                                                                #
# --------------------------------------------------------------------------- #
@dataclass
class OrchestratorConfig:
    """Knobs of the sweep runner (see module docstring for semantics)."""

    #: worker processes; 0 runs the serial in-process ground-truth path
    jobs: int = 2
    #: per-cell retry budget and backoff; ``attempts`` executions per cell
    retry: RetryPolicy | None = None
    #: per-cell wall-clock watchdog; a cell over budget costs one attempt and
    #: its worker is killed + respawned (None = unbounded)
    cell_timeout_s: float | None = None
    start_method: str = "spawn"
    #: total worker respawns allowed before the sweep declares itself failed
    max_restarts: int = 8
    poll_interval_s: float = 0.05
    #: modules imported in every worker before cells run (test cell kinds,
    #: custom registrations); must be importable from the worker's sys.path
    worker_modules: tuple[str, ...] = ()
    #: chaos harness: per-worker-slot FaultPlans; only a slot's FIRST
    #: incarnation is armed, so a respawned worker is healthy
    fault_plans: dict | None = None
    #: called with one readable line per event (dispatch/ok/retry/fail/skip)
    on_progress: Callable[[str], None] | None = None

    def __post_init__(self):
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = serial in-process)")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unknown start_method '{self.start_method}'")
        if self.retry is None:
            self.retry = RetryPolicy(attempts=2, base_delay_s=0.05,
                                     max_delay_s=1.0, retry_on=(Exception,))

    def _progress(self, line: str) -> None:
        if self.on_progress is not None:
            self.on_progress(line)


@dataclass
class CellOutcome:
    """What happened to one cell in this sweep session."""

    spec: CellSpec
    status: str                      # "done" | "failed" | "cached"
    #: executions in this session (0 for a journal-cached cell)
    attempts: int = 0
    #: cumulative executions including journaled history
    total_attempts: int = 0
    elapsed_s: float = 0.0
    error: str | None = None
    result: dict | None = None

    def describe(self) -> str:
        """One readable line for logs and CLI output."""
        if self.status == "cached":
            return (f"skip {self.spec.cell_id}: journaled result reused "
                    f"({self.total_attempts} past attempt(s))")
        if self.status == "done":
            return (f"ok   {self.spec.cell_id}: {self.elapsed_s:.1f}s in "
                    f"{self.attempts} attempt(s)")
        return (f"FAIL {self.spec.cell_id}: after {self.attempts} attempt(s): "
                f"{self.error}")


@dataclass
class SweepResult:
    """All cell outcomes, in spec order."""

    outcomes: list[CellOutcome]

    @property
    def results(self) -> dict:
        return {outcome.spec.cell_id: outcome.result
                for outcome in self.outcomes
                if outcome.status in ("done", "cached")}

    @property
    def failures(self) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.status == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def report_lines(self) -> list[str]:
        return [outcome.describe() for outcome in self.outcomes]

    def raise_on_failure(self) -> "SweepResult":
        if self.failures:
            lines = "; ".join(outcome.describe() for outcome in self.failures)
            raise SweepFailed(f"{len(self.failures)} cell(s) failed: {lines}")
        return self


class _CellState:
    """Supervisor-side bookkeeping for one not-yet-finished cell."""

    __slots__ = ("spec", "fingerprint", "attempts", "delays", "not_before",
                 "last_error")

    def __init__(self, spec: CellSpec, fingerprint: str, policy: RetryPolicy):
        self.spec = spec
        self.fingerprint = fingerprint
        self.attempts = 0
        self.delays = policy.delays()
        self.not_before = 0.0
        self.last_error: str | None = None


class _Slot:
    """Supervisor-side record of one worker process."""

    __slots__ = ("id", "process", "queue", "ready", "pid", "spawns", "running",
                 "started", "retired")

    def __init__(self, slot_id: int):
        self.id = slot_id
        self.process = None
        self.queue = None
        self.ready = False
        self.pid = None
        self.spawns = 0
        self.running: _CellState | None = None
        self.started = 0.0
        self.retired = False

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def idle(self) -> bool:
        return (not self.retired and self.ready and self.running is None
                and self.alive())


def run_sweep(specs, config: OrchestratorConfig | None = None,
              journal_dir: str | os.PathLike | None = None,
              resume: bool = False) -> SweepResult:
    """Run every cell, journaling progress; returns outcomes in spec order.

    With ``journal_dir``: a fresh sweep refuses an existing journal (pass
    ``resume=True`` to skip its completed cells instead), and every attempt /
    completion is durable before the sweep moves on — kill this process at any
    point and a resume finishes exactly the remaining cells.
    """
    specs = list(specs)
    config = config or OrchestratorConfig()
    seen: set[str] = set()
    for spec in specs:
        if spec.cell_id in seen:
            raise ValueError(f"duplicate cell_id '{spec.cell_id}' in sweep")
        seen.add(spec.cell_id)
    fingerprints = {spec.cell_id: spec.fingerprint() for spec in specs}

    journal = None
    if journal_dir is not None:
        fingerprint = sweep_fingerprint(specs)
        journal = (RunJournal.resume(journal_dir, fingerprint) if resume
                   else RunJournal.create(journal_dir, fingerprint))

    outcomes: dict[str, CellOutcome] = {}
    todo: list[CellSpec] = []
    for spec in specs:
        if journal is not None and journal.is_done(spec.cell_id,
                                                   fingerprints[spec.cell_id]):
            record = journal.records[spec.cell_id]
            outcomes[spec.cell_id] = CellOutcome(
                spec=spec, status="cached", attempts=0,
                total_attempts=record.attempts,
                elapsed_s=record.elapsed_s or 0.0,
                result=journal.load_result(spec.cell_id))
            config._progress(outcomes[spec.cell_id].describe())
        else:
            todo.append(spec)

    if todo:
        if config.jobs == 0:
            _run_serial(todo, config, journal, fingerprints, outcomes)
        else:
            _run_pool(todo, config, journal, fingerprints, outcomes)
    return SweepResult([outcomes[spec.cell_id] for spec in specs])


# --------------------------------------------------------------------------- #
# Serial ground-truth executor                                                 #
# --------------------------------------------------------------------------- #
def _run_serial(todo, config, journal, fingerprints, outcomes) -> None:
    from repro.reliability.watchdog import WatchdogTimeout, watchdog

    policy = config.retry
    for spec in todo:
        delays = policy.delays()
        last_error = None
        for attempt in range(1, policy.attempts + 1):
            if journal is not None:
                journal.begin(spec.cell_id, fingerprints[spec.cell_id])
            started = time.perf_counter()
            try:
                if config.cell_timeout_s is not None:
                    with watchdog(config.cell_timeout_s,
                                  message=f"cell {spec.cell_id}"):
                        result = run_cell(spec, attempt=attempt)
                else:
                    result = run_cell(spec, attempt=attempt)
            except WatchdogTimeout as error:
                last_error = (f"cell exceeded its {config.cell_timeout_s:g}s "
                              f"wall-clock budget ({error})")
            except Exception as error:  # noqa: BLE001 - isolated per cell
                last_error = f"{type(error).__name__}: {error}"
            else:
                elapsed = time.perf_counter() - started
                if journal is not None:
                    journal.complete(spec.cell_id, result, elapsed)
                record = journal.records[spec.cell_id] if journal else None
                outcomes[spec.cell_id] = CellOutcome(
                    spec=spec, status="done", attempts=attempt,
                    total_attempts=record.attempts if record else attempt,
                    elapsed_s=elapsed, result=result)
                config._progress(outcomes[spec.cell_id].describe())
                break
            config._progress(f"retry {spec.cell_id}: attempt {attempt} "
                             f"failed: {last_error}")
            if attempt < policy.attempts:
                policy.sleep(next(delays, 0.0))
        else:
            if journal is not None:
                journal.fail(spec.cell_id, last_error)
            outcomes[spec.cell_id] = CellOutcome(
                spec=spec, status="failed", attempts=policy.attempts,
                total_attempts=(journal.records[spec.cell_id].attempts
                                if journal else policy.attempts),
                error=last_error)
            config._progress(outcomes[spec.cell_id].describe())


# --------------------------------------------------------------------------- #
# Supervised process-pool executor                                             #
# --------------------------------------------------------------------------- #
def _run_pool(todo, config, journal, fingerprints, outcomes) -> None:
    from queue import Empty

    policy = config.retry
    ctx = multiprocessing.get_context(config.start_method)
    result_q = ctx.Queue()
    slots = [_Slot(i) for i in range(min(config.jobs, len(todo)))]
    states = {spec.cell_id: _CellState(spec, fingerprints[spec.cell_id], policy)
              for spec in todo}
    ready_queue: deque[_CellState] = deque(states[s.cell_id] for s in todo)
    finished: set[str] = set()
    restarts_used = 0

    def spawn(slot: _Slot) -> None:
        slot.queue = ctx.Queue()
        slot.ready = False
        slot.pid = None
        options = {
            "worker_modules": tuple(config.worker_modules),
            # chaos plans arm the first incarnation only (see OrchestratorConfig)
            "fault_plan": ((config.fault_plans or {}).get(slot.id)
                           if slot.spawns == 0 else None),
        }
        slot.spawns += 1
        slot.process = ctx.Process(
            target=_sweep_worker_main,
            args=(slot.id, slot.queue, result_q, options),
            name=f"repro-sweep-worker-{slot.id}", daemon=True)
        slot.process.start()
        slot.pid = slot.process.pid

    def finish_done(state: _CellState, result, elapsed: float) -> None:
        if journal is not None:
            journal.complete(state.spec.cell_id, result, elapsed)
        record = journal.records[state.spec.cell_id] if journal else None
        outcomes[state.spec.cell_id] = CellOutcome(
            spec=state.spec, status="done", attempts=state.attempts,
            total_attempts=record.attempts if record else state.attempts,
            elapsed_s=elapsed, result=result)
        finished.add(state.spec.cell_id)
        config._progress(outcomes[state.spec.cell_id].describe())

    def fail_attempt(state: _CellState, error_text: str) -> None:
        state.last_error = error_text
        if state.attempts < policy.attempts:
            delay = next(state.delays, 0.0)
            state.not_before = time.monotonic() + delay
            ready_queue.append(state)
            config._progress(f"retry {state.spec.cell_id}: attempt "
                             f"{state.attempts} failed: {error_text}")
            return
        if journal is not None:
            journal.fail(state.spec.cell_id, error_text)
        record = journal.records[state.spec.cell_id] if journal else None
        outcomes[state.spec.cell_id] = CellOutcome(
            spec=state.spec, status="failed", attempts=state.attempts,
            total_attempts=record.attempts if record else state.attempts,
            error=error_text)
        finished.add(state.spec.cell_id)
        config._progress(outcomes[state.spec.cell_id].describe())

    def retire_or_respawn(slot: _Slot) -> None:
        nonlocal restarts_used
        if restarts_used < config.max_restarts:
            restarts_used += 1
            spawn(slot)
        else:
            slot.retired = True
            slot.process = None

    def handle_result(message) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, pid = message
            slot = slots[worker_id]
            if slot.pid == pid:
                slot.ready = True
            return
        if kind == "fatal":
            _, worker_id, reason = message
            raise SweepFailed(
                f"sweep worker {worker_id} cannot start: {reason}")
        _, worker_id, cell_id, status, payload, elapsed = message
        slot = slots[worker_id]
        if slot.running is None or slot.running.spec.cell_id != cell_id:
            return  # stale result from a worker we already gave up on
        state = slot.running
        slot.running = None
        if status == "ok":
            finish_done(state, payload, elapsed)
        else:
            fail_attempt(state, str(payload))

    def drain_results() -> None:
        while True:
            try:
                handle_result(result_q.get_nowait())
            except Empty:
                return

    try:
        for slot in slots:
            spawn(slot)
        while len(finished) < len(todo):
            # 1. Results first: never mistake a finished worker for a dead one.
            try:
                message = result_q.get(timeout=config.poll_interval_s)
            except (Empty, OSError, ValueError):
                message = None
            if message is not None:
                handle_result(message)
                continue  # drain bursts before paying for liveness checks

            now = time.monotonic()
            for slot in slots:
                if slot.retired:
                    continue
                # 2. Liveness: a dead worker's cell costs one attempt and is
                #    re-dispatched; the slot respawns within the budget.
                if slot.process is not None and not slot.process.is_alive():
                    drain_results()  # its last result may still be in flight
                    if slot.process is None or slot.process.is_alive():
                        continue  # the drain resolved it after all
                    exitcode = slot.process.exitcode
                    state, slot.running = slot.running, None
                    retire_or_respawn(slot)
                    if state is not None:
                        fail_attempt(state, f"worker died (exit {exitcode}) "
                                            "while running this cell")
                    continue
                # 3. Per-cell wall-clock watchdog: kill the wedged worker.
                if (config.cell_timeout_s is not None and slot.running is not None
                        and now - slot.started > config.cell_timeout_s):
                    state, slot.running = slot.running, None
                    _kill(slot.process)
                    retire_or_respawn(slot)
                    fail_attempt(state, f"cell exceeded its "
                                        f"{config.cell_timeout_s:g}s wall-clock "
                                        "budget; worker killed")
                    continue
                # 4. Dispatch to idle, ready workers.
                if slot.idle() and ready_queue:
                    state = _next_dispatchable(ready_queue, now)
                    if state is None:
                        continue
                    state.attempts += 1
                    if journal is not None:
                        journal.begin(state.spec.cell_id, state.fingerprint)
                    slot.running = state
                    slot.started = now
                    slot.queue.put((state.spec, state.attempts))
            if all(slot.retired for slot in slots) and len(finished) < len(todo):
                raise SweepFailed(
                    f"all workers retired after the restart budget "
                    f"({config.max_restarts}) was spent with "
                    f"{len(todo) - len(finished)} cell(s) unfinished; the "
                    "journal keeps completed cells — fix the fault and resume")
    finally:
        _shutdown(slots, result_q)


def _next_dispatchable(ready_queue: deque, now: float):
    """Pop the first cell whose retry backoff has elapsed (None if all waiting)."""
    for _ in range(len(ready_queue)):
        state = ready_queue.popleft()
        if state.not_before <= now:
            return state
        ready_queue.append(state)
    return None


def _kill(process) -> None:
    if process is None:
        return
    process.terminate()
    process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - terminate is normally enough
        process.kill()
        process.join(timeout=2.0)


def _shutdown(slots, result_q) -> None:
    for slot in slots:
        if slot.alive():
            try:
                slot.queue.put(None)  # drain queued work, then exit
            except (OSError, ValueError):  # pragma: no cover - queue closed
                pass
    deadline = time.monotonic() + 10.0
    for slot in slots:
        if slot.process is not None:
            slot.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if slot.process.is_alive():
                _kill(slot.process)
        if slot.queue is not None:
            slot.queue.cancel_join_thread()
    result_q.cancel_join_thread()


# --------------------------------------------------------------------------- #
# Worker process                                                               #
# --------------------------------------------------------------------------- #
def _parent_alive() -> bool:
    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def _sweep_worker_main(worker_id: int, task_queue, result_queue,
                       options: dict) -> None:
    """Entry point of one sweep worker (``spawn``- and ``fork``-safe).

    Failure semantics mirror :mod:`repro.serve.worker`: per-cell errors are
    caught and reported as ``"error"`` results; anything harsher
    (``SystemExit`` from an injected ``orchestrate.cell`` fault, a signal, an
    OOM kill) terminates the process and is detected by the supervisor's
    liveness check, which respawns the slot and re-dispatches the cell.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from queue import Empty

    plan = options.get("fault_plan")
    if plan is not None:
        install_plan(plan)
    try:
        fault_point("orchestrate.worker", worker=worker_id)
        for name in options.get("worker_modules", ()):
            importlib.import_module(name)
    except Exception as error:  # noqa: BLE001 - reported to the supervisor
        result_queue.put(("fatal", worker_id,
                          f"{type(error).__name__}: {error}"))
        return
    result_queue.put(("ready", worker_id, os.getpid()))

    while True:
        try:
            job = task_queue.get(timeout=1.0)
        except Empty:
            if not _parent_alive():  # orphaned: the orchestrator is gone
                return
            continue
        if job is None:  # shutdown sentinel
            return
        spec, attempt = job
        started = time.perf_counter()
        try:
            payload = run_cell(spec, attempt=attempt)
        except Exception as error:  # noqa: BLE001 - isolated per cell
            result_queue.put(("result", worker_id, spec.cell_id, "error",
                              f"{type(error).__name__}: {error}",
                              time.perf_counter() - started))
            continue
        result_queue.put(("result", worker_id, spec.cell_id, "ok", payload,
                          time.perf_counter() - started))
