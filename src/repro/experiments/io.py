"""Serialisation of experiment results to JSON.

The benchmark harness and the CLI both persist their results so that runs can
be compared across configurations (e.g. different ``REPRO_SCALE`` values)
without re-training anything.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any

from repro.metrics import EvaluationReport
from repro.reliability.durable import atomic_write_text
from repro.reliability.faults import fault_point
from repro.reliability.retry import default_read_policy


def report_to_dict(report: EvaluationReport) -> dict:
    """Flatten an :class:`EvaluationReport` (including per-domain error rates)."""
    payload = report.as_dict()
    payload["fnr_per_domain"] = dict(report.bias.fnr_per_domain)
    payload["fpr_per_domain"] = dict(report.bias.fpr_per_domain)
    return payload


def _convert(value: Any) -> Any:
    if isinstance(value, EvaluationReport):
        return report_to_dict(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _convert(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _convert(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_convert(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and getattr(value, "size", 2) == 1:
        return value.item()
    if hasattr(value, "tolist") and callable(value.tolist):
        return value.tolist()
    return value


def results_to_json(results: Any, indent: int = 2) -> str:
    """Serialise a (possibly nested) structure of reports/dataclasses to JSON."""
    return json.dumps(_convert(results), indent=indent, sort_keys=True)


def save_results(results: Any, path: str | os.PathLike) -> None:
    """Atomically write :func:`results_to_json` output to ``path``.

    Directories are created as needed; the file lands via temp-file + fsync +
    rename, so a crash mid-save never truncates previously saved results.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write_text(path, results_to_json(results) + "\n")


def load_results(path: str | os.PathLike) -> Any:
    """Load a JSON results file written by :func:`save_results`.

    Transient read errors are retried under the default read policy; a file
    that is not valid JSON raises a :class:`ValueError` naming the path
    instead of a bare decode traceback.
    """
    path = os.fspath(path)

    def attempt() -> Any:
        fault_point("io.read", path=path, kind="results")
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read()
        try:
            return json.loads(content)
        except ValueError as error:
            raise ValueError(
                f"results file '{path}' is not valid JSON ({error}); was the "
                "run interrupted before save_results finished?") from error

    return default_read_policy().call(attempt)
