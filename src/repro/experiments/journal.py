"""Durable run journal for orchestrated experiment sweeps.

A multi-hour sweep must survive the death of the process driving it.  The
journal is the orchestrator's crash-consistency mechanism: one JSON file per
sweep recording, for every cell, its spec fingerprint, status, attempt count
and the SHA-256 digest of its persisted result.  The contract:

* **Atomic + durable** — every update rewrites the journal through
  :func:`repro.reliability.durable.atomic_write_text` (temp file + fsync +
  rename), so a crash at any moment leaves either the previous journal or the
  new one, never a truncated hybrid.  Cell results land in their own files
  *before* the journal entry pointing at them, so a journal that says ``done``
  always names a result that exists.
* **Checksummed** — the journal embeds a SHA-256 over its own payload and each
  cell entry records the digest of its result file; a flipped byte anywhere is
  refused with a readable :class:`JournalError` naming the damaged file
  instead of silently re-running the sweep (or crashing with a raw
  traceback).
* **Fingerprinted** — the journal records the sweep fingerprint (a content
  hash over every cell spec).  Resuming against a journal written for a
  different sweep is refused: silently mixing results from two different
  experiment grids is worse than re-running one.
* **Injectable** — reads and writes carry ``orchestrate.journal`` fault
  points, so the chaos suite can prove that a crash mid-journal-write leaves
  the previous journal usable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

from repro.experiments.io import load_results, save_results
from repro.reliability.durable import atomic_write_text, sha256_bytes, sha256_file
from repro.reliability.faults import fault_point

#: journal file name inside the journal directory
JOURNAL_FILE = "journal.json"
#: per-cell result files live here, one JSON per completed cell
CELLS_DIR = "cells"
#: bump when the on-disk schema changes incompatibly
JOURNAL_FORMAT_VERSION = 1


class JournalError(RuntimeError):
    """A journal (or one of its cell results) is unusable; the message says why."""


@dataclass
class CellRecord:
    """One cell's journal entry (everything needed to decide skip vs re-run)."""

    cell_id: str
    fingerprint: str
    status: str = "pending"           # "running" | "done" | "failed"
    #: cumulative executions across every run/resume of this journal —
    #: the cell-execution counter the resume tests pin
    attempts: int = 0
    result_digest: str | None = None
    error: str | None = None
    elapsed_s: float | None = None


class RunJournal:
    """The durable per-sweep ledger; every mutation lands atomically on disk."""

    def __init__(self, directory: str | os.PathLike, sweep_fingerprint: str):
        self.directory = os.fspath(directory)
        self.path = os.path.join(self.directory, JOURNAL_FILE)
        self.cells_dir = os.path.join(self.directory, CELLS_DIR)
        self.sweep_fingerprint = sweep_fingerprint
        self.records: dict[str, CellRecord] = {}

    # ------------------------------------------------------------------ #
    # Open / load                                                          #
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, directory: str | os.PathLike,
               sweep_fingerprint: str) -> "RunJournal":
        """Start a fresh journal; refuses to clobber an existing one.

        An existing journal means an earlier sweep left state behind —
        overwriting it silently would destroy resumable work, so the caller
        must either resume or point at a fresh directory.
        """
        directory = os.fspath(directory)
        path = os.path.join(directory, JOURNAL_FILE)
        if os.path.exists(path):
            raise JournalError(
                f"a run journal already exists at '{path}'; resume it "
                "(resume=True / --resume) or choose a fresh journal directory")
        journal = cls(directory, sweep_fingerprint)
        journal._flush()
        return journal

    @classmethod
    def resume(cls, directory: str | os.PathLike,
               sweep_fingerprint: str) -> "RunJournal":
        """Load an existing journal, verifying integrity and sweep identity."""
        directory = os.fspath(directory)
        path = os.path.join(directory, JOURNAL_FILE)
        if not os.path.exists(path):
            # Nothing to resume is not an error: first run with --resume.
            journal = cls(directory, sweep_fingerprint)
            journal._flush()
            return journal
        journal = cls._load(directory)
        if journal.sweep_fingerprint != sweep_fingerprint:
            raise JournalError(
                f"run journal '{path}' was written for a different sweep "
                f"(journal fingerprint {journal.sweep_fingerprint}, current "
                f"sweep {sweep_fingerprint}); refusing to mix results — use a "
                "fresh journal directory for a changed cell grid")
        return journal

    @classmethod
    def _load(cls, directory: str) -> "RunJournal":
        path = os.path.join(directory, JOURNAL_FILE)
        fault_point("orchestrate.journal", op="read", path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise JournalError(
                f"cannot read run journal '{path}': {error}") from error
        try:
            envelope = json.loads(raw)
        except ValueError as error:
            raise JournalError(
                f"run journal '{path}' is not valid JSON ({error}); the file "
                "is corrupt — restore it or start a fresh journal directory"
            ) from error
        if not isinstance(envelope, dict) or "payload" not in envelope:
            raise JournalError(
                f"run journal '{path}' has no payload; not a journal file")
        version = envelope.get("format_version")
        if version != JOURNAL_FORMAT_VERSION:
            raise JournalError(
                f"run journal '{path}' has format version {version!r}; this "
                f"build reads version {JOURNAL_FORMAT_VERSION}")
        payload = envelope["payload"]
        expected = envelope.get("checksum")
        actual = sha256_bytes(_canonical(payload).encode("utf-8"))
        if actual != expected:
            raise JournalError(
                f"run journal '{path}' failed its checksum (recorded "
                f"{str(expected)[:12]}…, actual {actual[:12]}…); the file is "
                "corrupt — refusing to trust its completed-cell claims")
        journal = cls(directory, payload.get("sweep_fingerprint", ""))
        for cell_id, entry in payload.get("cells", {}).items():
            journal.records[cell_id] = CellRecord(**entry)
        return journal

    # ------------------------------------------------------------------ #
    # Mutation (each call lands atomically on disk)                        #
    # ------------------------------------------------------------------ #
    def begin(self, cell_id: str, fingerprint: str) -> CellRecord:
        """Record one execution attempt starting (attempts is cumulative)."""
        record = self.records.get(cell_id)
        if record is None or record.fingerprint != fingerprint:
            record = CellRecord(cell_id=cell_id, fingerprint=fingerprint)
            self.records[cell_id] = record
        record.status = "running"
        record.attempts += 1
        record.error = None
        self._flush()
        return record

    def complete(self, cell_id: str, result, elapsed_s: float) -> CellRecord:
        """Persist ``result`` then mark the cell done pointing at its digest.

        Order matters for crash consistency: the result file is durable
        before the journal claims it exists.
        """
        record = self.records[cell_id]
        result_path = self.result_path(cell_id)
        save_results(result, result_path)
        record.result_digest = sha256_file(result_path)
        record.status = "done"
        record.error = None
        record.elapsed_s = round(float(elapsed_s), 3)
        self._flush()
        return record

    def fail(self, cell_id: str, error: str, elapsed_s: float | None = None) -> CellRecord:
        record = self.records[cell_id]
        record.status = "failed"
        record.error = str(error)
        if elapsed_s is not None:
            record.elapsed_s = round(float(elapsed_s), 3)
        self._flush()
        return record

    def _flush(self) -> None:
        payload = {
            "sweep_fingerprint": self.sweep_fingerprint,
            "cells": {cell_id: asdict(record)
                      for cell_id, record in sorted(self.records.items())},
        }
        envelope = {
            "format_version": JOURNAL_FORMAT_VERSION,
            "checksum": sha256_bytes(_canonical(payload).encode("utf-8")),
            "payload": payload,
        }
        os.makedirs(self.directory, exist_ok=True)
        fault_point("orchestrate.journal", op="write", path=self.path)
        atomic_write_text(self.path, json.dumps(envelope, indent=2,
                                                sort_keys=True) + "\n")

    # ------------------------------------------------------------------ #
    # Queries                                                              #
    # ------------------------------------------------------------------ #
    def result_path(self, cell_id: str) -> str:
        return os.path.join(self.cells_dir, f"{_safe_name(cell_id)}.json")

    def is_done(self, cell_id: str, fingerprint: str) -> bool:
        record = self.records.get(cell_id)
        return (record is not None and record.status == "done"
                and record.fingerprint == fingerprint)

    def load_result(self, cell_id: str):
        """Load a completed cell's result, verifying its recorded digest."""
        record = self.records.get(cell_id)
        if record is None or record.status != "done":
            raise JournalError(
                f"cell '{cell_id}' has no completed result in journal "
                f"'{self.path}'")
        result_path = self.result_path(cell_id)
        if not os.path.exists(result_path):
            raise JournalError(
                f"journal '{self.path}' marks cell '{cell_id}' done but its "
                f"result file '{result_path}' is missing; the journal "
                "directory was partially deleted — start fresh")
        actual = sha256_file(result_path)
        if actual != record.result_digest:
            raise JournalError(
                f"result file '{result_path}' for cell '{cell_id}' failed its "
                f"checksum (recorded {str(record.result_digest)[:12]}…, actual "
                f"{actual[:12]}…); the file is corrupt — refusing to resume "
                "from damaged results")
        return load_results(result_path)

    def snapshot(self) -> dict:
        """A plain-dict view for diagnostics and tests."""
        return {cell_id: asdict(record)
                for cell_id, record in sorted(self.records.items())}


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _safe_name(cell_id: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in cell_id)
