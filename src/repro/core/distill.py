"""The two distillation losses of DTDBD.

* **Adversarial de-biasing distillation (ADD, Eq. 5–6).**  The unbiased teacher
  and the student each produce intermediate features for the same mini-batch;
  their pairwise Euclidean correlation matrices are treated as distributions
  (row-wise softmax at temperature ``tau``) and matched with a
  temperature-scaled KL divergence.  The *relative relationships between
  samples* — not the labels — are the transferred knowledge, which is what lets
  the student inherit the unbiased geometry without being forced onto fully
  domain-invariant features.

* **Domain knowledge distillation (DKD, Eq. 12).**  The clean teacher
  (MDFEND or M3FEND) and the student classify the same mini-batch; their
  classifier logits are matched with the same temperature-scaled KL.  This
  transfers fuzzy multi-domain knowledge and protects performance.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch, DataLoader
from repro.models.base import FakeNewsDetector
from repro.tensor import Tensor, functional as F, fused, no_grad


def correlation_matrix(features: Tensor, normalize: bool = True) -> Tensor:
    """Sample-correlation matrix ``M_ij = ||f_i - f_j||^2`` (Eq. 5).

    With ``normalize=True`` the features are L2-normalised first, so the matrix
    captures the *relative* geometry of the batch independently of the feature
    scale — teacher and student features live in different spaces, and without
    this the softened distributions of Eq. 6 would be dominated by whichever
    network produces larger activations.
    """
    if normalize:
        features = F.normalize(features, axis=-1)
    return F.pairwise_squared_distances(features)


def adversarial_debiasing_distillation_loss(student_features: Tensor,
                                            teacher_features: Tensor,
                                            temperature: float = 1.0,
                                            normalize: bool = True) -> Tensor:
    """ADD loss (Eq. 6): match row-wise softened correlation distributions.

    ``teacher_features`` is detached — the unbiased teacher is frozen during
    distillation (Section V-A).  The negated distance matrices are softened so
    that *similar* pairs receive high probability mass, matching the intuition
    that the transferred knowledge is "which samples the teacher considers
    close to each other".

    On the fused fast path the whole chain (normalise -> pairwise distances ->
    row softmax -> temperature KL) runs as the single-node
    :func:`repro.tensor.fused.add_loss` kernel; the composed path below is its
    parity ground truth.
    """
    if student_features.shape[0] != teacher_features.shape[0]:
        raise ValueError("student and teacher must encode the same mini-batch")
    if student_features.shape[0] < 2:
        raise ValueError("ADD needs at least two samples to form a correlation matrix")
    if fused.is_fused_enabled():
        return fused.add_loss(student_features, teacher_features,
                              temperature=temperature, normalize=normalize)
    student_matrix = -correlation_matrix(student_features, normalize=normalize)
    teacher_matrix = -correlation_matrix(teacher_features.detach(), normalize=normalize)
    return F.distillation_kl(student_matrix, teacher_matrix, temperature=temperature)


def domain_knowledge_distillation_loss(student_logits: Tensor,
                                       teacher_logits: Tensor,
                                       temperature: float = 4.0) -> Tensor:
    """DKD loss (Eq. 12): match classifier outputs of clean teacher and student."""
    if student_logits.shape != teacher_logits.shape:
        raise ValueError(
            f"logit shapes differ: student {student_logits.shape} vs teacher {teacher_logits.shape}")
    return F.distillation_kl(student_logits, teacher_logits, temperature=temperature)


def teacher_forward(teacher: FakeNewsDetector, batch: Batch) -> tuple[Tensor, Tensor]:
    """Run a frozen teacher in eval mode without building a graph.

    Returns ``(logits, features)`` as constant tensors.

    A teacher that is already in eval mode — the steady state for the whole of
    a DTDBD run, where both teachers are frozen and eval'd once up front — is
    forwarded as-is: no per-batch ``eval()``/``train()`` mode flips (each of
    which walks the full module tree) and no redundant ``detach()`` (under
    :func:`no_grad` the outputs are already constants).  Ad-hoc callers with a
    teacher still in training mode keep the original contract: the forward
    runs in eval mode and the training flag is restored afterwards.
    """
    was_training = teacher.training
    if was_training:
        teacher.eval()
    with no_grad():
        logits, features = teacher.forward_with_features(batch)
    if was_training:
        teacher.train()
    if logits.requires_grad:
        logits = logits.detach()
    if features.requires_grad:
        features = features.detach()
    return logits, features


class TeacherCache:
    """Precomputed frozen-teacher outputs, served by per-batch gathers.

    Both DTDBD teachers are frozen for the whole of student training, so their
    per-sample ``(logits, features)`` are constants across every epoch — yet
    the naive trainer re-runs both teacher forwards on every mini-batch,
    tripling forward compute per step.  This cache runs each teacher exactly
    once over the full dataset (fixed-size :meth:`DataLoader.window` passes
    under ``no_grad`` — see the bit-exactness note below for why not a plain
    ``iter_eval``) and afterwards serves any mini-batch by gathering rows on
    ``batch.indices``
    (absolute dataset positions — see the :class:`repro.data.loader.Batch`
    contract), which is numerically exact: the same arrays, gathered instead
    of recomputed.

    The cache materialises lazily on first :meth:`lookup`.  It is only valid
    while the teacher's parameters and the loader's encoded arrays stay
    unchanged; callers that mutate either (e.g. fine-tuning the teacher
    between distillation stages, or re-encoding the corpus) must call
    :meth:`invalidate`, after which the next lookup recomputes.  Caching an
    *unfrozen* teacher is refused outright — its outputs would silently go
    stale after the first optimiser step.

    Bit-exactness subtlety: BLAS kernels pick different code paths for
    different batch row counts, so a row forwarded in a batch of 16 can
    differ *in the last ulp* from the same row forwarded in a batch of 11.
    The materialisation pass therefore runs every row through a window of
    exactly ``batch_size`` rows (the final window overlaps its predecessor
    instead of going ragged), which makes gathered outputs bit-identical to
    a live forward for every *full-size* training batch — :meth:`serves`
    tells callers which batches that covers, and the DTDBD trainer forwards
    the (at most one per epoch) ragged batch live.
    """

    def __init__(self, teacher: FakeNewsDetector, loader: DataLoader,
                 batch_size: int | None = None):
        if teacher.parameters():
            raise ValueError(
                "TeacherCache requires a frozen teacher (call teacher.freeze() "
                "first); caching a model whose parameters still receive "
                "gradients would serve stale outputs")
        self.teacher = teacher
        self.loader = loader
        self._batch_size = batch_size
        self._logits: np.ndarray | None = None
        self._features: np.ndarray | None = None
        self._invalid_windows: set[int] = set()
        self.recomputed_windows = 0

    @property
    def window_size(self) -> int:
        """Row count of every materialisation forward (and of served batches)."""
        return min(self._batch_size or self.loader.batch_size,
                   self.loader.num_samples)

    def serves(self, batch: Batch) -> bool:
        """Whether gathering ``batch`` is bit-identical to a live forward.

        True for batches of exactly :attr:`window_size` rows — the shape every
        cached row was computed with.  Smaller (ragged) batches would hit the
        BLAS batch-shape effect described in the class docstring; callers that
        need bit-exact trajectories forward those live.
        """
        return len(batch) == self.window_size

    @property
    def materialised(self) -> bool:
        """Whether the full-dataset pass has run since the last invalidation."""
        return self._logits is not None

    def invalidate(self, indices=None) -> None:
        """Invalidate cached rows; the next lookup recomputes what's needed.

        With ``indices=None`` (the legacy all-or-nothing behaviour) the cached
        arrays are dropped and the next lookup redoes the full-dataset pass.
        With a sequence of absolute dataset positions, only the
        materialisation *windows* containing those rows are marked stale and
        lazily re-forwarded in place on the next lookup — rows in untouched
        windows are never rewritten, so they stay bit-identical by
        construction.  Window granularity (not row granularity) is forced by
        the batch-shape bit-exactness contract: a stale row can only be
        recomputed inside the same full-size window it was originally
        forwarded with.
        """
        if indices is None:
            self._logits = None
            self._features = None
            self._invalid_windows.clear()
            return
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if indices.size == 0:
            return
        total = self.loader.num_samples
        if int(indices.min()) < 0 or int(indices.max()) >= total:
            raise IndexError(
                f"invalidate indices [{int(indices.min())}, "
                f"{int(indices.max())}] outside the dataset of {total} samples")
        if self._logits is None:
            return  # nothing materialised yet; the first lookup is fresh anyway
        window = self.window_size
        nfull = (total - window) // window + 1 if total >= window else 0
        for row in {int(r) for r in indices}:
            # Rows past the last aligned window live in the overlapping tail
            # pass (window id ``nfull``); everything else maps by division.
            self._invalid_windows.add(row // window if row < nfull * window
                                      else nfull)

    def _recompute_invalid(self) -> None:
        """Re-forward stale windows in place (same shapes as `_materialise`)."""
        if not self._invalid_windows:
            return
        was_training = self.teacher.training
        if was_training:
            self.teacher.eval()
        total = self.loader.num_samples
        window = self.window_size
        nfull = (total - window) // window + 1 if total >= window else 0
        remainder = total % window
        with no_grad():
            for window_id in sorted(self._invalid_windows):
                if window_id < nfull:
                    start = window_id * window
                    logits, features = self.teacher.forward_with_features(
                        self.loader.window(start, start + window))
                    self._logits[start:start + window] = logits.numpy()
                    self._features[start:start + window] = features.numpy()
                else:
                    # Overlapping tail pass: keep only the trailing rows not
                    # covered by an aligned window, exactly as materialisation
                    # does.
                    logits, features = self.teacher.forward_with_features(
                        self.loader.window(total - window, total))
                    self._logits[total - remainder:] = \
                        logits.numpy()[window - remainder:]
                    self._features[total - remainder:] = \
                        features.numpy()[window - remainder:]
                self.recomputed_windows += 1
        if was_training:
            self.teacher.train()
        self._invalid_windows.clear()

    def _materialise(self) -> None:
        was_training = self.teacher.training
        if was_training:
            self.teacher.eval()
        total = self.loader.num_samples
        window = self.window_size
        logits_parts: list[np.ndarray] = []
        features_parts: list[np.ndarray] = []
        with no_grad():
            for start in range(0, total - window + 1, window):
                logits, features = self.teacher.forward_with_features(
                    self.loader.window(start, start + window))
                logits_parts.append(logits.numpy())
                features_parts.append(features.numpy())
            remainder = total % window
            if remainder:
                # Ragged tail: re-window over the *last* ``window`` rows so the
                # tail rows are still produced by a full-size forward, then
                # keep only the rows not already covered above.
                logits, features = self.teacher.forward_with_features(
                    self.loader.window(total - window, total))
                logits_parts.append(logits.numpy()[window - remainder:])
                features_parts.append(features.numpy()[window - remainder:])
        if was_training:
            self.teacher.train()
        self._logits = np.concatenate(logits_parts, axis=0)
        self._features = np.concatenate(features_parts, axis=0)

    def lookup(self, batch: Batch) -> tuple[Tensor, Tensor]:
        """Return the teacher's ``(logits, features)`` for ``batch`` as constants.

        ``batch`` must come from this cache's loader: indices are plain
        dataset positions, so a batch from a *different* loader is only
        detected when an index falls outside the cached range — in-range
        foreign indices would gather the wrong rows silently.
        """
        if self._logits is None:
            self._materialise()
        else:
            self._recompute_invalid()
        indices = np.asarray(batch.indices)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) >= self._logits.shape[0]):
            raise IndexError(
                f"batch indices [{int(indices.min())}, {int(indices.max())}] "
                f"outside the cached dataset of {self._logits.shape[0]} "
                "samples; was this batch produced by a different loader?")
        return Tensor(self._logits[indices]), Tensor(self._features[indices])
