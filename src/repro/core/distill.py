"""The two distillation losses of DTDBD.

* **Adversarial de-biasing distillation (ADD, Eq. 5–6).**  The unbiased teacher
  and the student each produce intermediate features for the same mini-batch;
  their pairwise Euclidean correlation matrices are treated as distributions
  (row-wise softmax at temperature ``tau``) and matched with a
  temperature-scaled KL divergence.  The *relative relationships between
  samples* — not the labels — are the transferred knowledge, which is what lets
  the student inherit the unbiased geometry without being forced onto fully
  domain-invariant features.

* **Domain knowledge distillation (DKD, Eq. 12).**  The clean teacher
  (MDFEND or M3FEND) and the student classify the same mini-batch; their
  classifier logits are matched with the same temperature-scaled KL.  This
  transfers fuzzy multi-domain knowledge and protects performance.
"""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector
from repro.tensor import Tensor, functional as F, no_grad


def correlation_matrix(features: Tensor, normalize: bool = True) -> Tensor:
    """Sample-correlation matrix ``M_ij = ||f_i - f_j||^2`` (Eq. 5).

    With ``normalize=True`` the features are L2-normalised first, so the matrix
    captures the *relative* geometry of the batch independently of the feature
    scale — teacher and student features live in different spaces, and without
    this the softened distributions of Eq. 6 would be dominated by whichever
    network produces larger activations.
    """
    if normalize:
        features = F.normalize(features, axis=-1)
    return F.pairwise_squared_distances(features)


def adversarial_debiasing_distillation_loss(student_features: Tensor,
                                            teacher_features: Tensor,
                                            temperature: float = 1.0,
                                            normalize: bool = True) -> Tensor:
    """ADD loss (Eq. 6): match row-wise softened correlation distributions.

    ``teacher_features`` is detached — the unbiased teacher is frozen during
    distillation (Section V-A).  The negated distance matrices are softened so
    that *similar* pairs receive high probability mass, matching the intuition
    that the transferred knowledge is "which samples the teacher considers
    close to each other".
    """
    if student_features.shape[0] != teacher_features.shape[0]:
        raise ValueError("student and teacher must encode the same mini-batch")
    if student_features.shape[0] < 2:
        raise ValueError("ADD needs at least two samples to form a correlation matrix")
    student_matrix = -correlation_matrix(student_features, normalize=normalize)
    teacher_matrix = -correlation_matrix(teacher_features.detach(), normalize=normalize)
    return F.distillation_kl(student_matrix, teacher_matrix, temperature=temperature)


def domain_knowledge_distillation_loss(student_logits: Tensor,
                                       teacher_logits: Tensor,
                                       temperature: float = 4.0) -> Tensor:
    """DKD loss (Eq. 12): match classifier outputs of clean teacher and student."""
    if student_logits.shape != teacher_logits.shape:
        raise ValueError(
            f"logit shapes differ: student {student_logits.shape} vs teacher {teacher_logits.shape}")
    return F.distillation_kl(student_logits, teacher_logits, temperature=temperature)


def teacher_forward(teacher: FakeNewsDetector, batch: Batch) -> tuple[Tensor, Tensor]:
    """Run a frozen teacher in eval mode without building a graph.

    Returns ``(logits, features)`` as constant tensors.
    """
    was_training = teacher.training
    teacher.eval()
    with no_grad():
        logits, features = teacher.forward_with_features(batch)
    if was_training:
        teacher.train()
    return logits.detach(), features.detach()
