"""Generic supervised trainer for the baseline detectors.

All baselines of Tables VI and VII (and the teacher models) are trained with
this class: Adam, gradient clipping, per-epoch validation with the F1 and
domain-bias metrics, optional early stopping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.callbacks import EarlyStopping, EpochRecord, TrainingHistory
from repro.core.interrupt import TerminationTrap, TrainingInterrupted, trap_termination
from repro.core.snapshot import (
    load_snapshot,
    module_rng_states,
    pack_adam_state,
    pack_early_stopping,
    pack_history,
    pack_model_state,
    restore_module_rng_states,
    save_snapshot,
    unpack_adam_state,
    unpack_early_stopping,
    unpack_history,
    unpack_model_state,
)
from repro.data.loader import DataLoader
from repro.metrics import EvaluationReport, evaluate_predictions
from repro.models.base import FakeNewsDetector
from repro.nn import Adam, GradientClipper
from repro.reliability.faults import fault_point
from repro.tensor import no_grad
from repro.utils import get_rng_state, set_rng_state


@dataclass
class TrainerConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 5
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    max_grad_norm: float = 5.0
    early_stopping_patience: int | None = None
    #: When set, :meth:`Trainer.fit` snapshots here after every epoch (and,
    #: with ``snapshot_every``, mid-epoch) so a killed run can resume.
    snapshot_path: str | None = None
    #: Mid-epoch snapshot cadence in batches (0 = epoch boundaries only).
    snapshot_every: int = 0
    #: Trap SIGTERM/SIGINT during :meth:`Trainer.fit`: finish the current
    #: batch, write a final snapshot to ``snapshot_path`` and raise
    #: :class:`repro.core.TrainingInterrupted` instead of dying mid-update.
    snapshot_on_signal: bool = True
    verbose: bool = False


def evaluate_model(model: FakeNewsDetector, loader: DataLoader,
                   model_name: str | None = None) -> EvaluationReport:
    """Run ``model`` over ``loader`` (unshuffled) and compute the full report."""
    predictions: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    domains: list[np.ndarray] = []
    with no_grad():
        for batch in loader.iter_eval():
            predictions.append(model.predict(batch))
            labels.append(batch.labels)
            domains.append(batch.domains)
    return evaluate_predictions(
        np.concatenate(labels), np.concatenate(predictions), np.concatenate(domains),
        loader.dataset.domain_names, model_name=model_name or model.name)


def collect_features(model: FakeNewsDetector, loader: DataLoader,
                     max_items: int | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract intermediate features for analysis (t-SNE, Figure 2).

    Returns ``(features, labels, domains)`` as NumPy arrays.
    """
    feature_blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    domains: list[np.ndarray] = []
    collected = 0
    was_training = model.training
    model.eval()
    with no_grad():
        for batch in loader.iter_eval():
            feature_blocks.append(model.extract_features(batch).numpy())
            labels.append(batch.labels)
            domains.append(batch.domains)
            collected += len(batch)
            if max_items is not None and collected >= max_items:
                break
    if was_training:
        model.train()
    features = np.concatenate(feature_blocks)[:max_items]
    return (features,
            np.concatenate(labels)[:max_items],
            np.concatenate(domains)[:max_items])


class Trainer:
    """Standard cross-entropy training loop (used for every baseline)."""

    def __init__(self, model: FakeNewsDetector, config: TrainerConfig | None = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        self.clipper = GradientClipper(self.config.max_grad_norm)
        self.history = TrainingHistory()
        self._stopper = (EarlyStopping(patience=self.config.early_stopping_patience)
                         if self.config.early_stopping_patience else None)
        self._stopped = False
        # Resume cursor: epochs completed so far, and — while an epoch is in
        # flight — the materialised index permutation plus position within it.
        self._epoch = 0
        self._batch_in_epoch = 0
        self._epoch_losses: list[float] = []
        self._epoch_order: np.ndarray | None = None
        self._train_loader: DataLoader | None = None
        self._pending_loader_state: dict | None = None
        self._trap: TerminationTrap | None = None

    # ------------------------------------------------------------------ #
    def _maybe_interrupt(self) -> None:
        """Honour a trapped SIGTERM/SIGINT at a clean batch boundary."""
        if self._trap is None or not self._trap.tripped:
            return
        if self.config.snapshot_path:
            self.snapshot(self.config.snapshot_path)
        raise TrainingInterrupted(self._trap.signal_name,
                                  self.config.snapshot_path)

    def _training_step(self, batch) -> float:
        """One optimiser update; returns the batch loss (override point)."""
        self.optimizer.zero_grad()
        loss, _ = self.model.compute_loss(batch)
        loss.backward()
        self.clipper.clip(self.optimizer.parameters)
        self.optimizer.step()
        return loss.item()

    def train_epoch(self, loader: DataLoader) -> float:
        """One optimisation pass over ``loader``; returns the mean batch loss.

        When a mid-epoch resume cursor is pending (after :meth:`resume` from
        a mid-epoch snapshot), continues that epoch from the stored batch
        instead of starting a fresh pass; batch shapes and RNG consumption
        match the uninterrupted run exactly, so the loss trajectory is
        bit-identical.
        """
        self.model.train()
        self._train_loader = loader
        self._apply_pending_loader_state(loader)
        if self._epoch_order is None:
            self._epoch_order = loader.epoch_order()
            self._batch_in_epoch = 0
            self._epoch_losses = []
        for batch in loader.iter_from(self._epoch_order, self._batch_in_epoch):
            self._maybe_interrupt()
            fault_point("trainer.step", epoch=self._epoch, batch=self._batch_in_epoch)
            self._epoch_losses.append(self._training_step(batch))
            self._batch_in_epoch += 1
            if (self.config.snapshot_path and self.config.snapshot_every
                    and self._batch_in_epoch % self.config.snapshot_every == 0):
                self.snapshot(self.config.snapshot_path)
        losses = self._epoch_losses
        self._epoch_order = None
        self._batch_in_epoch = 0
        self._epoch_losses = []
        return float(np.mean(losses)) if losses else 0.0

    def _validate(self, record: EpochRecord, val_loader: DataLoader | None) -> None:
        if val_loader is None:
            return
        report = evaluate_model(self.model, val_loader)
        record.val_f1 = report.overall_f1
        record.val_total_bias = report.total
        record.val_fned = report.fned
        record.val_fped = report.fped

    def fit(self, train_loader: DataLoader, val_loader: DataLoader | None = None) -> TrainingHistory:
        """Train until ``config.epochs`` epochs are complete, validating each.

        Counts from the trainer's epoch cursor, so a trainer restored with
        :meth:`resume` continues where the crashed run stopped rather than
        starting over.

        With ``config.snapshot_on_signal`` (the default), SIGTERM/SIGINT
        during the run stop it at the next batch boundary: a final snapshot
        goes to ``config.snapshot_path`` and :class:`TrainingInterrupted`
        is raised, so a preempted job resumes instead of starting over.
        """
        with trap_termination(enabled=self.config.snapshot_on_signal) as trap:
            self._trap = trap
            try:
                while self._epoch < self.config.epochs and not self._stopped:
                    self._maybe_interrupt()
                    epoch = self._epoch
                    train_loss = self.train_epoch(train_loader)
                    record = EpochRecord(epoch=epoch, train_loss=train_loss)
                    self._validate(record, val_loader)
                    self.history.append(record)
                    self._epoch += 1
                    if self.config.verbose:
                        bias = f", bias={record.val_total_bias:.3f}" if record.val_total_bias is not None else ""
                        f1 = f", F1={record.val_f1:.3f}" if record.val_f1 is not None else ""
                        print(f"[{self.model.name}] epoch {epoch}: loss={train_loss:.4f}{f1}{bias}")
                    if (self._stopper is not None and record.val_f1 is not None
                            and self._stopper.update(record.val_f1)):
                        self._stopped = True
                    if self.config.snapshot_path:
                        self.snapshot(self.config.snapshot_path)
            finally:
                self._trap = None
        return self.history

    # ------------------------------------------------------------------ #
    # Crash-resumable state                                                #
    # ------------------------------------------------------------------ #
    def _snapshot_extra(self) -> dict:
        """Trainer-subclass metadata merged into the snapshot header."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Inverse of :meth:`_snapshot_extra`."""

    def _snapshot_kind(self) -> str:
        return type(self).__name__

    def snapshot(self, path: str | os.PathLike) -> None:
        """Atomically capture everything needed to continue this run.

        Model parameters, Adam moments, training history, early-stopping
        state, the epoch/batch cursor (including the in-flight epoch's index
        permutation) and every RNG stream the run consumes (experiment
        fallback, loader shuffle, module-local dropout generators).
        """
        meta = {
            "trainer": self._snapshot_kind(),
            "model": self.model.name,
            "cursor": {
                "epoch": self._epoch,
                "batch": self._batch_in_epoch,
                "epoch_losses": self._epoch_losses,
                "mid_epoch": self._epoch_order is not None,
                "stopped": self._stopped,
            },
            "history": pack_history(self.history),
            "early_stopping": pack_early_stopping(self._stopper),
            "rng": {
                "fallback": get_rng_state(),
                "loader": (self._train_loader.rng_state()
                           if self._train_loader is not None else None),
                "modules": module_rng_states(self.model),
            },
            "extra": self._snapshot_extra(),
        }
        arrays: dict[str, np.ndarray] = {}
        pack_model_state(self.model, arrays)
        pack_adam_state(self.optimizer, meta, arrays)
        if self._epoch_order is not None:
            arrays["epoch_order"] = self._epoch_order
        save_snapshot(path, meta, arrays)

    def resume(self, path: str | os.PathLike,
               train_loader: DataLoader | None = None) -> "Trainer":
        """Restore a run captured by :meth:`snapshot`; returns ``self``.

        Build the trainer exactly as the crashed run did (same model
        construction, same config), then call this before :meth:`fit`.  Pass
        ``train_loader`` to restore its shuffle stream immediately; without
        it, the stream is restored on the next :meth:`fit`/:meth:`train_epoch`
        call.
        """
        meta, arrays = load_snapshot(path)
        unpack_model_state(self.model, arrays)
        unpack_adam_state(self.optimizer, meta, arrays)
        self.history = unpack_history(meta["history"])
        self._stopper = unpack_early_stopping(meta["early_stopping"])
        cursor = meta["cursor"]
        self._epoch = int(cursor["epoch"])
        self._stopped = bool(cursor.get("stopped", False))
        if cursor["mid_epoch"]:
            self._epoch_order = arrays["epoch_order"]
            self._batch_in_epoch = int(cursor["batch"])
            self._epoch_losses = [float(x) for x in cursor["epoch_losses"]]
        else:
            self._epoch_order = None
            self._batch_in_epoch = 0
            self._epoch_losses = []
        rng = meta["rng"]
        set_rng_state(rng["fallback"])
        restore_module_rng_states(self.model, rng["modules"])
        if rng["loader"] is not None:
            if train_loader is not None:
                train_loader.set_rng_state(rng["loader"])
                self._pending_loader_state = None
            else:
                self._pending_loader_state = rng["loader"]
        self._restore_extra(meta.get("extra", {}))
        return self

    def _apply_pending_loader_state(self, loader: DataLoader) -> None:
        if self._pending_loader_state is not None:
            loader.set_rng_state(self._pending_loader_state)
            self._pending_loader_state = None

    def export_pipeline(self, path, *, vocab, encoder, max_length: int,
                        tokenizer=None, domain_names=None,
                        model_name: str | None = None,
                        feature_channels=None, metadata=None) -> str:
        """Bundle the trained model into a servable artifact at ``path``.

        Thin wrapper over :func:`repro.serve.export_pipeline`; ``vocab``,
        ``encoder`` and ``max_length`` must be the ones the training loaders
        used — ``max_length`` is required because serving pads to it, and a
        mismatch with the training encode silently shifts probabilities.
        From a :class:`repro.experiments.DataBundle`, prefer its own
        ``export_pipeline``, which passes all of them automatically.
        """
        from repro.serve import export_pipeline  # deferred: keep core import-light

        return export_pipeline(self.model, path, vocab=vocab, encoder=encoder,
                               tokenizer=tokenizer, max_length=max_length,
                               domain_names=domain_names, model_name=model_name,
                               feature_channels=feature_channels, metadata=metadata)
