"""Generic supervised trainer for the baseline detectors.

All baselines of Tables VI and VII (and the teacher models) are trained with
this class: Adam, gradient clipping, per-epoch validation with the F1 and
domain-bias metrics, optional early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.callbacks import EarlyStopping, EpochRecord, TrainingHistory
from repro.data.loader import DataLoader
from repro.metrics import EvaluationReport, evaluate_predictions
from repro.models.base import FakeNewsDetector
from repro.nn import Adam, GradientClipper
from repro.tensor import no_grad


@dataclass
class TrainerConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 5
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    max_grad_norm: float = 5.0
    early_stopping_patience: int | None = None
    verbose: bool = False


def evaluate_model(model: FakeNewsDetector, loader: DataLoader,
                   model_name: str | None = None) -> EvaluationReport:
    """Run ``model`` over ``loader`` (unshuffled) and compute the full report."""
    predictions: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    domains: list[np.ndarray] = []
    with no_grad():
        for batch in loader.iter_eval():
            predictions.append(model.predict(batch))
            labels.append(batch.labels)
            domains.append(batch.domains)
    return evaluate_predictions(
        np.concatenate(labels), np.concatenate(predictions), np.concatenate(domains),
        loader.dataset.domain_names, model_name=model_name or model.name)


def collect_features(model: FakeNewsDetector, loader: DataLoader,
                     max_items: int | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract intermediate features for analysis (t-SNE, Figure 2).

    Returns ``(features, labels, domains)`` as NumPy arrays.
    """
    feature_blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    domains: list[np.ndarray] = []
    collected = 0
    was_training = model.training
    model.eval()
    with no_grad():
        for batch in loader.iter_eval():
            feature_blocks.append(model.extract_features(batch).numpy())
            labels.append(batch.labels)
            domains.append(batch.domains)
            collected += len(batch)
            if max_items is not None and collected >= max_items:
                break
    if was_training:
        model.train()
    features = np.concatenate(feature_blocks)[:max_items]
    return (features,
            np.concatenate(labels)[:max_items],
            np.concatenate(domains)[:max_items])


class Trainer:
    """Standard cross-entropy training loop (used for every baseline)."""

    def __init__(self, model: FakeNewsDetector, config: TrainerConfig | None = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        self.clipper = GradientClipper(self.config.max_grad_norm)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: DataLoader) -> float:
        """One optimisation pass over ``loader``; returns the mean batch loss."""
        self.model.train()
        losses: list[float] = []
        for batch in loader:
            self.optimizer.zero_grad()
            loss, _ = self.model.compute_loss(batch)
            loss.backward()
            self.clipper.clip(self.optimizer.parameters)
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def fit(self, train_loader: DataLoader, val_loader: DataLoader | None = None) -> TrainingHistory:
        """Train for ``config.epochs`` epochs, validating after each epoch."""
        stopper = None
        if self.config.early_stopping_patience:
            stopper = EarlyStopping(patience=self.config.early_stopping_patience)
        for epoch in range(self.config.epochs):
            train_loss = self.train_epoch(train_loader)
            record = EpochRecord(epoch=epoch, train_loss=train_loss)
            if val_loader is not None:
                report = evaluate_model(self.model, val_loader)
                record.val_f1 = report.overall_f1
                record.val_total_bias = report.total
                record.val_fned = report.fned
                record.val_fped = report.fped
            self.history.append(record)
            if self.config.verbose:
                bias = f", bias={record.val_total_bias:.3f}" if record.val_total_bias is not None else ""
                f1 = f", F1={record.val_f1:.3f}" if record.val_f1 is not None else ""
                print(f"[{self.model.name}] epoch {epoch}: loss={train_loss:.4f}{f1}{bias}")
            if stopper is not None and record.val_f1 is not None and stopper.update(record.val_f1):
                break
        return self.history

    def export_pipeline(self, path, *, vocab, encoder, max_length: int,
                        tokenizer=None, domain_names=None,
                        model_name: str | None = None,
                        feature_channels=None, metadata=None) -> str:
        """Bundle the trained model into a servable artifact at ``path``.

        Thin wrapper over :func:`repro.serve.export_pipeline`; ``vocab``,
        ``encoder`` and ``max_length`` must be the ones the training loaders
        used — ``max_length`` is required because serving pads to it, and a
        mismatch with the training encode silently shifts probabilities.
        From a :class:`repro.experiments.DataBundle`, prefer its own
        ``export_pipeline``, which passes all of them automatically.
        """
        from repro.serve import export_pipeline  # deferred: keep core import-light

        return export_pipeline(self.model, path, vocab=vocab, encoder=encoder,
                               tokenizer=tokenizer, max_length=max_length,
                               domain_names=domain_names, model_name=model_name,
                               feature_channels=feature_channels, metadata=metadata)
