"""Training snapshots: the on-disk format behind crash-resumable training.

A snapshot is a single atomic ``.npz`` archive capturing *everything* a
trainer needs to continue a run bit-identically after a crash:

* the model's full state dict (including frozen parameters);
* the Adam state (``_step_count`` plus the first/second-moment arrays,
  position-aligned with ``model.parameters()``);
* every RNG stream the run consumes — the experiment-wide fallback stream,
  the train loader's shuffle stream, and each module-local dropout generator
  (models thread ``seeded_rng(config.seed)`` into their ``Dropout`` layers;
  the *same* generator object is typically shared by several layers, so
  streams are deduplicated by object identity in first-seen
  ``named_modules`` order);
* the cursor (epoch, batch-in-epoch, per-batch losses so far) and the
  epoch's materialised index permutation — the permutation cannot be
  re-derived after a crash because the shuffle stream has already advanced
  past it;
* trainer-specific extras (early-stopping state, the DTDBD weight scheduler,
  ``weight_history``) via the ``extra`` metadata dict.

Like checkpoints, snapshots are written via
:func:`repro.reliability.atomic_writer` and carry per-array SHA-256
checksums in their JSON header; a corrupted or truncated snapshot is refused
with a readable :class:`SnapshotError` instead of resuming from damaged
state.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import asdict

import numpy as np

from repro._version import __version__
from repro.core.callbacks import EarlyStopping, EpochRecord, TrainingHistory
from repro.core.momentum import MomentumWeightScheduler, WeightSnapshot
from repro.nn.module import Module
from repro.reliability.durable import atomic_writer, sha256_bytes
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, default_read_policy

#: Reserved archive key holding the JSON header.
SNAPSHOT_META_KEY = "__repro_snapshot__"

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """A training snapshot cannot be written or restored."""


# --------------------------------------------------------------------------- #
# Archive I/O                                                                  #
# --------------------------------------------------------------------------- #
def save_snapshot(path: str | os.PathLike, meta: dict,
                  arrays: dict[str, np.ndarray]) -> None:
    """Atomically write a snapshot archive with checksummed arrays.

    ``meta`` must be JSON-serialisable; the format version, package version
    and per-array checksums are added here.
    """
    header = dict(meta)
    header["format_version"] = SNAPSHOT_FORMAT_VERSION
    header["repro_version"] = __version__
    header["checksums"] = {
        name: sha256_bytes(np.ascontiguousarray(array).tobytes())
        for name, array in arrays.items()}
    encoded = np.array(json.dumps(header))
    with atomic_writer(path, "wb") as handle:
        np.savez(handle, **{SNAPSHOT_META_KEY: encoded}, **arrays)


def load_snapshot(path: str | os.PathLike,
                  retry: RetryPolicy | None = None) -> tuple[dict, dict[str, np.ndarray]]:
    """Read and verify a snapshot; returns ``(meta, arrays)``.

    Refuses archives without a header, from a newer format version, or whose
    per-array checksums do not match — all as :class:`SnapshotError` with the
    path named.  Transient read errors are retried.
    """
    policy = retry if retry is not None else default_read_policy()
    entries = policy.call(_read_snapshot_archive, path)
    if SNAPSHOT_META_KEY not in entries:
        raise SnapshotError(
            f"'{os.fspath(path)}' is not a training snapshot (missing header); "
            "was it written by save_checkpoint instead of Trainer.snapshot?")
    try:
        meta = json.loads(str(entries.pop(SNAPSHOT_META_KEY)[()]))
    except ValueError as error:
        raise SnapshotError(
            f"snapshot '{os.fspath(path)}' has an unreadable header ({error}); "
            "the file is corrupt") from error
    version = meta.get("format_version")
    if not isinstance(version, int) or version > SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot '{os.fspath(path)}' has format version {version!r}, but "
            f"this build only understands versions <= {SNAPSHOT_FORMAT_VERSION}")
    damaged = sorted(
        name for name, digest in meta.get("checksums", {}).items()
        if name in entries
        and sha256_bytes(np.ascontiguousarray(entries[name]).tobytes()) != digest)
    if damaged:
        raise SnapshotError(
            f"snapshot '{os.fspath(path)}' failed checksum verification for "
            f"{len(damaged)} array(s): {damaged}; the file is corrupt — resume "
            "from an earlier snapshot")
    return meta, entries


def _read_snapshot_archive(path: str | os.PathLike) -> dict[str, np.ndarray]:
    fault_point("io.read", path=os.fspath(path), kind="snapshot")
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at '{os.fspath(path)}'") from None
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError) as error:
        raise SnapshotError(
            f"snapshot '{os.fspath(path)}' is corrupt or truncated and cannot "
            f"be read ({type(error).__name__}: {error}); resume from an "
            "earlier snapshot") from error


# --------------------------------------------------------------------------- #
# RNG-stream capture                                                           #
# --------------------------------------------------------------------------- #
def module_rng_states(module: Module) -> list[dict]:
    """Bit-generator states of every module-local generator, deduplicated.

    Models pass one ``seeded_rng(config.seed)`` generator into their
    ``Dropout`` layers, so the same object shows up under many modules; each
    distinct generator is captured once, in first-seen ``named_modules``
    order.  Restoration (:func:`restore_module_rng_states`) walks the same
    order, so the pairing is stable as long as the module tree is rebuilt
    identically — the same contract ``load_state_dict`` already relies on.
    """
    states: list[dict] = []
    seen: set[int] = set()
    for _, submodule in module.named_modules():
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator) and id(rng) not in seen:
            seen.add(id(rng))
            states.append(rng.bit_generator.state)
    return states


def restore_module_rng_states(module: Module, states: list[dict]) -> None:
    """Restore generator states captured by :func:`module_rng_states`."""
    generators: list[np.random.Generator] = []
    seen: set[int] = set()
    for _, submodule in module.named_modules():
        rng = getattr(submodule, "_rng", None)
        if isinstance(rng, np.random.Generator) and id(rng) not in seen:
            seen.add(id(rng))
            generators.append(rng)
    if len(generators) != len(states):
        raise SnapshotError(
            f"snapshot captured {len(states)} module RNG stream(s) but the model "
            f"has {len(generators)}; was it rebuilt with a different "
            "architecture or dropout configuration?")
    for rng, state in zip(generators, states):
        rng.bit_generator.state = state


# --------------------------------------------------------------------------- #
# Shared capture/restore pieces used by Trainer and DTDBDTrainer               #
# --------------------------------------------------------------------------- #
def pack_model_state(model: Module, arrays: dict[str, np.ndarray]) -> None:
    for name, array in model.state_dict().items():
        arrays[f"model.{name}"] = array


def unpack_model_state(model: Module, arrays: dict[str, np.ndarray]) -> None:
    state = {name[len("model."):]: array
             for name, array in arrays.items() if name.startswith("model.")}
    model.load_state_dict(state)


def pack_adam_state(optimizer, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    """Record Adam moments (position-aligned with ``optimizer.parameters``)."""
    meta["optimizer"] = {"step_count": optimizer._step_count,
                         "num_parameters": len(optimizer.parameters)}
    for index, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        arrays[f"adam.m.{index}"] = m
        arrays[f"adam.v.{index}"] = v


def unpack_adam_state(optimizer, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    recorded = meta.get("optimizer", {})
    if recorded.get("num_parameters") != len(optimizer.parameters):
        raise SnapshotError(
            f"snapshot optimizer tracked {recorded.get('num_parameters')} "
            f"parameter(s) but this trainer has {len(optimizer.parameters)}; "
            "the model architectures differ")
    optimizer._step_count = int(recorded["step_count"])
    for index in range(len(optimizer.parameters)):
        # Copy *into* the existing moment buffers: Adam updates them in place.
        np.copyto(optimizer._m[index], arrays[f"adam.m.{index}"])
        np.copyto(optimizer._v[index], arrays[f"adam.v.{index}"])


def pack_history(history: TrainingHistory) -> list[dict]:
    return [asdict(record) for record in history.records]


def unpack_history(records: list[dict]) -> TrainingHistory:
    return TrainingHistory(records=[EpochRecord(**record) for record in records])


def pack_early_stopping(stopper: EarlyStopping | None) -> dict | None:
    if stopper is None:
        return None
    return {"patience": stopper.patience, "minimum_delta": stopper.minimum_delta,
            "maximize": stopper.maximize, "best": stopper.best,
            "stale_epochs": stopper.stale_epochs}


def unpack_early_stopping(state: dict | None) -> EarlyStopping | None:
    if state is None:
        return None
    stopper = EarlyStopping(patience=state["patience"],
                            minimum_delta=state["minimum_delta"],
                            maximize=state["maximize"])
    stopper.best = state["best"]
    stopper.stale_epochs = state["stale_epochs"]
    return stopper


def pack_weight_scheduler(scheduler) -> dict:
    """Serialise a DTDBD weight scheduler (momentum DAA or constant ablation)."""
    if isinstance(scheduler, MomentumWeightScheduler):
        return {"kind": "momentum",
                "weight_add": scheduler._weight_add,
                "previous_f1": scheduler._previous_f1,
                "previous_bias": scheduler._previous_bias,
                "history": [asdict(snapshot) for snapshot in scheduler.history]}
    return {"kind": "constant", "weight_add": scheduler.weight_add}


def unpack_weight_scheduler(scheduler, state: dict) -> None:
    """Restore scheduler state in place (the trainer constructor built it)."""
    if state["kind"] == "momentum":
        if not isinstance(scheduler, MomentumWeightScheduler):
            raise SnapshotError(
                "snapshot used the momentum weight scheduler but this trainer "
                "was built with use_dynamic_adjustment=False")
        scheduler._weight_add = float(state["weight_add"])
        scheduler._previous_f1 = state["previous_f1"]
        scheduler._previous_bias = state["previous_bias"]
        scheduler.history[:] = [WeightSnapshot(**record)
                                for record in state["history"]]
    elif isinstance(scheduler, MomentumWeightScheduler):
        raise SnapshotError(
            "snapshot used the constant weight scheduler but this trainer "
            "was built with use_dynamic_adjustment=True")
