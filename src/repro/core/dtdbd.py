"""The DTDBD trainer: dual-teacher de-biasing distillation (Algorithm 1).

Pipeline (Section V of the paper):

1. Train the **unbiased teacher** — same architecture as the student — with the
   DAT-IE loss (:func:`repro.core.dat.train_unbiased_teacher`).
2. Take a fine-tuned multi-domain detector with a domain-knowledge module
   (MDFEND or M3FEND) as the **clean teacher**.
3. Train the student with the weighted sum of the classification loss, the
   adversarial de-biasing distillation loss against the unbiased teacher, and
   the domain knowledge distillation loss against the clean teacher (Eq. 13);
   after every epoch the momentum-based dynamic adjustment updates the weights
   from the observed change in F1 and bias (Eq. 14–15).

Both teachers are frozen during student training.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.callbacks import EpochRecord, TrainingHistory
from repro.core.dat import DATConfig, train_unbiased_teacher
from repro.core.distill import (
    TeacherCache,
    adversarial_debiasing_distillation_loss,
    domain_knowledge_distillation_loss,
    teacher_forward,
)
from repro.core.momentum import ConstantWeightScheduler, MomentumWeightScheduler
from repro.core.snapshot import (
    load_snapshot,
    module_rng_states,
    pack_adam_state,
    pack_history,
    pack_model_state,
    pack_weight_scheduler,
    restore_module_rng_states,
    save_snapshot,
    unpack_adam_state,
    unpack_history,
    unpack_model_state,
    unpack_weight_scheduler,
)
from repro.core.interrupt import TerminationTrap, TrainingInterrupted, trap_termination
from repro.core.trainer import Trainer, TrainerConfig, evaluate_model
from repro.data.loader import DataLoader
from repro.metrics import EvaluationReport
from repro.models.base import FakeNewsDetector
from repro.nn import Adam, CrossEntropyLoss, GradientClipper
from repro.reliability.faults import fault_point
from repro.utils import get_rng_state, set_rng_state


@dataclass
class DTDBDConfig:
    """Hyper-parameters of the dual-teacher distillation stage."""

    epochs: int = 5
    learning_rate: float = 1e-3
    #: temperature of the adversarial de-biasing distillation (Eq. 6)
    add_temperature: float = 1.0
    #: temperature of the domain knowledge distillation (Eq. 12)
    dkd_temperature: float = 4.0
    classification_weight: float = 1.0
    momentum: float = 0.9
    initial_weight_add: float = 0.5
    use_dynamic_adjustment: bool = True
    use_add: bool = True
    use_dkd: bool = True
    max_grad_norm: float = 5.0
    #: Precompute each frozen teacher's outputs once per loader and serve
    #: mini-batches by gathering on ``batch.indices`` (numerically exact —
    #: the same arrays, gathered instead of recomputed) instead of re-running
    #: both teacher forwards on every step.  See
    #: :class:`repro.core.distill.TeacherCache` for the invalidation contract.
    cache_teacher_outputs: bool = True
    #: When set, :meth:`DTDBDTrainer.fit` snapshots here after every epoch
    #: (and, with ``snapshot_every``, mid-epoch) so a killed run can resume.
    snapshot_path: str | None = None
    #: Mid-epoch snapshot cadence in batches (0 = epoch boundaries only).
    snapshot_every: int = 0
    #: Trap SIGTERM/SIGINT during :meth:`DTDBDTrainer.fit`: finish the
    #: current batch, snapshot to ``snapshot_path`` and raise
    #: :class:`repro.core.TrainingInterrupted` instead of dying mid-update.
    snapshot_on_signal: bool = True
    verbose: bool = False


@dataclass
class DTDBDResult:
    """Outcome of a full DTDBD run."""

    student: FakeNewsDetector
    history: TrainingHistory
    weight_history: list[tuple[float, float]] = field(default_factory=list)
    test_report: EvaluationReport | None = None


class DTDBDTrainer:
    """Distills a student from an unbiased teacher and a clean teacher."""

    def __init__(self, student: FakeNewsDetector,
                 unbiased_teacher: FakeNewsDetector | None,
                 clean_teacher: FakeNewsDetector | None,
                 config: DTDBDConfig | None = None):
        self.student = student
        self.unbiased_teacher = unbiased_teacher
        self.clean_teacher = clean_teacher
        self.config = config or DTDBDConfig()
        if self.config.use_add and unbiased_teacher is None:
            raise ValueError("ADD is enabled but no unbiased teacher was provided")
        if self.config.use_dkd and clean_teacher is None:
            raise ValueError("DKD is enabled but no clean teacher was provided")
        if unbiased_teacher is not None:
            unbiased_teacher.freeze()
            unbiased_teacher.eval()
        if clean_teacher is not None:
            clean_teacher.freeze()
            clean_teacher.eval()
        self.optimizer = Adam(student.parameters(), lr=self.config.learning_rate)
        self.clipper = GradientClipper(self.config.max_grad_norm)
        self.criterion = CrossEntropyLoss()
        if self.config.use_dynamic_adjustment:
            self.scheduler = MomentumWeightScheduler(
                momentum=self.config.momentum,
                initial_weight_add=self.config.initial_weight_add)
        else:
            self.scheduler = ConstantWeightScheduler(self.config.initial_weight_add)
        self.history = TrainingHistory()
        self.weight_history: list[tuple[float, float]] = [self.scheduler.weights()]
        #: per-loader frozen-teacher output caches, keyed by loader identity
        self._teacher_caches: dict[int, tuple[TeacherCache | None, TeacherCache | None]] = {}
        # Resume cursor, mirroring repro.core.trainer.Trainer (the teacher
        # caches are deliberately *not* snapshotted: the teachers are frozen,
        # so a resumed run rebuilds them bit-identically from the loader).
        self._epoch = 0
        self._batch_in_epoch = 0
        self._epoch_losses: list[float] = []
        self._epoch_order: np.ndarray | None = None
        self._train_loader: DataLoader | None = None
        self._pending_loader_state: dict | None = None
        self._trap: TerminationTrap | None = None

    # ------------------------------------------------------------------ #
    def _maybe_interrupt(self) -> None:
        """Honour a trapped SIGTERM/SIGINT at a clean batch boundary."""
        if self._trap is None or not self._trap.tripped:
            return
        if self.config.snapshot_path:
            self.snapshot(self.config.snapshot_path)
        raise TrainingInterrupted(self._trap.signal_name,
                                  self.config.snapshot_path)

    # ------------------------------------------------------------------ #
    # Frozen-teacher output caching                                        #
    # ------------------------------------------------------------------ #
    def _caches_for(self, loader: DataLoader) -> tuple[TeacherCache | None, TeacherCache | None]:
        """The ``(unbiased, clean)`` caches for ``loader`` (built on first use)."""
        if not self.config.cache_teacher_outputs:
            return None, None
        key = id(loader)
        if key not in self._teacher_caches:
            self._teacher_caches[key] = (
                TeacherCache(self.unbiased_teacher, loader)
                if self.config.use_add else None,
                TeacherCache(self.clean_teacher, loader)
                if self.config.use_dkd else None)
        return self._teacher_caches[key]

    def invalidate_teacher_caches(self, indices=None) -> None:
        """Invalidate cached teacher outputs (e.g. after mutating fresh data).

        With ``indices=None``, drop every cached teacher output: the next
        training epoch re-runs the full-dataset teacher passes.  This is never
        needed inside a normal :meth:`fit` — both teachers are frozen — but
        ad-hoc callers that reload teacher weights or re-encode a loader
        between epochs must invalidate before continuing.  The per-loader
        entries (and their loader references) are released outright, so a
        trainer cycled across many loaders does not pin them all.

        With a sequence of absolute dataset positions (the streaming
        ``OnlineAdapter`` path, where a ring buffer overwrote a handful of
        rows in place), only the :class:`TeacherCache` windows containing
        those rows go stale; everything else keeps serving the original
        arrays bit-identically.
        """
        if indices is None:
            self._teacher_caches.clear()
            return
        for unbiased_cache, clean_cache in self._teacher_caches.values():
            for cache in (unbiased_cache, clean_cache):
                if cache is not None:
                    cache.invalidate(indices)

    # ------------------------------------------------------------------ #
    def _batch_loss(self, batch,
                    unbiased_cache: TeacherCache | None = None,
                    clean_cache: TeacherCache | None = None) -> tuple:
        """Overall loss of Eq. 13 for one mini-batch.

        Teacher outputs come from the given :class:`TeacherCache` gathers when
        provided (the trainer's fast path) and from a fresh
        :func:`teacher_forward` otherwise, so ad-hoc callers can still score a
        single batch without building a cache.  A ragged batch the cache
        cannot serve bit-exactly (see :meth:`TeacherCache.serves`) is
        forwarded live — at most one batch per epoch — which keeps the cached
        training trajectory bit-identical to the uncached one.

        Note on ragged batches: the ADD term needs at least two samples to
        form a correlation matrix, so a final batch of size 1 contributes only
        CE (+ DKD) to the epoch loss.  The skip is surfaced in ``components``
        (``add`` is reported as 0.0 with ``add_skipped`` set) so epoch-loss
        mixtures remain interpretable.
        """
        weight_add, weight_dkd = self.scheduler.weights()
        logits, features = self.student.forward_with_features(batch)
        loss = self.config.classification_weight * self.criterion(logits, batch.labels)
        components = {"ce": loss.item()}
        if self.config.use_add:
            if len(batch) >= 2:
                if unbiased_cache is not None and unbiased_cache.serves(batch):
                    _, teacher_features = unbiased_cache.lookup(batch)
                else:
                    _, teacher_features = teacher_forward(self.unbiased_teacher, batch)
                add = adversarial_debiasing_distillation_loss(
                    features, teacher_features, temperature=self.config.add_temperature)
                loss = loss + weight_add * add
                components["add"] = add.item()
            else:
                components["add"] = 0.0
                components["add_skipped"] = True
        if self.config.use_dkd:
            if clean_cache is not None and clean_cache.serves(batch):
                teacher_logits, _ = clean_cache.lookup(batch)
            else:
                teacher_logits, _ = teacher_forward(self.clean_teacher, batch)
            dkd = domain_knowledge_distillation_loss(
                logits, teacher_logits, temperature=self.config.dkd_temperature)
            loss = loss + weight_dkd * dkd
            components["dkd"] = dkd.item()
        return loss, logits, components

    def train_epoch(self, loader: DataLoader) -> float:
        """One distillation pass; resumes a pending mid-epoch cursor if set."""
        self.student.train()
        self._train_loader = loader
        if self._pending_loader_state is not None:
            loader.set_rng_state(self._pending_loader_state)
            self._pending_loader_state = None
        unbiased_cache, clean_cache = self._caches_for(loader)
        if self._epoch_order is None:
            self._epoch_order = loader.epoch_order()
            self._batch_in_epoch = 0
            self._epoch_losses = []
        for batch in loader.iter_from(self._epoch_order, self._batch_in_epoch):
            self._maybe_interrupt()
            fault_point("trainer.step", epoch=self._epoch, batch=self._batch_in_epoch)
            self.optimizer.zero_grad()
            loss, _, _ = self._batch_loss(batch, unbiased_cache, clean_cache)
            loss.backward()
            self.clipper.clip(self.optimizer.parameters)
            self.optimizer.step()
            self._epoch_losses.append(loss.item())
            self._batch_in_epoch += 1
            if (self.config.snapshot_path and self.config.snapshot_every
                    and self._batch_in_epoch % self.config.snapshot_every == 0):
                self.snapshot(self.config.snapshot_path)
        losses = self._epoch_losses
        self._epoch_order = None
        self._batch_in_epoch = 0
        self._epoch_losses = []
        return float(np.mean(losses)) if losses else 0.0

    def fit(self, train_loader: DataLoader, val_loader: DataLoader | None = None) -> TrainingHistory:
        with trap_termination(enabled=self.config.snapshot_on_signal) as trap:
            self._trap = trap
            try:
                while self._epoch < self.config.epochs:
                    self._maybe_interrupt()
                    epoch = self._epoch
                    train_loss = self.train_epoch(train_loader)
                    record = EpochRecord(epoch=epoch, train_loss=train_loss)
                    if val_loader is not None:
                        report = evaluate_model(self.student, val_loader)
                        record.val_f1 = report.overall_f1
                        record.val_total_bias = report.total
                        record.val_fned = report.fned
                        record.val_fped = report.fped
                        self.scheduler.update(epoch, report.overall_f1, report.total)
                    self.weight_history.append(self.scheduler.weights())
                    record.extras = {"weight_add": self.scheduler.weight_add,
                                     "weight_dkd": self.scheduler.weight_dkd}
                    self.history.append(record)
                    self._epoch += 1
                    if self.config.verbose:
                        print(f"[DTDBD] epoch {epoch}: loss={train_loss:.4f} "
                              f"F1={record.val_f1} total={record.val_total_bias} "
                              f"w_ADD={self.scheduler.weight_add:.2f}")
                    if self.config.snapshot_path:
                        self.snapshot(self.config.snapshot_path)
            finally:
                self._trap = None
        return self.history

    # ------------------------------------------------------------------ #
    # Crash-resumable state                                                #
    # ------------------------------------------------------------------ #
    def snapshot(self, path: str | os.PathLike) -> None:
        """Atomically capture the distillation run (see ``Trainer.snapshot``).

        On top of the generic trainer state this records the weight
        scheduler's momentum state and ``weight_history``, so the dynamic
        adjustment continues exactly where it stopped.
        """
        meta = {
            "trainer": type(self).__name__,
            "model": self.student.name,
            "cursor": {
                "epoch": self._epoch,
                "batch": self._batch_in_epoch,
                "epoch_losses": self._epoch_losses,
                "mid_epoch": self._epoch_order is not None,
            },
            "history": pack_history(self.history),
            "rng": {
                "fallback": get_rng_state(),
                "loader": (self._train_loader.rng_state()
                           if self._train_loader is not None else None),
                "modules": module_rng_states(self.student),
            },
            "scheduler": pack_weight_scheduler(self.scheduler),
            "weight_history": [list(weights) for weights in self.weight_history],
        }
        arrays: dict[str, np.ndarray] = {}
        pack_model_state(self.student, arrays)
        pack_adam_state(self.optimizer, meta, arrays)
        if self._epoch_order is not None:
            arrays["epoch_order"] = self._epoch_order
        save_snapshot(path, meta, arrays)

    def resume(self, path: str | os.PathLike,
               train_loader: DataLoader | None = None) -> "DTDBDTrainer":
        """Restore a run captured by :meth:`snapshot`; returns ``self``.

        Rebuild the trainer exactly as the crashed run did (same student
        construction, same *frozen* teachers, same config), then call this
        before :meth:`fit`.  Teacher caches are rebuilt on first use — the
        teachers are frozen, so the rebuilt outputs are bit-identical.
        """
        meta, arrays = load_snapshot(path)
        unpack_model_state(self.student, arrays)
        unpack_adam_state(self.optimizer, meta, arrays)
        self.history = unpack_history(meta["history"])
        cursor = meta["cursor"]
        self._epoch = int(cursor["epoch"])
        if cursor["mid_epoch"]:
            self._epoch_order = arrays["epoch_order"]
            self._batch_in_epoch = int(cursor["batch"])
            self._epoch_losses = [float(x) for x in cursor["epoch_losses"]]
        else:
            self._epoch_order = None
            self._batch_in_epoch = 0
            self._epoch_losses = []
        rng = meta["rng"]
        set_rng_state(rng["fallback"])
        restore_module_rng_states(self.student, rng["modules"])
        if rng["loader"] is not None:
            if train_loader is not None:
                train_loader.set_rng_state(rng["loader"])
                self._pending_loader_state = None
            else:
                self._pending_loader_state = rng["loader"]
        unpack_weight_scheduler(self.scheduler, meta["scheduler"])
        self.weight_history = [tuple(weights) for weights in meta["weight_history"]]
        return self

    def export_pipeline(self, path, *, vocab, encoder, max_length: int,
                        tokenizer=None, domain_names=None,
                        model_name: str | None = None,
                        feature_channels=None, metadata=None) -> str:
        """Bundle the distilled *student* into a servable artifact at ``path``.

        The paper's deployment story is exactly this: the lightweight student
        — not the teachers — serves multi-domain traffic.  Same contract as
        :meth:`repro.core.trainer.Trainer.export_pipeline` (``max_length``
        is required: serving pads to it).
        """
        from repro.serve import export_pipeline  # deferred: keep core import-light

        return export_pipeline(self.student, path, vocab=vocab, encoder=encoder,
                               tokenizer=tokenizer, max_length=max_length,
                               domain_names=domain_names, model_name=model_name,
                               feature_channels=feature_channels, metadata=metadata)


# --------------------------------------------------------------------------- #
# End-to-end convenience pipeline                                              #
# --------------------------------------------------------------------------- #
def run_dtdbd_pipeline(student: FakeNewsDetector,
                       unbiased_teacher_backbone: FakeNewsDetector,
                       clean_teacher: FakeNewsDetector,
                       train_loader: DataLoader,
                       val_loader: DataLoader,
                       test_loader: DataLoader | None = None,
                       clean_teacher_pretrained: bool = False,
                       dat_config: DATConfig | None = None,
                       clean_teacher_config: TrainerConfig | None = None,
                       dtdbd_config: DTDBDConfig | None = None,
                       seed: int = 0) -> DTDBDResult:
    """Run the complete Algorithm 1: train both teachers, then distil the student.

    ``unbiased_teacher_backbone`` must share the student's architecture (the
    paper sets them identical); ``clean_teacher`` is fine-tuned here unless
    ``clean_teacher_pretrained`` is True.

    The distillation stage runs on the frozen-teacher fast path by default
    (``DTDBDConfig.cache_teacher_outputs``): both teachers are finished
    training by the time the :class:`DTDBDTrainer` is built, so their outputs
    are precomputed once and gathered per batch.
    """
    unbiased_teacher, _ = train_unbiased_teacher(
        unbiased_teacher_backbone, train_loader, val_loader,
        config=dat_config or DATConfig(), seed=seed)
    if not clean_teacher_pretrained:
        Trainer(clean_teacher, clean_teacher_config or TrainerConfig()).fit(train_loader, val_loader)
    trainer = DTDBDTrainer(student, unbiased_teacher, clean_teacher,
                           config=dtdbd_config or DTDBDConfig())
    history = trainer.fit(train_loader, val_loader)
    test_report = evaluate_model(student, test_loader) if test_loader is not None else None
    return DTDBDResult(student=student, history=history,
                       weight_history=trainer.weight_history, test_report=test_report)
