"""Training history and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpochRecord:
    """Metrics recorded after one training epoch."""

    epoch: int
    train_loss: float
    val_f1: float | None = None
    val_total_bias: float | None = None
    val_fned: float | None = None
    val_fped: float | None = None
    extras: dict = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochRecord` plus convenience accessors."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def train_losses(self) -> list[float]:
        return [record.train_loss for record in self.records]

    @property
    def val_f1s(self) -> list[float]:
        return [record.val_f1 for record in self.records if record.val_f1 is not None]

    @property
    def val_biases(self) -> list[float]:
        return [record.val_total_bias for record in self.records
                if record.val_total_bias is not None]

    def best_epoch(self, metric: str = "val_f1", maximize: bool = True) -> EpochRecord | None:
        candidates = [r for r in self.records if getattr(r, metric, None) is not None]
        if not candidates:
            return None
        chooser = max if maximize else min
        return chooser(candidates, key=lambda record: getattr(record, metric))


class EarlyStopping:
    """Stop training when a monitored value has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 3, minimum_delta: float = 1e-4, maximize: bool = True):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.minimum_delta = minimum_delta
        self.maximize = maximize
        self.best: float | None = None
        self.stale_epochs = 0

    def update(self, value: float) -> bool:
        """Record ``value``; return True when training should stop."""
        if self.best is None:
            self.best = value
            return False
        improved = (value > self.best + self.minimum_delta if self.maximize
                    else value < self.best - self.minimum_delta)
        if improved:
            self.best = value
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        return self.stale_epochs >= self.patience
