"""Domain adversarial training (DAT) and the paper's DAT-IE variant.

The unbiased teacher of DTDBD shares the student's architecture and is trained
with domain adversarial training plus an information-entropy term (Eq. 10–11):

``L_DAT-IE = CE(G_y(f), y) + alpha * CE(G_d(f), d) + beta * L_IE``

with ``beta = 0.2 * alpha`` and the domain classifier ``G_d`` connected through
a gradient-reversal layer.  The information-entropy loss pushes the domain
classifier's output towards high entropy, so the encoder keeps features shared
by *several* relevant domains instead of collapsing onto the single most
related one (the "shortcut" the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.callbacks import EpochRecord, TrainingHistory
from repro.core.trainer import TrainerConfig, evaluate_model
from repro.data.loader import Batch, DataLoader
from repro.models.base import FakeNewsDetector
from repro.nn import Adam, GradientClipper, GradientReversal, MLP, Module
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng


@dataclass
class DATConfig:
    """Hyper-parameters of (information-entropy) domain adversarial training."""

    alpha: float = 1.0
    #: weight of the information-entropy loss; the paper fixes beta = 0.2 * alpha
    beta_ratio: float = 0.2
    use_information_entropy: bool = True
    grl_coefficient: float = 1.0
    epochs: int = 10
    learning_rate: float = 2e-3
    max_grad_norm: float = 5.0
    verbose: bool = False

    @property
    def beta(self) -> float:
        return self.beta_ratio * self.alpha


class DomainAdversarialModel(Module):
    """Wraps a detector with a gradient-reversed domain classifier head.

    The wrapped detector keeps its own label classifier (``G_y``); this wrapper
    adds ``G_d`` behind a gradient-reversal layer and computes the DAT / DAT-IE
    objective.  After training, the *backbone* is the unbiased teacher used by
    the adversarial de-biasing distillation.
    """

    def __init__(self, backbone: FakeNewsDetector, num_domains: int,
                 config: DATConfig | None = None, hidden_dim: int = 48, seed: int = 0):
        super().__init__()
        self.backbone = backbone
        self.dat_config = config or DATConfig()
        self.gradient_reversal = GradientReversal(self.dat_config.grl_coefficient)
        self.domain_classifier = MLP([backbone.feature_dim, hidden_dim], num_domains,
                                     dropout=0.2, rng=seeded_rng(seed + 811))

    # Delegation so the wrapper can be evaluated like a plain detector.
    @property
    def name(self) -> str:
        return f"{self.backbone.name}+dat"

    @property
    def feature_dim(self) -> int:
        return self.backbone.feature_dim

    def extract_features(self, batch: Batch) -> Tensor:
        return self.backbone.extract_features(batch)

    def forward(self, batch: Batch) -> Tensor:
        return self.backbone(batch)

    def predict(self, batch: Batch) -> np.ndarray:
        return self.backbone.predict(batch)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        return self.backbone.predict_proba(batch)

    def domain_probabilities(self, features: Tensor) -> Tensor:
        reversed_features = self.gradient_reversal(features)
        return F.softmax(self.domain_classifier(reversed_features), axis=-1)

    def compute_loss(self, batch: Batch) -> tuple[Tensor, Tensor]:
        """DAT / DAT-IE objective of Eq. 11."""
        features = self.backbone.extract_features(batch)
        logits = self.backbone.classify(features)
        label_loss = F.cross_entropy(logits, batch.labels)
        domain_probs = self.domain_probabilities(features)
        domain_log_probs = domain_probs.clip(1e-12, 1.0).log()
        domain_loss = -(Tensor(F.one_hot(batch.domains, domain_probs.shape[-1]))
                        * domain_log_probs).sum(axis=-1).mean()
        loss = label_loss + self.dat_config.alpha * domain_loss
        if self.dat_config.use_information_entropy:
            loss = loss + self.dat_config.beta * F.information_entropy_loss(domain_probs)
        return loss, logits


def train_unbiased_teacher(backbone: FakeNewsDetector, train_loader: DataLoader,
                           val_loader: DataLoader | None = None,
                           config: DATConfig | None = None,
                           seed: int = 0) -> tuple[FakeNewsDetector, TrainingHistory]:
    """Train ``backbone`` with DAT-IE and return it (plus the training history).

    This is stage one of Algorithm 1: the returned backbone is the frozen
    *unbiased teacher* ``T_f`` used by the adversarial de-biasing distillation.
    """
    config = config or DATConfig()
    wrapper = DomainAdversarialModel(backbone, train_loader.num_domains,
                                     config=config, seed=seed)
    optimizer = Adam(wrapper.parameters(), lr=config.learning_rate)
    clipper = GradientClipper(config.max_grad_norm)
    history = TrainingHistory()
    for epoch in range(config.epochs):
        wrapper.train()
        losses = []
        for batch in train_loader:
            optimizer.zero_grad()
            loss, _ = wrapper.compute_loss(batch)
            loss.backward()
            clipper.clip(optimizer.parameters)
            optimizer.step()
            losses.append(loss.item())
        record = EpochRecord(epoch=epoch, train_loss=float(np.mean(losses)) if losses else 0.0)
        if val_loader is not None:
            report = evaluate_model(backbone, val_loader)
            record.val_f1 = report.overall_f1
            record.val_total_bias = report.total
            record.val_fned = report.fned
            record.val_fped = report.fped
        history.append(record)
        if config.verbose:
            print(f"[DAT-IE] epoch {epoch}: loss={record.train_loss:.4f} "
                  f"F1={record.val_f1} total={record.val_total_bias}")
    backbone.eval()
    return backbone, history


def train_dat_student(backbone: FakeNewsDetector, train_loader: DataLoader,
                      val_loader: DataLoader | None = None,
                      use_information_entropy: bool = False,
                      epochs: int = 5, learning_rate: float = 1e-3,
                      seed: int = 0) -> tuple[FakeNewsDetector, TrainingHistory]:
    """Convenience wrapper used by the Table IX comparison (DAT vs DAT-IE)."""
    config = DATConfig(epochs=epochs, learning_rate=learning_rate,
                       use_information_entropy=use_information_entropy)
    return train_unbiased_teacher(backbone, train_loader, val_loader,
                                  config=config, seed=seed)


__all__ = [
    "DATConfig", "DomainAdversarialModel",
    "train_unbiased_teacher", "train_dat_student",
    "TrainerConfig",
]
