"""Momentum-based dynamic adjustment of the two teachers' weights (Eq. 13–15).

After every epoch the student is evaluated; the change in performance
(``delta_f1``) and the change in the bias metric (``delta_bias``, positive when
Total = FNED + FPED *decreases*) determine how the weight of the adversarial
de-biasing distillation moves:

``w_ADD(r) = m * w_ADD(r-1) - (1 - m) * (delta_bias - delta_f1)``
``w_DKD(r) = 1 - w_ADD(r)``

Intuitively: if bias is improving faster than F1, the unbiased teacher has done
its job for now and weight shifts towards the clean teacher (and vice versa).
Weights are clamped to ``[minimum, 1 - minimum]`` so neither teacher is ever
silenced completely.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WeightSnapshot:
    """Weights and the observations that produced them (for logging/tests)."""

    epoch: int
    weight_add: float
    weight_dkd: float
    delta_f1: float = 0.0
    delta_bias: float = 0.0


@dataclass
class MomentumWeightScheduler:
    """Implements the momentum-based dynamic adjustment algorithm (DAA)."""

    momentum: float = 0.7
    initial_weight_add: float = 0.5
    minimum_weight: float = 0.05
    history: list[WeightSnapshot] = field(default_factory=list)

    def __post_init__(self):
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if not 0.0 < self.minimum_weight < 0.5:
            raise ValueError("minimum_weight must be in (0, 0.5)")
        self._weight_add = float(min(max(self.initial_weight_add, self.minimum_weight),
                                     1.0 - self.minimum_weight))
        self._previous_f1: float | None = None
        self._previous_bias: float | None = None
        self.history.append(WeightSnapshot(epoch=0, weight_add=self._weight_add,
                                           weight_dkd=1.0 - self._weight_add))

    # ------------------------------------------------------------------ #
    @property
    def weight_add(self) -> float:
        return self._weight_add

    @property
    def weight_dkd(self) -> float:
        return 1.0 - self._weight_add

    def weights(self) -> tuple[float, float]:
        """Current ``(w_ADD, w_DKD)``."""
        return self.weight_add, self.weight_dkd

    # ------------------------------------------------------------------ #
    def update(self, epoch: int, f1: float, total_bias: float) -> tuple[float, float]:
        """Observe the epoch's validation F1 and Total bias; return new weights.

        The first observation only seeds the baselines (the paper starts
        adjusting "since the second epoch").
        """
        if self._previous_f1 is None or self._previous_bias is None:
            self._previous_f1 = f1
            self._previous_bias = total_bias
            self.history.append(WeightSnapshot(epoch=epoch, weight_add=self.weight_add,
                                               weight_dkd=self.weight_dkd))
            return self.weights()

        delta_f1 = f1 - self._previous_f1
        delta_bias = self._previous_bias - total_bias  # positive when bias shrinks
        updated = (self.momentum * self._weight_add
                   - (1.0 - self.momentum) * (delta_bias - delta_f1))
        self._weight_add = float(min(max(updated, self.minimum_weight),
                                     1.0 - self.minimum_weight))
        self._previous_f1 = f1
        self._previous_bias = total_bias
        self.history.append(WeightSnapshot(epoch=epoch, weight_add=self.weight_add,
                                           weight_dkd=self.weight_dkd,
                                           delta_f1=delta_f1, delta_bias=delta_bias))
        return self.weights()


@dataclass
class ConstantWeightScheduler:
    """Fixed weights — the "w/o DAA" ablation row of Table VIII."""

    weight_add_value: float = 0.5

    @property
    def weight_add(self) -> float:
        return self.weight_add_value

    @property
    def weight_dkd(self) -> float:
        return 1.0 - self.weight_add_value

    def weights(self) -> tuple[float, float]:
        return self.weight_add, self.weight_dkd

    def update(self, epoch: int, f1: float, total_bias: float) -> tuple[float, float]:
        return self.weights()
