"""DTDBD core: distillation losses, DAT-IE training, momentum adjustment, trainers."""

from repro.core.callbacks import EarlyStopping, EpochRecord, TrainingHistory
from repro.core.dat import (
    DATConfig,
    DomainAdversarialModel,
    train_dat_student,
    train_unbiased_teacher,
)
from repro.core.distill import (
    TeacherCache,
    adversarial_debiasing_distillation_loss,
    correlation_matrix,
    domain_knowledge_distillation_loss,
    teacher_forward,
)
from repro.core.dtdbd import DTDBDConfig, DTDBDResult, DTDBDTrainer, run_dtdbd_pipeline
from repro.core.interrupt import TrainingInterrupted, trap_termination
from repro.core.momentum import (
    ConstantWeightScheduler,
    MomentumWeightScheduler,
    WeightSnapshot,
)
from repro.core.reweighting import DomainReweightedTrainer, domain_balanced_weights
from repro.core.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)
from repro.core.trainer import Trainer, TrainerConfig, collect_features, evaluate_model

__all__ = [
    "TrainingHistory", "EpochRecord", "EarlyStopping",
    "SnapshotError", "save_snapshot", "load_snapshot", "SNAPSHOT_FORMAT_VERSION",
    "Trainer", "TrainerConfig", "evaluate_model", "collect_features",
    "TrainingInterrupted", "trap_termination",
    "DATConfig", "DomainAdversarialModel", "train_unbiased_teacher", "train_dat_student",
    "correlation_matrix", "adversarial_debiasing_distillation_loss",
    "domain_knowledge_distillation_loss", "teacher_forward", "TeacherCache",
    "MomentumWeightScheduler", "ConstantWeightScheduler", "WeightSnapshot",
    "DTDBDConfig", "DTDBDResult", "DTDBDTrainer", "run_dtdbd_pipeline",
    "DomainReweightedTrainer", "domain_balanced_weights",
]
