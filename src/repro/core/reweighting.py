"""Domain-balanced loss reweighting — a simple de-biasing baseline.

The paper compares DTDBD against adversarial de-biasing (EANN / EDDFN / DAT);
a classic non-adversarial alternative is to reweight the classification loss so
that every (domain, label) cell contributes equally, removing the incentive to
learn the domain prior.  This module provides that baseline as an extension so
its trade-off (bias down, but performance usually down too) can be measured
against DTDBD with the same harness.
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import Trainer, TrainerConfig
from repro.data.loader import Batch, DataLoader
from repro.models.base import FakeNewsDetector
from repro.tensor import functional as F


def domain_balanced_weights(labels: np.ndarray, domains: np.ndarray,
                            num_domains: int, smoothing: float = 1.0) -> np.ndarray:
    """Per-sample weights proportional to ``1 / count(domain, label)``.

    Weights are normalised so their mean is 1, which keeps the loss scale (and
    therefore the learning-rate regime) comparable to unweighted training.
    ``smoothing`` is added to every cell count so rare cells do not explode.
    """
    labels = np.asarray(labels, dtype=np.int64)
    domains = np.asarray(domains, dtype=np.int64)
    if labels.shape != domains.shape:
        raise ValueError("labels and domains must have the same shape")
    counts = np.zeros((num_domains, 2), dtype=np.float64)
    for domain, label in zip(domains, labels):
        counts[domain, label] += 1.0
    weights = 1.0 / (counts[domains, labels] + smoothing)
    return weights / weights.mean()


class DomainReweightedTrainer(Trainer):
    """Supervised trainer whose cross-entropy is domain/label balanced.

    Weights are computed from the *training corpus* once (not per batch) so the
    effective objective is the balanced risk over the whole training set.
    """

    def __init__(self, model: FakeNewsDetector, train_loader: DataLoader,
                 config: TrainerConfig | None = None, smoothing: float = 1.0):
        super().__init__(model, config)
        self._weights = domain_balanced_weights(
            train_loader.labels, train_loader.domains,
            num_domains=train_loader.num_domains, smoothing=smoothing)

    def _training_step(self, batch: Batch) -> float:
        self.optimizer.zero_grad()
        loss = self._weighted_loss(batch)
        loss.backward()
        self.clipper.clip(self.optimizer.parameters)
        self.optimizer.step()
        return loss.item()

    def _weighted_loss(self, batch: Batch):
        logits = self.model(batch)
        return F.cross_entropy(logits, batch.labels, weights=self._weights[batch.indices])
