"""Graceful shutdown for training runs: snapshot on SIGTERM/SIGINT.

Long training runs live on preemptible machines: the scheduler sends
``SIGTERM``, an operator presses Ctrl-C, the batch system reaps the job.
Python's default response — a ``KeyboardInterrupt`` mid-GEMM or an abrupt
exit — strands the run wherever it happened to be, and the resume story of
:meth:`repro.core.Trainer.snapshot` only helps if a snapshot was recently
written.

:func:`trap_termination` converts those signals into a *cooperative* stop:
the handler only sets a flag, the training loop checks it at the next batch
boundary (a clean point: no half-applied optimiser update, no partially
consumed RNG stream), writes a final snapshot through the existing
``snapshot()`` path, and raises :class:`TrainingInterrupted` naming the
snapshot to resume from.  A second signal while the first is being honoured
falls through to the previous handler (normally: die now) — the operator
keeps an escalation path.

Signal handlers can only be installed from the main thread; elsewhere the
trap degrades to an inert object that never trips, and the signals keep
their previous behaviour.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator


class TrainingInterrupted(RuntimeError):
    """Raised at a batch boundary after a termination signal was trapped.

    ``snapshot_path`` names the final snapshot (``None`` when the trainer
    has no ``snapshot_path`` configured), ``signal_name`` the signal that
    stopped the run.
    """

    def __init__(self, signal_name: str, snapshot_path: str | None):
        self.signal_name = signal_name
        self.snapshot_path = snapshot_path
        if snapshot_path:
            hint = (f"a final snapshot was written to '{snapshot_path}' — "
                    "resume with trainer.resume(path)")
        else:
            hint = ("no snapshot_path is configured, so nothing was saved; "
                    "set TrainerConfig.snapshot_path to make runs resumable")
        super().__init__(f"training interrupted by {signal_name}; {hint}")


class TerminationTrap:
    """Flag set by the signal handler, polled by the training loop."""

    __slots__ = ("_signum",)

    def __init__(self):
        self._signum: int | None = None

    @property
    def tripped(self) -> bool:
        return self._signum is not None

    @property
    def signal_name(self) -> str:
        if self._signum is None:
            return ""
        try:
            return signal.Signals(self._signum).name
        except ValueError:  # pragma: no cover - exotic signal number
            return f"signal {self._signum}"

    def trip(self, signum: int) -> None:
        self._signum = signum


@contextmanager
def trap_termination(
        signals: tuple = (signal.SIGTERM, signal.SIGINT),
        enabled: bool = True) -> Iterator[TerminationTrap]:
    """Trap ``signals`` for the duration of the block; yields the trap.

    The first delivery of a trapped signal sets the flag and returns — the
    loop decides when to stop.  A second delivery is forwarded to the
    previously installed handler, so repeated Ctrl-C still kills a loop
    that is too slow to honour the first.  Previous handlers are restored
    on exit no matter how the block ends.
    """
    trap = TerminationTrap()
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield trap
        return
    previous: dict[int, object] = {}

    def handler(signum, frame):
        if trap.tripped:
            old = previous.get(signum)
            if callable(old):
                old(signum, frame)
            elif old == signal.SIG_DFL:
                # Restore and re-deliver: the default action (terminate) runs.
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)
            return
        trap.trip(signum)

    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, handler)
    except (ValueError, OSError):  # pragma: no cover - unsupported platform
        for signum, old in previous.items():
            signal.signal(signum, old)
        yield trap
        return
    try:
        yield trap
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
