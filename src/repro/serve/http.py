"""Stdlib-only asyncio HTTP front-end over :class:`repro.serve.Server`.

One deliberately small HTTP/1.1 endpoint — no framework, no dependency —
so a pipeline artifact can serve raw-text requests over a socket with
nothing but the standard library:

* ``POST /predict`` — body ``{"text": "..."}`` (one item) or
  ``{"texts": [...], "domains": [...], "deadline_ms": 50}`` (a batch).
  Single-item responses carry the prediction dict; batch responses carry
  ``{"predictions": [...]}`` with per-item errors isolated in their slot.
* ``GET /health`` — :meth:`Server.health` (``200`` while the pool can still
  serve, ``503`` once the server has failed or stopped).
* ``GET /stats`` — the :class:`repro.serve.ServeStats` snapshot.

Status mapping for ``POST /predict``: structurally invalid requests are
``400``; a queue at its high-water mark is ``503`` with a ``Retry-After``
hint (the backpressure contract made visible to HTTP clients); scoring
failures are ``200`` with the error in the prediction body, because the
request itself was well-formed and accepted.

Connections are ``Connection: close`` — one request per connection keeps
the parser honest and is plenty for the load levels one artifact serves.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.server import Server, ServerOverloaded

_MAX_HEADER_BYTES = 16_384
_MAX_BODY_BYTES = 8_000_000


class HttpFrontend:
    """Bind :class:`Server` to a TCP port (``port=0`` picks a free one)."""

    def __init__(self, server: Server, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = port
        self._asyncio_server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        """Start listening; returns the bound port."""
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None

    async def serve_forever(self) -> None:
        if self._asyncio_server is None:
            await self.start()
        await self._asyncio_server.serve_forever()

    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception as error:  # noqa: BLE001 - one bad request, one 500
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                + ("Retry-After: 1\r\n" if status == 503 else "")
                + "Connection: close\r\n\r\n")
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request"}
        if len(head) > _MAX_HEADER_BYTES:
            return 400, {"error": "request headers too large"}
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                return 400, {"error": "invalid Content-Length"}
            if length > _MAX_BODY_BYTES:
                return 400, {"error": f"body of {length} bytes over the "
                                      f"{_MAX_BODY_BYTES}-byte limit"}
            body = await reader.readexactly(length)

        if path == "/health":
            if method != "GET":
                return 405, {"error": "use GET for /health"}
            report = self.server.health()
            code = 200 if report["status"] in ("ok", "degraded") else 503
            return code, report
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET for /stats"}
            return 200, self.server.stats.snapshot()
        if path == "/predict":
            if method != "POST":
                return 405, {"error": "use POST for /predict"}
            return await self._predict(body)
        return 404, {"error": f"no route for {path}; available: "
                              "POST /predict, GET /health, GET /stats"}

    async def _predict(self, body: bytes):
        try:
            request = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        if not isinstance(request, dict):
            return 400, {"error": "request body must be a JSON object"}
        deadline_ms = request.get("deadline_ms")
        if "text" in request:
            try:
                prediction = await self.server.submit(
                    request["text"], domain=request.get("domain"),
                    deadline_ms=deadline_ms)
            except ServerOverloaded as error:
                return 503, {"error": str(error)}
            except (ValueError, KeyError) as error:
                return 400, {"error": str(error)}
            except RuntimeError as error:  # server stopped/failed
                return 503, {"error": str(error)}
            return 200, prediction.as_dict()
        if "texts" in request:
            texts = request["texts"]
            if not isinstance(texts, list):
                return 400, {"error": "'texts' must be a list of strings"}
            try:
                predictions = await self.server.submit_many(
                    texts, domains=request.get("domains"),
                    deadline_ms=deadline_ms)
            except ValueError as error:  # mismatched domains length
                return 400, {"error": str(error)}
            return 200, {"predictions": [p.as_dict() for p in predictions]}
        return 400, {"error": "request must carry 'text' or 'texts'"}
