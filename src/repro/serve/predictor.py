"""Raw-text inference front-end over a :class:`repro.serve.Pipeline`.

The :class:`Predictor` closes the gap between "I have a string" and
``FakeNewsDetector.predict``: it tokenises, encodes and pads exactly like the
training-time :class:`repro.data.DataLoader` (the shared implementation is
:func:`repro.data.encode_texts` — parity is pinned by
``tests/serve/test_predictor.py``), recomputes the pipeline's feature
channels (frozen-encoder ``plm``, handcrafted ``style`` / ``emotion``) and
runs the model under ``no_grad`` with fused kernels in the pipeline's dtype.

Padding defaults to the pipeline's training ``max_length`` so serving is
bit-identical to training-time encoding.  ``bucket_size`` opts into
length-bucketed padding: each batch is padded only to the next bucket
boundary past its longest text, which shrinks the time axis for short-text
traffic.  Models whose outputs depend on the padded region (e.g. recurrent
encoders with ``mask_padding=False`` consume pad embeddings in the backward
direction) can shift slightly under bucketing, which is why it is opt-in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import FAKE_LABEL, LABEL_NAMES, encode_texts
from repro.data.loader import Batch
from repro.data.tokenizer import WhitespaceTokenizer
from repro.encoders.features import emotion_features_batch, style_features_batch
from repro.serve.microbatch import MicroBatcher
from repro.serve.pipeline import Pipeline, PipelineError
from repro.tensor import default_dtype, fused_kernels


@dataclass
class Prediction:
    """One model verdict on one raw-text news item."""

    label: int
    label_name: str
    probability_fake: float
    probabilities: tuple[float, ...]
    domain: str
    latency_ms: float

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "label_name": self.label_name,
            "probability_fake": self.probability_fake,
            "probabilities": list(self.probabilities),
            "domain": self.domain,
            "latency_ms": self.latency_ms,
        }


class Predictor:
    """Batched raw-text inference with training-identical encoding.

    Parameters
    ----------
    pipeline:
        The bundle to serve.
    default_domain:
        Domain (index or name) assumed for requests that do not specify one;
        multi-domain detectors condition on it (e.g. the MDFEND domain gate).
    bucket_size:
        ``None`` (default) pads every batch to the pipeline's training
        ``max_length`` — bit-identical to the training encode.  An integer
        enables length-bucketed padding in multiples of ``bucket_size``
        (capped at ``max_length``); keep it above the largest convolution
        kernel of the served model.
    use_fused:
        Run forwards with the fused single-node kernels (the fast path).
        Disable only to cross-check against the composed reference kernels.
    """

    def __init__(self, pipeline: Pipeline, default_domain: int | str | None = 0,
                 bucket_size: int | None = None, use_fused: bool = True):
        self.pipeline = pipeline
        self.default_domain = 0  # placeholder so _domain_index(None) resolves
        self.default_domain = self._domain_index(default_domain)
        if bucket_size is not None and bucket_size < 1:
            raise ValueError("bucket_size must be a positive integer or None")
        self.bucket_size = bucket_size
        self.use_fused = use_fused
        self._channel_names = self._resolve_channels(pipeline)
        pipeline.model.eval()

    # ------------------------------------------------------------------ #
    # Encoding (training-parity path)                                      #
    # ------------------------------------------------------------------ #
    #: batched token-feature functions behind the handcrafted channels; both
    #: read default-whitespace tokens of the raw text, exactly like the
    #: training extractors in :mod:`repro.encoders.features`
    _TOKEN_CHANNELS = {"style": style_features_batch, "emotion": emotion_features_batch}

    @staticmethod
    def _resolve_channels(pipeline: Pipeline) -> tuple[str, ...]:
        known = ("plm", *Predictor._TOKEN_CHANNELS)
        unknown = [name for name in pipeline.feature_channels if name not in known]
        if unknown:
            raise PipelineError(
                f"pipeline requires feature channels {unknown} that the serving "
                f"path cannot recompute from raw text; supported: {sorted(known)}")
        return tuple(pipeline.feature_channels)

    def _domain_index(self, domain: int | str | None) -> int:
        if domain is None:
            return self.default_domain
        if isinstance(domain, str):
            try:
                index = self.pipeline.domain_names.index(domain)
            except ValueError:
                raise KeyError(
                    f"unknown domain '{domain}'; pipeline domains: "
                    f"{self.pipeline.domain_names}") from None
        else:
            index = int(domain)
        if not 0 <= index < self.pipeline.model_config.num_domains:
            raise KeyError(
                f"domain index {index} outside the model's "
                f"{self.pipeline.model_config.num_domains} domains")
        return index

    def _resolve_domains(self, domains, count: int) -> np.ndarray:
        if domains is None:
            return np.full(count, self.default_domain, dtype=np.int64)
        if isinstance(domains, (int, str)):
            return np.full(count, self._domain_index(domains), dtype=np.int64)
        if len(domains) != count:
            raise ValueError(f"{len(domains)} domains given for {count} texts")
        return np.array([self._domain_index(domain) for domain in domains],
                        dtype=np.int64)

    def _padded_length(self, mask: np.ndarray) -> int:
        if self.bucket_size is None:
            return self.pipeline.max_length
        longest = int(mask.sum(axis=1).max()) if mask.size else 1
        buckets = -(-max(longest, 1) // self.bucket_size)  # ceil division
        return min(self.pipeline.max_length, buckets * self.bucket_size)

    def encode_batch(self, texts: Sequence[str], domains=None) -> Batch:
        """Encode raw ``texts`` into the :class:`repro.data.Batch` the model eats.

        Mirrors :class:`repro.data.DataLoader` exactly: shared
        :func:`repro.data.encode_texts` truncation+padding, mask cast to the
        pipeline dtype *before* feature extraction, every floating channel
        cast to the pipeline dtype after extraction.  The handcrafted
        ``style``/``emotion`` channels both read default-whitespace tokens of
        the *untruncated* raw text (like the training extractors), so one
        tokenisation pass feeds both.
        """
        if not texts:
            raise ValueError("encode_batch needs at least one text")
        pipeline = self.pipeline
        domain_ids = self._resolve_domains(domains, len(texts))
        token_ids, mask = encode_texts(texts, pipeline.vocab, pipeline.max_length,
                                       tokenizer=pipeline.tokenizer)
        padded = self._padded_length(mask)
        if padded < pipeline.max_length:
            token_ids = token_ids[:, :padded]
            mask = mask[:, :padded]
        compute_dtype = np.dtype(pipeline.dtype)
        mask = mask.astype(compute_dtype, copy=False)
        features = {}
        token_lists = None
        for name in self._channel_names:
            if name == "plm":
                values = pipeline.encoder.encode(token_ids, mask)
            else:
                if token_lists is None:
                    tokenize = WhitespaceTokenizer()
                    token_lists = [tokenize(text) for text in texts]
                values = self._TOKEN_CHANNELS[name](token_lists)
            features[name] = values.astype(compute_dtype, copy=False)
        return Batch(
            token_ids=token_ids,
            mask=mask,
            labels=np.zeros(len(texts), dtype=np.int64),
            domains=domain_ids,
            indices=np.arange(len(texts)),
            features=features,
        )

    # ------------------------------------------------------------------ #
    # Inference                                                            #
    # ------------------------------------------------------------------ #
    def predict_proba(self, texts: Sequence[str], domains=None) -> np.ndarray:
        """Class probabilities ``(len(texts), num_classes)`` for raw texts."""
        if not texts:
            return np.zeros((0, self.pipeline.model_config.num_classes),
                            dtype=np.dtype(self.pipeline.dtype))
        with default_dtype(self.pipeline.dtype), fused_kernels(self.use_fused):
            batch = self.encode_batch(texts, domains=domains)
            return self.pipeline.model.predict_proba(batch)

    def predict(self, texts: Sequence[str], domains=None) -> list[Prediction]:
        """Score a batch of raw texts; one :class:`Prediction` per input.

        ``latency_ms`` is the wall-clock time of the whole batch call — for a
        per-request queueing latency use :meth:`microbatch`.
        """
        if not texts:
            return []
        start = time.perf_counter()
        with default_dtype(self.pipeline.dtype), fused_kernels(self.use_fused):
            batch = self.encode_batch(texts, domains=domains)
            probabilities = self.pipeline.model.predict_proba(batch)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        return self._package(batch, probabilities, [elapsed_ms] * len(texts))

    def predict_iter(self, texts: Iterable[str], domains=None,
                     batch_size: int = 64) -> Iterator[Prediction]:
        """Stream predictions over an arbitrarily large corpus of texts.

        Consumes ``texts`` lazily in chunks of ``batch_size``, so scoring a
        generator over a multi-million-item corpus never materialises more
        than one chunk.  ``domains`` may be ``None``, a single domain applied
        to every text, or an iterable parallel to ``texts``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        broadcast = domains is None or isinstance(domains, (int, str))
        domain_iter = None if broadcast else iter(domains)
        chunk: list[str] = []
        chunk_domains: list = []
        for text in texts:
            chunk.append(text)
            if not broadcast:
                try:
                    chunk_domains.append(next(domain_iter))
                except StopIteration:
                    raise ValueError("domains iterable shorter than texts") from None
            if len(chunk) >= batch_size:
                yield from self.predict(chunk, domains=domains if broadcast else chunk_domains)
                chunk, chunk_domains = [], []
        if chunk:
            yield from self.predict(chunk, domains=domains if broadcast else chunk_domains)

    def microbatch(self, max_batch: int = 32,
                   max_latency_ms: float = 10.0) -> MicroBatcher:
        """A dynamic micro-batching queue over this predictor.

        Requests submitted one at a time are held until ``max_batch`` of them
        are pending or the oldest has waited ``max_latency_ms``, then scored
        as one full-width batch — amortising per-call overhead across
        requests (see ``benchmarks/perf/test_perf_inference.py``).
        """
        return MicroBatcher(self, max_batch=max_batch, max_latency_ms=max_latency_ms)

    # ------------------------------------------------------------------ #
    def _package(self, batch: Batch, probabilities: np.ndarray,
                 latencies_ms: Sequence[float]) -> list[Prediction]:
        labels = probabilities.argmax(axis=1)
        return [
            Prediction(
                label=int(labels[row]),
                label_name=LABEL_NAMES[int(labels[row])],
                probability_fake=float(probabilities[row, FAKE_LABEL]),
                probabilities=tuple(float(p) for p in probabilities[row]),
                domain=self.pipeline.domain_names[int(batch.domains[row])],
                latency_ms=float(latencies_ms[row]),
            )
            for row in range(probabilities.shape[0])
        ]
