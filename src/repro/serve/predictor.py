"""Raw-text inference front-end over a :class:`repro.serve.Pipeline`.

The :class:`Predictor` closes the gap between "I have a string" and
``FakeNewsDetector.predict``: it tokenises, encodes and pads exactly like the
training-time :class:`repro.data.DataLoader` (the shared implementation is
:func:`repro.data.encode_texts` — parity is pinned by
``tests/serve/test_predictor.py``), recomputes the pipeline's feature
channels (frozen-encoder ``plm``, handcrafted ``style`` / ``emotion``) and
runs the model under ``no_grad`` with fused kernels in the pipeline's dtype.

Padding defaults to the pipeline's training ``max_length`` so serving is
bit-identical to training-time encoding.  ``bucket_size`` opts into
length-bucketed padding: each batch is padded only to the next bucket
boundary past its longest text, which shrinks the time axis for short-text
traffic.  Models whose outputs depend on the padded region (e.g. recurrent
encoders with ``mask_padding=False`` consume pad embeddings in the backward
direction) can shift slightly under bucketing, which is why it is opt-in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.dataset import FAKE_LABEL, LABEL_NAMES, encode_texts
from repro.data.loader import Batch
from repro.encoders.channels import ServeRequest
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy
from repro.serve.microbatch import MicroBatcher
from repro.serve.pipeline import Pipeline, verify_pipeline
from repro.tensor import default_dtype, fused_kernels


@dataclass
class Prediction:
    """One model verdict on one raw-text news item.

    A failed item (invalid input, or an item isolated by
    :meth:`Predictor.predict_safe`) carries its diagnostic in ``error``; all
    scoring fields are sentinel values then (``label=-1``, NaN probability).
    Check ``ok`` before consuming the scores.
    """

    label: int
    label_name: str
    probability_fake: float
    probabilities: tuple[float, ...]
    domain: str
    latency_ms: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def failure(cls, error: str, domain: str = "",
                latency_ms: float = 0.0) -> "Prediction":
        return cls(label=-1, label_name="error", probability_fake=float("nan"),
                   probabilities=(), domain=domain, latency_ms=latency_ms,
                   error=error)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "label_name": self.label_name,
            "probability_fake": self.probability_fake,
            "probabilities": list(self.probabilities),
            "domain": self.domain,
            "latency_ms": self.latency_ms,
            "error": self.error,
        }


class Predictor:
    """Batched raw-text inference with training-identical encoding.

    Parameters
    ----------
    pipeline:
        The bundle to serve.
    default_domain:
        Domain (index or name) assumed for requests that do not specify one;
        multi-domain detectors condition on it (e.g. the MDFEND domain gate).
    bucket_size:
        ``None`` (default) pads every batch to the pipeline's training
        ``max_length`` — bit-identical to the training encode.  An integer
        enables length-bucketed padding in multiples of ``bucket_size``
        (capped at ``max_length``); keep it above the largest convolution
        kernel of the served model.
    use_fused:
        Run forwards with the fused single-node kernels (the fast path).
        Disable only to cross-check against the composed reference kernels.
    """

    def __init__(self, pipeline: Pipeline, default_domain: int | str | None = 0,
                 bucket_size: int | None = None, use_fused: bool = True,
                 max_text_chars: int = 100_000,
                 encoder_retry: RetryPolicy | None = None,
                 encoder_breaker: "CircuitBreaker | None" = None):
        self.pipeline = pipeline
        self.default_domain = 0  # placeholder so _domain_index(None) resolves
        self.default_domain = self._domain_index(default_domain)
        if bucket_size is not None and bucket_size < 1:
            raise ValueError("bucket_size must be a positive integer or None")
        if max_text_chars < 1:
            raise ValueError("max_text_chars must be positive")
        self.bucket_size = bucket_size
        self.use_fused = use_fused
        self.max_text_chars = max_text_chars
        # Frozen-encoder calls go through a short transient-error retry; the
        # in-process stand-in never needs it, but remote encoder backends and
        # the chaos suite exercise the path.  An optional circuit breaker
        # wraps the *retried* call, so a persistently failing backend trips
        # after `failure_threshold` exhausted retry rounds and degrades to
        # fast CircuitOpen rejections instead of deadline-burning retries
        # (the serving worker pool installs one per worker).  Both policies
        # are kept so a hot :meth:`reload` can re-wrap the new backend.
        self._encoder_retry = (encoder_retry
                               or RetryPolicy(attempts=2, base_delay_s=0.01,
                                              max_delay_s=0.05))
        self.encoder_breaker = encoder_breaker
        self.served_by_domain: dict[str, int] = {}
        self.reloads = 0
        self.last_reload_fingerprint: str | None = None
        self._bind_pipeline(pipeline)

    def _bind_pipeline(self, pipeline: Pipeline) -> None:
        """Point this predictor at ``pipeline`` (construction and hot reload)."""
        self.pipeline = pipeline
        encode = self._encoder_retry.wrap(pipeline.encoder.encode)
        if self.encoder_breaker is not None:
            encode = self.encoder_breaker.wrap(encode)
        self._encode_plm = encode
        # Resolve the channel objects once: pipelines carrying explicit
        # channels (custom or rebuilt from manifest specs) serve those;
        # legacy names-only pipelines get the stock channels, and any
        # unservable name raises PipelineError here, at construction.
        self._channels = pipeline.resolve_channels()
        pipeline.model.eval()

    def reload(self, source: "Pipeline | str") -> str:
        """Hot-swap the served pipeline; returns the new artifact fingerprint.

        ``source`` is either a directory written by
        :func:`repro.serve.save_pipeline` (loaded with full checksum
        verification — a corrupt artifact raises and the predictor keeps
        serving the old weights) or an in-memory :class:`Pipeline`.  The swap
        re-wraps the encoder retry/breaker policies around the new backend
        and re-resolves the feature channels; the default domain must still
        exist in the new pipeline.  Domain growth is allowed (continual
        onboarding re-exports with more domains); the per-domain served
        counters carry across reloads.
        """
        if isinstance(source, Pipeline):
            pipeline = source
        else:
            from repro.serve.pipeline import load_pipeline

            pipeline = load_pipeline(source)
        if self.default_domain >= pipeline.model_config.num_domains:
            raise KeyError(
                f"default domain {self.default_domain} does not exist in the "
                f"new pipeline ({pipeline.model_config.num_domains} domains)")
        self._bind_pipeline(pipeline)
        self.reloads += 1
        self.last_reload_fingerprint = pipeline.fingerprint()
        return self.last_reload_fingerprint

    # ------------------------------------------------------------------ #
    # Encoding (training-parity path)                                      #
    # ------------------------------------------------------------------ #
    def _domain_index(self, domain: int | str | None) -> int:
        if domain is None:
            return self.default_domain
        if isinstance(domain, str):
            try:
                index = self.pipeline.domain_names.index(domain)
            except ValueError:
                raise KeyError(
                    f"unknown domain '{domain}'; pipeline domains: "
                    f"{self.pipeline.domain_names}") from None
        else:
            index = int(domain)
        if not 0 <= index < self.pipeline.model_config.num_domains:
            raise KeyError(
                f"domain index {index} outside the model's "
                f"{self.pipeline.model_config.num_domains} domains")
        return index

    def _resolve_domains(self, domains, count: int) -> np.ndarray:
        if domains is None:
            return np.full(count, self.default_domain, dtype=np.int64)
        if isinstance(domains, (int, str)):
            return np.full(count, self._domain_index(domains), dtype=np.int64)
        if len(domains) != count:
            raise ValueError(f"{len(domains)} domains given for {count} texts")
        return np.array([self._domain_index(domain) for domain in domains],
                        dtype=np.int64)

    def _padded_length(self, mask: np.ndarray) -> int:
        if self.bucket_size is None:
            return self.pipeline.max_length
        longest = int(mask.sum(axis=1).max()) if mask.size else 1
        buckets = -(-max(longest, 1) // self.bucket_size)  # ceil division
        return min(self.pipeline.max_length, buckets * self.bucket_size)

    def encode_batch(self, texts: Sequence[str], domains=None) -> Batch:
        """Encode raw ``texts`` into the :class:`repro.data.Batch` the model eats.

        Mirrors :class:`repro.data.DataLoader` exactly: shared
        :func:`repro.data.encode_texts` truncation+padding, mask cast to the
        pipeline dtype *before* feature extraction, every floating channel
        cast to the pipeline dtype after extraction.  Channels recompute
        through their :meth:`~repro.encoders.FeatureChannel.serve` hooks over
        one shared :class:`~repro.encoders.ServeRequest` — the handcrafted
        ``style``/``emotion`` channels read its lazily tokenised
        *untruncated* raw texts (like the training extractors), so one
        tokenisation pass feeds both, and the ``plm`` channel goes through
        the predictor's retry/circuit-wrapped encoder backend.
        """
        if not texts:
            raise ValueError("encode_batch needs at least one text")
        fault_point("serve.encode", texts=texts)
        pipeline = self.pipeline
        domain_ids = self._resolve_domains(domains, len(texts))
        token_ids, mask = encode_texts(texts, pipeline.vocab, pipeline.max_length,
                                       tokenizer=pipeline.tokenizer)
        padded = self._padded_length(mask)
        if padded < pipeline.max_length:
            token_ids = token_ids[:, :padded]
            mask = mask[:, :padded]
        compute_dtype = np.dtype(pipeline.dtype)
        mask = mask.astype(compute_dtype, copy=False)
        request = ServeRequest(texts, token_ids, mask,
                               encode_plm=self._encode_plm)
        features = {}
        for channel in self._channels:
            values = np.asarray(channel.serve(request))
            features[channel.name] = values.astype(compute_dtype, copy=False)
        return Batch(
            token_ids=token_ids,
            mask=mask,
            labels=np.zeros(len(texts), dtype=np.int64),
            domains=domain_ids,
            indices=np.arange(len(texts)),
            features=features,
        )

    # ------------------------------------------------------------------ #
    # Inference                                                            #
    # ------------------------------------------------------------------ #
    def predict_proba(self, texts: Sequence[str], domains=None) -> np.ndarray:
        """Class probabilities ``(len(texts), num_classes)`` for raw texts."""
        if not texts:
            return np.zeros((0, self.pipeline.model_config.num_classes),
                            dtype=np.dtype(self.pipeline.dtype))
        with default_dtype(self.pipeline.dtype), fused_kernels(self.use_fused):
            batch = self.encode_batch(texts, domains=domains)
            return self.pipeline.model.predict_proba(batch)

    def predict(self, texts: Sequence[str], domains=None) -> list[Prediction]:
        """Score a batch of raw texts; one :class:`Prediction` per input.

        ``latency_ms`` is the wall-clock time of the whole batch call — for a
        per-request queueing latency use :meth:`microbatch`.
        """
        if not texts:
            return []
        start = time.perf_counter()
        with default_dtype(self.pipeline.dtype), fused_kernels(self.use_fused):
            batch = self.encode_batch(texts, domains=domains)
            probabilities = self.pipeline.model.predict_proba(batch)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        return self._package(batch, probabilities, [elapsed_ms] * len(texts))

    # ------------------------------------------------------------------ #
    # Graceful degradation                                                 #
    # ------------------------------------------------------------------ #
    def validate_text(self, text) -> str | None:
        """Why ``text`` is not servable, or ``None`` when it is.

        Checks are structural (type, emptiness, size cap) — the strict
        :meth:`predict` path skips them, the safe path and
        :class:`MicroBatcher.submit` apply them up front so malformed
        requests fail in their own call with a readable reason.
        """
        if not isinstance(text, str):
            return f"text must be a string, got {type(text).__name__}"
        if not text.strip():
            return "text is empty"
        if len(text) > self.max_text_chars:
            return (f"text has {len(text)} characters, over the "
                    f"{self.max_text_chars}-character limit")
        return None

    def _safe_domain(self, domain) -> tuple[int, str | None]:
        """Resolve one request's domain; returns ``(index, error)``."""
        try:
            return self._domain_index(domain), None
        except (KeyError, ValueError, TypeError) as error:
            return self.default_domain, str(error)

    def _locate_failures(self, texts: list[str], domains: list[int],
                         errors: dict[int, str]) -> None:
        """Bisect a failing batch down to the individual offending items.

        Probes sub-batches through the strict :meth:`predict` path and
        records each size-1 failure in ``errors``; probe *results* are
        discarded (sub-batch shapes differ from the final full-shape run, so
        they are not bit-comparable).
        """
        if len(texts) == 1:
            try:
                self.predict(texts, domains=domains)
            except Exception as error:  # noqa: BLE001 - recorded, not dropped
                errors[0] = f"{type(error).__name__}: {error}"
            return
        middle = len(texts) // 2
        for offset, (chunk, chunk_domains) in enumerate(
                [(texts[:middle], domains[:middle]),
                 (texts[middle:], domains[middle:])]):
            try:
                self.predict(chunk, domains=chunk_domains)
            except Exception:  # noqa: BLE001 - bisected further
                chunk_errors: dict[int, str] = {}
                self._locate_failures(chunk, chunk_domains, chunk_errors)
                base = 0 if offset == 0 else middle
                errors.update({base + i: msg for i, msg in chunk_errors.items()})

    def predict_safe(self, texts: Sequence[str], domains=None) -> list[Prediction]:
        """Score a batch, isolating per-item failures instead of failing it.

        Invalid inputs (non-string, empty, oversized, unknown domain) and
        items whose encode/forward raises are returned as error
        :class:`Prediction`\\ s; every other item is scored normally.  The
        surviving items are re-run *at the original batch shape* — failed
        rows are substituted with a valid donor text and their rows discarded
        — so their probabilities are bit-identical to a fully-clean batch of
        the same requests (row independence of the batched forward).

        Raises only when the failure is systemic: the batch fails as a whole
        but every item succeeds alone (a batch-level fault), or *every* item
        fails (indistinguishable from an engine outage — isolation is only
        meaningful when part of the batch can still be served).
        """
        texts = list(texts)
        if not texts:
            return []
        start = time.perf_counter()
        resolved = self._resolve_safe_domains(domains, len(texts))
        errors: dict[int, str] = {}
        for index, text in enumerate(texts):
            problem = self.validate_text(text)
            if problem is not None:
                errors[index] = problem
            elif resolved[index][1] is not None:
                errors[index] = resolved[index][1]
        domain_ids = [index for index, _ in resolved]

        def run(candidate_texts: list[str]) -> list[Prediction]:
            predictions = self.predict(candidate_texts, domains=domain_ids)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            results = []
            for index, prediction in enumerate(predictions):
                if index in errors:
                    results.append(self._failure_for(index, errors, domain_ids,
                                                     elapsed_ms))
                else:
                    prediction.latency_ms = elapsed_ms
                    results.append(prediction)
            return results

        donor = next((texts[i] for i in range(len(texts)) if i not in errors), None)
        if donor is None:
            elapsed_ms = (time.perf_counter() - start) * 1e3
            return [self._failure_for(index, errors, domain_ids, elapsed_ms)
                    for index in range(len(texts))]
        substituted = [donor if index in errors else text
                       for index, text in enumerate(texts)]
        try:
            return run(substituted)
        except Exception:  # noqa: BLE001 - bisected below
            before = len(errors)
            self._locate_failures(substituted, domain_ids, errors)
            if len(errors) == before or len(errors) == len(texts):
                raise  # batch-level fault or total outage: nothing to isolate
            # Re-pick the donor: the original one may itself have failed.
            donor = next(texts[i] for i in range(len(texts)) if i not in errors)
            substituted = [donor if index in errors else text
                           for index, text in enumerate(texts)]
            return run(substituted)

    def _resolve_safe_domains(self, domains, count: int) -> list[tuple[int, str | None]]:
        if domains is None or isinstance(domains, (int, str)):
            resolved = self._safe_domain(domains)
            return [resolved] * count
        if len(domains) != count:
            raise ValueError(f"{len(domains)} domains given for {count} texts")
        return [self._safe_domain(domain) for domain in domains]

    def _failure_for(self, index: int, errors: dict[int, str],
                     domain_ids: list[int], elapsed_ms: float) -> Prediction:
        return Prediction.failure(
            errors[index],
            domain=self.pipeline.domain_names[domain_ids[index]],
            latency_ms=elapsed_ms)

    def health(self) -> dict:
        """A structured liveness report for this predictor.

        ``status`` is ``"ok"`` when every check passes and ``"degraded"``
        otherwise; each check reports ``"ok"`` or its failure reason.  The
        artifact check re-verifies the pipeline directory's checksums (only
        for pipelines loaded from disk), the inference check round-trips one
        probe text through the full encode+forward path.
        """
        checks: dict[str, str] = {}
        if self.pipeline.source_path is not None:
            try:
                verify_pipeline(self.pipeline.source_path)
                checks["artifact"] = "ok"
            except Exception as error:  # noqa: BLE001 - reported, not raised
                checks["artifact"] = str(error)
        try:
            probabilities = self.predict_proba(["health probe"])
            if not np.all(np.isfinite(probabilities)):
                checks["inference"] = "probe produced non-finite probabilities"
            else:
                checks["inference"] = "ok"
        except Exception as error:  # noqa: BLE001 - reported, not raised
            checks["inference"] = f"{type(error).__name__}: {error}"
        if self.encoder_breaker is not None:
            circuit = self.encoder_breaker.snapshot()
            checks["encoder_circuit"] = ("ok" if circuit["state"] == "closed"
                                         else f"circuit {circuit['state']}")
        return {
            "status": ("ok" if all(value == "ok" for value in checks.values())
                       else "degraded"),
            "model": self.pipeline.model_name,
            "dtype": self.pipeline.dtype,
            "max_length": self.pipeline.max_length,
            "domains": list(self.pipeline.domain_names),
            "source_path": self.pipeline.source_path,
            "encoder_backend": self.backend_state(),
            "artifact_fingerprint": self.pipeline.fingerprint(),
            "reloads": self.reloads,
            "last_reload_fingerprint": self.last_reload_fingerprint,
            "served_by_domain": dict(self.served_by_domain),
            "checks": checks,
        }

    def backend_state(self) -> dict:
        """Live state of the pipeline's encoder backend.

        Kind, spec fingerprint and backend-specific counters (cache hit rate,
        RPC rounds, transport circuit state...), plus the predictor-level
        encoder circuit when one is installed — the block ``/health`` and
        ``/stats`` surface per replica.
        """
        state = self.pipeline.encoder.state()
        if self.encoder_breaker is not None:
            state["predictor_circuit"] = self.encoder_breaker.snapshot()["state"]
        return state

    def predict_iter(self, texts: Iterable[str], domains=None,
                     batch_size: int = 64) -> Iterator[Prediction]:
        """Stream predictions over an arbitrarily large corpus of texts.

        Consumes ``texts`` lazily in chunks of ``batch_size``, so scoring a
        generator over a multi-million-item corpus never materialises more
        than one chunk.  ``domains`` may be ``None``, a single domain applied
        to every text, or an iterable parallel to ``texts``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        broadcast = domains is None or isinstance(domains, (int, str))
        domain_iter = None if broadcast else iter(domains)
        chunk: list[str] = []
        chunk_domains: list = []
        for text in texts:
            chunk.append(text)
            if not broadcast:
                try:
                    chunk_domains.append(next(domain_iter))
                except StopIteration:
                    raise ValueError("domains iterable shorter than texts") from None
            if len(chunk) >= batch_size:
                yield from self.predict(chunk, domains=domains if broadcast else chunk_domains)
                chunk, chunk_domains = [], []
        if chunk:
            yield from self.predict(chunk, domains=domains if broadcast else chunk_domains)

    def microbatch(self, max_batch: int = 32,
                   max_latency_ms: float = 10.0) -> MicroBatcher:
        """A dynamic micro-batching queue over this predictor.

        Requests submitted one at a time are held until ``max_batch`` of them
        are pending or the oldest has waited ``max_latency_ms``, then scored
        as one full-width batch — amortising per-call overhead across
        requests (see ``benchmarks/perf/test_perf_inference.py``).
        """
        return MicroBatcher(self, max_batch=max_batch, max_latency_ms=max_latency_ms)

    # ------------------------------------------------------------------ #
    def _package(self, batch: Batch, probabilities: np.ndarray,
                 latencies_ms: Sequence[float]) -> list[Prediction]:
        labels = probabilities.argmax(axis=1)
        predictions = [
            Prediction(
                label=int(labels[row]),
                label_name=LABEL_NAMES[int(labels[row])],
                probability_fake=float(probabilities[row, FAKE_LABEL]),
                probabilities=tuple(float(p) for p in probabilities[row]),
                domain=self.pipeline.domain_names[int(batch.domains[row])],
                latency_ms=float(latencies_ms[row]),
            )
            for row in range(probabilities.shape[0])
        ]
        for prediction in predictions:
            self.served_by_domain[prediction.domain] = \
                self.served_by_domain.get(prediction.domain, 0) + 1
        return predictions
