"""Dynamic micro-batching: amortise many small requests into full batches.

Serving traffic arrives one item at a time, but the engine's throughput comes
from batched GEMMs — a 64-row forward costs far less than 64 one-row
forwards.  :class:`MicroBatcher` sits between the two: requests are
:meth:`~MicroBatcher.submit`\\ ted individually and held in a queue; the queue
is flushed through one batched :meth:`repro.serve.Predictor.predict` call as
soon as ``max_batch`` requests are pending, or as soon as the oldest pending
request has waited ``max_latency_ms`` (checked on every submit), or on
:meth:`~MicroBatcher.drain`.

The batcher is deliberately synchronous and single-threaded: flushes happen
inside ``submit``/``drain`` on the caller's thread, which keeps results
deterministic and the engine free of locking.  An async front-end (HTTP
server, worker pool) can drive one batcher per event loop; the queue
discipline — and the ≥3x throughput it buys, see
``benchmarks/perf/test_perf_inference.py`` — is the same.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.serve.stats import ServeStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.predictor import Prediction, Predictor


class Ticket:
    """Handle for one queued request; resolved when its batch is flushed."""

    __slots__ = ("text", "domain", "submitted_at", "_result")

    def __init__(self, text: str, domain):
        self.text = text
        self.domain = domain
        self.submitted_at = time.perf_counter()
        self._result: "Prediction | None" = None

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> "Prediction":
        """The prediction; raises if the ticket's batch has not flushed yet."""
        if self._result is None:
            raise RuntimeError(
                "ticket is still queued; call MicroBatcher.drain() (or submit "
                "enough requests to fill a batch) before reading results")
        return self._result


class MicroBatcher:
    """Queue single requests, score them in predictor-sized batches."""

    def __init__(self, predictor: "Predictor", max_batch: int = 32,
                 max_latency_ms: float = 10.0):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_latency_ms < 0:
            raise ValueError("max_latency_ms must be non-negative")
        self.predictor = predictor
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self._pending: list[Ticket] = []
        #: the unified queue ledger shared with :class:`repro.serve.Server`
        self.stats = ServeStats()

    # ------------------------------------------------------------------ #
    # Legacy counter views (the original MicroBatcher attributes), kept so
    # existing callers and tests read the same numbers off the shared ledger.
    @property
    def batches_flushed(self) -> int:
        return self.stats.batches

    @property
    def items_flushed(self) -> int:
        return self.stats.served + self.stats.failed

    @property
    def items_errored(self) -> int:
        """Items that resolved to an error Prediction instead of a score."""
        return self.stats.failed

    @property
    def flush_reasons(self) -> dict[str, int]:
        return self.stats.flush_reasons

    def health(self) -> dict:
        """The queue's ledger plus the predictor's own liveness report."""
        self.stats.set_encoder_backend(self.predictor.backend_state())
        report = self.predictor.health()
        self.stats.set_artifact_fingerprint(report.get("artifact_fingerprint"))
        report["queue"] = self.stats.snapshot()
        return report

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, text: str, domain=None) -> Ticket:
        """Queue one request; may flush the queue (full batch or overdue).

        The text and domain are validated immediately, so a malformed request
        fails in its own ``submit`` call instead of poisoning the batch it
        would later be flushed with.  (Items that *pass* validation but still
        fail at scoring time — e.g. an encoder fault — are isolated per
        ticket by the safe flush path, never raised at an unrelated caller.)
        """
        problem = self.predictor.validate_text(text)
        if problem is not None:
            self.stats.count("rejected")
            raise ValueError(f"invalid request: {problem}")
        try:
            domain = self.predictor._domain_index(domain)
        except KeyError:
            self.stats.count("rejected")
            raise
        if self._pending and self._overdue():
            self._flush("latency")
        ticket = Ticket(text, domain)
        self._pending.append(ticket)
        self.stats.count("submitted")
        if len(self._pending) >= self.max_batch:
            self._flush("full")
        return ticket

    def drain(self) -> None:
        """Flush whatever is pending (call when the request stream pauses)."""
        if self._pending:
            self._flush("drain")

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
            return
        # Exiting on an exception: pending tickets must not be silently lost.
        # Try to flush them; if even that fails, resolve each as an error so
        # every holder of a ticket gets a terminal answer.  The original
        # exception is never suppressed.
        try:
            self.drain()
        except BaseException as drain_error:  # noqa: BLE001 - resolved per ticket
            from repro.serve.predictor import Prediction

            stranded, self._pending = self._pending, []
            message = (f"micro-batcher context exited during "
                       f"{type(exc).__name__} and the final drain failed: "
                       f"{drain_error}")
            for ticket in stranded:
                ticket._result = Prediction.failure(message)
                self.stats.count("failed")

    # ------------------------------------------------------------------ #
    def _overdue(self) -> bool:
        waited_ms = (time.perf_counter() - self._pending[0].submitted_at) * 1e3
        return waited_ms >= self.max_latency_ms

    def _flush(self, reason: str) -> None:
        from repro.reliability.faults import fault_point

        batch, self._pending = self._pending, []
        try:
            fault_point("serve.flush", size=len(batch), reason=reason)
            predictions = self.predictor.predict_safe(
                [ticket.text for ticket in batch],
                domains=[ticket.domain for ticket in batch])
        except BaseException:
            # Systemic failure (every item fails alone too, or the flush was
            # interrupted): put the batch back so no ticket is ever lost.
            self._pending = batch + self._pending
            raise
        finished = time.perf_counter()
        for ticket, prediction in zip(batch, predictions):
            prediction.latency_ms = (finished - ticket.submitted_at) * 1e3
            ticket._result = prediction
            self.stats.record_outcome(prediction.error is None)
            if prediction.error is None:
                self.stats.record_domain(prediction.domain)
        self.stats.record_flush(reason, len(batch))
