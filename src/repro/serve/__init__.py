"""``repro.serve`` — the consumer-facing inference pipeline API.

The training stack produces a :class:`repro.models.FakeNewsDetector` plus a
constellation of training-time state (vocabulary, tokenizer, frozen encoder,
model config, dtype policy).  This subpackage bundles all of it into ONE
servable artifact and answers "is this news item fake?" from raw text:

* :class:`Pipeline` — model + vocab + tokenizer + frozen-encoder spec +
  :class:`repro.models.ModelConfig` + engine dtype, with
  :func:`save_pipeline` / :func:`load_pipeline` persisting the whole bundle
  as one directory (``manifest.json`` + ``weights.npz`` + ``vocab.json``).
  Models are reconstructed through :func:`repro.models.build_model`, so any
  detector registered with :func:`repro.models.register_model` round-trips.
* :class:`Predictor` — ``predict(texts, domains=None) -> list[Prediction]``
  over raw text, running under ``no_grad`` on the fused fast path in the
  pipeline's dtype, plus streaming :meth:`Predictor.predict_iter` for
  corpus-scale scoring.
* :class:`MicroBatcher` — a dynamic micro-batching queue
  (``predictor.microbatch(max_batch, max_latency_ms)``) that amortises many
  small requests into full-width batches.
* :class:`Server` — the fault-tolerant tier above: an asyncio front-end
  (plus :class:`HttpFrontend`, a stdlib-only HTTP endpoint) feeding a shared
  micro-batch queue drained by a supervised multi-process worker pool, with
  backpressure (:class:`ServerOverloaded`), per-request deadlines, circuit
  breaking around the frozen encoder, and crash recovery that re-dispatches
  a dead worker's batches so no ticket is ever lost.
* :class:`ServeStats` — the one queue ledger (served / failed / rejected /
  shed / expired ...) shared by :class:`MicroBatcher` and :class:`Server`,
  reported by both ``health()`` endpoints.

Quickstart (see ``examples/serve_quickstart.py`` for the full tour)::

    from repro.serve import Pipeline, load_pipeline

    Pipeline.from_training(model, vocab, encoder).save("artifacts/detector")
    ...
    predictor = load_pipeline("artifacts/detector").predictor()
    [pred] = predictor.predict(["breaking fake_sig_2 dom3_topic17 ..."])
    print(pred.label_name, pred.probability_fake)
"""

from repro.serve.microbatch import MicroBatcher, Ticket
from repro.serve.pipeline import (
    CHECKSUMS_FILE,
    DEFAULT_FEATURE_CHANNELS,
    MANIFEST_FILE,
    PIPELINE_FORMAT_VERSION,
    VOCAB_FILE,
    WEIGHTS_FILE,
    Pipeline,
    PipelineError,
    export_pipeline,
    load_pipeline,
    save_pipeline,
    verify_pipeline,
)
from repro.serve.http import HttpFrontend
from repro.serve.predictor import Prediction, Predictor
from repro.serve.server import Server, ServerConfig, ServerOverloaded, ServerTicket
from repro.serve.stats import ServeStats

__all__ = [
    "Pipeline", "PipelineError", "save_pipeline", "load_pipeline", "export_pipeline",
    "verify_pipeline",
    "Predictor", "Prediction",
    "MicroBatcher", "Ticket",
    "Server", "ServerConfig", "ServerOverloaded", "ServerTicket", "ServeStats",
    "HttpFrontend",
    "PIPELINE_FORMAT_VERSION", "DEFAULT_FEATURE_CHANNELS",
    "MANIFEST_FILE", "WEIGHTS_FILE", "VOCAB_FILE", "CHECKSUMS_FILE",
]
