"""Worker-process side of the serving tier.

Each worker is one OS process: it loads the :class:`repro.serve.Pipeline`
artifact exactly once (verifying the artifact's checksums first, like any
other consumer of untrusted disk state), builds a :class:`Predictor` with a
:class:`repro.reliability.CircuitBreaker` around the frozen-encoder
dependency, and then drains its task queue batch by batch, scoring through
the fused ``no_grad`` path.

Protocol (all messages go over the shared result queue, newest-first):

* ``("ready", worker_id, pid)`` — artifact loaded, first batch can be scored.
* ``("fatal", worker_id, message)`` — the worker cannot start (corrupt
  artifact, unknown model).  The supervisor treats this as unrecoverable —
  respawning would fail the same way — and fails the server readably.
* ``("result", worker_id, batch_id, status, payload, elapsed_ms)`` — one
  scored (``"ok"``), failed (``"error"``) or deadline-shed (``"expired"``)
  batch.  ``payload`` is a list of per-row dicts for ``"ok"``, an error
  string otherwise.

Crash semantics: scoring errors are caught per batch and reported as
``"error"`` results; anything harsher (``SystemExit`` from an injected
``serve.worker.step`` fault, a signal, an OOM kill) terminates the process
and is detected by the supervisor's liveness check, which respawns the
worker and re-dispatches whatever it held.  Scoring is a pure function of
the batch, so re-dispatch is idempotent — the collector keeps the first
result and drops duplicates.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass


@dataclass
class BatchJob:
    """One micro-batch travelling from the dispatcher to a worker."""

    batch_id: int
    texts: list[str]
    domains: list[int]
    #: absolute ``time.monotonic()`` deadline of the *earliest-expiring* row,
    #: or ``None``; CLOCK_MONOTONIC is system-wide on Linux, so the value is
    #: comparable across the server and worker processes.
    deadline: float | None = None


def _parent_alive() -> bool:
    import multiprocessing

    parent = multiprocessing.parent_process()
    return parent is None or parent.is_alive()


def worker_main(worker_id: int, artifact_path: str, task_queue, result_queue,
                options: dict) -> None:
    """Entry point of one worker process (``spawn``- and ``fork``-safe).

    ``options`` keys (all optional): ``fault_plan`` (a pickled
    :class:`repro.reliability.FaultPlan` installed for this worker's whole
    lifetime), ``breaker`` (:class:`CircuitBreaker` constructor kwargs),
    ``use_fused``, ``bucket_size``, ``default_domain``, ``encoder_cache``
    (truthy wraps the pipeline's encoder backend in a per-worker
    :class:`repro.encoders.CachedBackend`; a dict supplies its kwargs).
    """
    # The parent owns Ctrl-C handling; a worker interrupted mid-GEMM would
    # otherwise die with a KeyboardInterrupt traceback during test teardown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from queue import Empty

    from repro.reliability.circuit import CircuitBreaker
    from repro.reliability.faults import fault_point, install_plan
    from repro.serve.pipeline import load_pipeline, verify_pipeline

    try:
        plan = options.get("fault_plan")
        if plan is not None:
            install_plan(plan)
        fault_point("serve.worker.start", worker=worker_id)
        verify_pipeline(artifact_path)
        pipeline = load_pipeline(artifact_path)
        cache = options.get("encoder_cache")
        if cache:
            # Per-worker memoisation over the loaded backend; cache hits are
            # bit-identical by construction (content-hash window keys), so
            # the cross-worker bit-parity contract is unaffected.
            from repro.encoders.backends import CachedBackend

            pipeline.encoder = CachedBackend(
                pipeline.encoder, **(cache if isinstance(cache, dict) else {}))
        breaker = CircuitBreaker(name=f"encoder[worker {worker_id}]",
                                 **options.get("breaker", {}))
        predictor = pipeline.predictor(
            encoder_breaker=breaker,
            use_fused=options.get("use_fused", True),
            bucket_size=options.get("bucket_size"),
            default_domain=options.get("default_domain", 0))
    except BaseException as error:  # noqa: BLE001 - reported to the supervisor
        result_queue.put(("fatal", worker_id,
                          f"{type(error).__name__}: {error}"))
        return
    result_queue.put(("ready", worker_id, os.getpid()))

    while True:
        try:
            job = task_queue.get(timeout=1.0)
        except Empty:
            if not _parent_alive():  # orphaned: the server process is gone
                return
            continue
        if job is None:  # shutdown sentinel
            return
        started = time.perf_counter()
        if job.deadline is not None and time.monotonic() >= job.deadline:
            result_queue.put(("result", worker_id, job.batch_id, "expired",
                              "deadline expired before the batch was scored",
                              0.0))
            continue
        try:
            # The chaos harness's primary kill site: a rule raising
            # SystemExit here terminates the worker mid-stream, exactly
            # between claiming a batch and scoring it.
            fault_point("serve.worker.step", worker=worker_id,
                        batch=job.batch_id, size=len(job.texts))
            predictions = predictor.predict(job.texts, domains=job.domains)
        except Exception as error:  # noqa: BLE001 - isolated per batch
            result_queue.put(("result", worker_id, job.batch_id, "error",
                              f"{type(error).__name__}: {error}",
                              (time.perf_counter() - started) * 1e3))
            continue
        rows = [{
            "label": prediction.label,
            "label_name": prediction.label_name,
            "probability_fake": prediction.probability_fake,
            "probabilities": list(prediction.probabilities),
            "domain": prediction.domain,
        } for prediction in predictions]
        result_queue.put(("result", worker_id, job.batch_id, "ok", rows,
                          (time.perf_counter() - started) * 1e3))
