"""Fault-tolerant multi-process serving tier over a pipeline artifact.

``repro.serve.MicroBatcher`` is deliberately synchronous: one process, one
engine, flushes on the caller's thread.  :class:`Server` is the tier above
it, built for traffic that does not stop when a worker does:

* **Front-end** — thread-safe :meth:`Server.submit_ticket` plus asyncio
  :meth:`Server.submit` / :meth:`Server.submit_many` (and a stdlib-only HTTP
  endpoint in :mod:`repro.serve.http`).  Requests are validated up front and
  queued as :class:`ServerTicket`\\ s.
* **Shared micro-batch queue** — a dispatcher thread groups pending tickets
  into :class:`repro.serve.worker.BatchJob`\\ s with the same discipline as
  :class:`MicroBatcher` (flush on ``max_batch`` or on the oldest ticket
  waiting ``max_latency_ms``), sheds tickets whose deadline already passed,
  and assigns each batch to the least-loaded worker.
* **Supervised worker pool** — each worker is an OS process that loads the
  artifact once (checksum-verified) and scores batches through the fused
  ``no_grad`` path with a :class:`repro.reliability.CircuitBreaker` around
  the frozen-encoder dependency.  The supervisor detects worker death
  (crash, ``SIGKILL``, or an injected ``serve.worker.step`` fault), respawns
  the slot and **re-dispatches every batch the dead worker held** — scoring
  is pure, duplicates are dropped at the collector, and no ticket is ever
  silently lost.
* **Backpressure** — a bounded queue: once the number of unresolved tickets
  reaches ``queue_high_water``, :meth:`submit_ticket` raises
  :class:`ServerOverloaded` instead of growing the queue without bound.
* **Deadlines** — a per-request ``deadline_ms`` propagates into the queue;
  expired tickets are shed by the dispatcher before batching and by workers
  before scoring, so a saturated pool spends no engine time on answers
  nobody is waiting for.

Every ticket ends in exactly one :class:`repro.serve.ServeStats` bucket
(served / failed / expired, or rejected / shed at the door), which is the
ledger :meth:`Server.health` reports.

The chaos contract — kill a worker mid-ramp, recover with zero lost tickets
and bit-identical predictions — is pinned by ``tests/serve_server/`` and
measured by ``benchmarks/perf/test_perf_serving.py``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty

from repro.serve.pipeline import MANIFEST_FILE, PipelineError, verify_pipeline
from repro.serve.predictor import Prediction
from repro.serve.stats import ServeStats
from repro.serve.worker import BatchJob, worker_main


class ServerOverloaded(RuntimeError):
    """The queue is at its high-water mark; the request was shed, not queued."""


@dataclass
class ServerConfig:
    """Knobs of the serving tier (see module docstring for semantics)."""

    workers: int = 2
    max_batch: int = 32
    #: flush a partial batch once its oldest ticket has waited this long
    max_latency_ms: float = 5.0
    #: unresolved-ticket bound; submissions beyond it raise ServerOverloaded
    queue_high_water: int = 256
    #: deadline applied to tickets submitted without one (None = no deadline)
    default_deadline_ms: float | None = None
    max_text_chars: int = 100_000
    #: multiprocessing start method; "spawn" is robust everywhere, "fork" is
    #: faster to boot but unsafe once the supervisor threads are running
    start_method: str = "spawn"
    #: total respawns allowed before the server declares itself failed
    max_restarts: int = 8
    #: collector wake-up cadence for liveness checks
    poll_interval_s: float = 0.05
    verify_artifact: bool = True
    use_fused: bool = True
    bucket_size: int | None = None
    #: kwargs for each worker's frozen-encoder CircuitBreaker
    breaker: dict = field(default_factory=dict)
    #: wrap each worker's encoder backend in a CachedBackend; ``True`` for
    #: defaults or a dict of CachedBackend kwargs (``max_entries``,
    #: ``max_bytes``).  Serving traffic repeats windows (health probes, hot
    #: stories, donor-substituted rows), and cache hits are bit-identical by
    #: construction (content-hash keys).
    encoder_cache: "bool | dict" = False
    #: chaos harness: per-worker-slot FaultPlans shipped to the workers.
    #: Only the FIRST incarnation of a slot gets its plan — a respawned
    #: worker is healthy, so an injected kill exercises exactly one death.
    fault_plans: dict | None = None
    #: keep a log of every dispatched batch's composition (tests/benchmarks
    #: replay it through a single-process Predictor to pin bit-parity)
    record_batches: bool = False

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be non-negative")
        if self.queue_high_water < 1:
            raise ValueError("queue_high_water must be >= 1")
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unknown start_method '{self.start_method}'")


class ServerTicket:
    """Handle for one queued request; resolved by the collector thread."""

    __slots__ = ("id", "text", "domain", "submitted_perf", "resolved_perf",
                 "deadline", "batch_id", "_event", "_result", "_callbacks",
                 "_cb_lock")

    def __init__(self, ticket_id: int, text: str, domain: int,
                 deadline: float | None):
        self.id = ticket_id
        self.text = text
        self.domain = domain
        self.submitted_perf = time.perf_counter()
        self.resolved_perf: float | None = None
        #: absolute time.monotonic() deadline (None = wait forever)
        self.deadline = deadline
        self.batch_id: int | None = None
        self._event = threading.Event()
        self._result: Prediction | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def prediction(self) -> Prediction:
        if self._result is None:
            raise RuntimeError("ticket is not resolved yet; call result()")
        return self._result

    def result(self, timeout: float | None = None) -> Prediction:
        """Block until the ticket resolves; raises ``TimeoutError`` otherwise."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"ticket {self.id} not resolved within {timeout}s "
                "(queue saturated or server stopped?)")
        return self._result

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` on resolution (immediately if already done).

        Callbacks may fire from the collector thread — asyncio callers must
        trampoline through ``loop.call_soon_threadsafe``.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _resolve(self, prediction: Prediction) -> bool:
        with self._cb_lock:
            if self._event.is_set():
                return False  # duplicate result (re-dispatched batch)
            self.resolved_perf = time.perf_counter()
            prediction.latency_ms = (self.resolved_perf - self.submitted_perf) * 1e3
            self._result = prediction
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(self)
        return True


@dataclass
class _Inflight:
    """A dispatched batch: the job, its tickets and the owning worker slot."""

    job: BatchJob
    tickets: list[ServerTicket]
    slot: int = -1


class _WorkerSlot:
    """Supervisor-side record of one worker process."""

    __slots__ = ("id", "process", "queue", "outstanding", "ready", "pid",
                 "spawns")

    def __init__(self, slot_id: int):
        self.id = slot_id
        self.process = None
        self.queue = None
        self.outstanding: dict[int, _Inflight] = {}
        self.ready = False
        self.pid: int | None = None
        self.spawns = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class Server:
    """Supervised worker-pool serving over one pipeline artifact directory."""

    def __init__(self, artifact_path: str | os.PathLike,
                 config: ServerConfig | None = None):
        self.artifact_path = os.fspath(artifact_path)
        self.config = config or ServerConfig()
        self.stats = ServeStats()
        self.batch_records: list[dict] = []
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._pending: deque[ServerTicket] = deque()
        self._inflight: dict[int, _Inflight] = {}
        self._unresolved = 0
        self._slots: list[_WorkerSlot] = []
        self._restarts_used = 0
        self._ticket_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._state = "new"
        self._failed_reason: str | None = None
        self._stop_requested = False
        self._flush_requested = False
        self._collector_stop = threading.Event()
        self._result_q = None
        self._ctx = None
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        # Filled from the manifest on start()
        self.model_name = ""
        self.dtype = ""
        self.domain_names: list[str] = []
        self._num_domains = 0
        self.default_domain = 0

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    def start(self) -> "Server":
        """Verify the artifact, spawn the pool and the supervisor threads."""
        if self._state != "new":
            raise RuntimeError(f"server already {self._state}; build a new one")
        if self.config.verify_artifact:
            verify_pipeline(self.artifact_path)  # fail fast in the parent too
        self._read_manifest()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._result_q = self._ctx.Queue()
        with self._lock:
            self._slots = [_WorkerSlot(i) for i in range(self.config.workers)]
            for slot in self._slots:
                self._spawn_locked(slot)
            self._state = "running"
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serve-dispatch",
                                            daemon=True)
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="repro-serve-collect",
                                           daemon=True)
        self._dispatcher.start()
        self._collector.start()
        return self

    def _read_manifest(self) -> None:
        manifest_path = os.path.join(self.artifact_path, MANIFEST_FILE)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise PipelineError(
                f"no readable pipeline manifest at '{self.artifact_path}' "
                f"({error}); expected a directory written by "
                "repro.serve.save_pipeline") from error
        self.model_name = manifest["model"]["name"]
        self.dtype = manifest["dtype"]
        self.domain_names = list(manifest["domain_names"])
        self._num_domains = int(manifest["model"]["config"].get(
            "num_domains", len(self.domain_names)))
        # Publish the artifact's encoder-backend identity (kind + spec
        # fingerprint) without constructing a backend in the parent; the live
        # counters stay in the workers, but every replica reporting the same
        # fingerprint is the cross-process invariant operators check.
        from repro.encoders.backends import spec_fingerprint

        backend_spec = manifest.get("encoder_backend")
        if backend_spec is None and "encoder" in manifest:
            backend_spec = {"kind": "local", "encoder": manifest["encoder"]}
        if backend_spec is not None:
            state = {"kind": backend_spec.get("kind"),
                     "fingerprint": spec_fingerprint(backend_spec)}
            if self.config.encoder_cache:
                state["worker_cache"] = "enabled"
            self.stats.set_encoder_backend(state)

    def _spawn_locked(self, slot: _WorkerSlot) -> None:
        slot.queue = self._ctx.Queue()
        slot.ready = False
        slot.pid = None
        options = {
            "breaker": dict(self.config.breaker),
            "use_fused": self.config.use_fused,
            "bucket_size": self.config.bucket_size,
            "default_domain": self.default_domain,
            "encoder_cache": (dict(self.config.encoder_cache)
                              if isinstance(self.config.encoder_cache, dict)
                              else self.config.encoder_cache),
            # chaos plans arm the first incarnation only (see ServerConfig)
            "fault_plan": ((self.config.fault_plans or {}).get(slot.id)
                           if slot.spawns == 0 else None),
        }
        slot.spawns += 1
        slot.process = self._ctx.Process(
            target=worker_main,
            args=(slot.id, self.artifact_path, slot.queue, self._result_q,
                  options),
            name=f"repro-serve-worker-{slot.id}",
            daemon=True)
        slot.process.start()
        slot.pid = slot.process.pid

    def wait_ready(self, timeout_s: float = 30.0) -> bool:
        """Block until every worker has loaded the artifact (or timeout)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._failed_reason is not None:
                    raise RuntimeError(self._failed_reason)
                if all(slot.ready for slot in self._slots):
                    return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "Server":
        if self._state == "new":
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self, timeout_s: float = 15.0) -> None:
        """Drain the queue, retire the workers, resolve every ticket."""
        with self._cond:
            if self._state in ("new", "stopped"):
                self._state = "stopped"
                return
            self._stop_requested = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout_s
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout_s)
        with self._lock:
            for slot in self._slots:
                if slot.alive():
                    slot.queue.put(None)  # after any queued jobs: drain, then exit
        # Let the collector resolve in-flight batches (and detect workers that
        # die on the way out) until the queue is empty or time runs out.
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight or not any(s.alive() for s in self._slots):
                    break
            time.sleep(0.01)
        for slot in self._slots:
            remaining = max(deadline - time.monotonic(), 0.1)
            if slot.process is not None:
                slot.process.join(timeout=remaining)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
                    if slot.process.is_alive():  # pragma: no cover - last resort
                        slot.process.kill()
                        slot.process.join(timeout=1.0)
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        stranded: list[ServerTicket] = []
        with self._lock:
            stranded.extend(self._pending)
            self._pending.clear()
            for entry in self._inflight.values():
                stranded.extend(entry.tickets)
            self._inflight.clear()
            for slot in self._slots:
                slot.outstanding.clear()
                if slot.queue is not None:
                    slot.queue.cancel_join_thread()
            if self._result_q is not None:
                self._result_q.cancel_join_thread()
            self._state = "stopped"
        for ticket in stranded:
            self._resolve(ticket, Prediction.failure(
                "server stopped before this request completed",
                domain=self._domain_name(ticket.domain)), "failed")

    # ------------------------------------------------------------------ #
    # Submission                                                           #
    # ------------------------------------------------------------------ #
    def _validate_text(self, text) -> str | None:
        if not isinstance(text, str):
            return f"text must be a string, got {type(text).__name__}"
        if not text.strip():
            return "text is empty"
        if len(text) > self.config.max_text_chars:
            return (f"text has {len(text)} characters, over the "
                    f"{self.config.max_text_chars}-character limit")
        return None

    def _domain_index(self, domain) -> int:
        if domain is None:
            return self.default_domain
        if isinstance(domain, str):
            try:
                index = self.domain_names.index(domain)
            except ValueError:
                raise KeyError(f"unknown domain '{domain}'; pipeline domains: "
                               f"{self.domain_names}") from None
        else:
            index = int(domain)
        if not 0 <= index < self._num_domains:
            raise KeyError(f"domain index {index} outside the model's "
                           f"{self._num_domains} domains")
        return index

    def _domain_name(self, index: int) -> str:
        if 0 <= index < len(self.domain_names):
            return self.domain_names[index]
        return ""

    def submit_ticket(self, text: str, domain=None,
                      deadline_ms: float | None = None) -> ServerTicket:
        """Queue one request; thread-safe.  The fast-rejection tier:

        * structurally invalid requests raise ``ValueError``/``KeyError``
          immediately (counted as ``rejected``);
        * a queue at its high-water mark raises :class:`ServerOverloaded`
          (counted as ``shed``) — callers retry with backoff or downshift.
        """
        if self._state != "running":
            reason = self._failed_reason or f"server is {self._state}"
            raise RuntimeError(f"cannot submit: {reason}")
        problem = self._validate_text(text)
        if problem is not None:
            self.stats.count("rejected")
            raise ValueError(f"invalid request: {problem}")
        try:
            domain_index = self._domain_index(domain)
        except KeyError:
            self.stats.count("rejected")
            raise
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            self.stats.count("rejected")
            raise ValueError("deadline_ms must be positive")
        deadline = (time.monotonic() + deadline_ms / 1e3
                    if deadline_ms is not None else None)
        with self._cond:
            if self._unresolved >= self.config.queue_high_water:
                self.stats.count("shed")
                raise ServerOverloaded(
                    f"queue depth {self._unresolved} is at the high-water mark "
                    f"{self.config.queue_high_water}; request shed — retry with "
                    "backoff or add workers")
            ticket = ServerTicket(next(self._ticket_ids), text, domain_index,
                                  deadline)
            self._pending.append(ticket)
            self._unresolved += 1
            self.stats.count("submitted")
            self._cond.notify_all()
        return ticket

    async def submit(self, text: str, domain=None,
                     deadline_ms: float | None = None) -> Prediction:
        """Asyncio front-door: queue one request, await its prediction."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        ticket = self.submit_ticket(text, domain=domain, deadline_ms=deadline_ms)

        def deliver(resolved: ServerTicket) -> None:
            def set_result() -> None:
                if not future.done():
                    future.set_result(resolved.prediction)
            loop.call_soon_threadsafe(set_result)

        ticket.add_done_callback(deliver)
        return await future

    async def submit_many(self, texts, domains=None,
                          deadline_ms: float | None = None) -> list[Prediction]:
        """Score a batch of texts concurrently; per-item failures isolate.

        Rejections (invalid input, overload shed) come back as error
        :class:`Prediction`\\ s in their slot instead of failing the whole
        call, so callers can tell exactly which requests to retry.
        """
        texts = list(texts)
        if domains is None or isinstance(domains, (int, str)):
            domain_list = [domains] * len(texts)
        else:
            domain_list = list(domains)
            if len(domain_list) != len(texts):
                raise ValueError(f"{len(domain_list)} domains given for "
                                 f"{len(texts)} texts")

        async def one(text, domain) -> Prediction:
            try:
                return await self.submit(text, domain=domain,
                                         deadline_ms=deadline_ms)
            except (ServerOverloaded, ValueError, KeyError, RuntimeError) as error:
                return Prediction.failure(str(error))

        return list(await asyncio.gather(
            *(one(text, domain) for text, domain in zip(texts, domain_list))))

    def flush(self) -> None:
        """Ask the dispatcher to batch whatever is pending right now."""
        with self._cond:
            self._flush_requested = True
            self._cond.notify_all()

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Flush and wait until the queue is empty; False on timeout."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._unresolved == 0:
                    return True
                if self._failed_reason is not None:
                    return self._unresolved == 0
            self.flush()
            time.sleep(0.005)
        return False

    # ------------------------------------------------------------------ #
    # Dispatcher                                                           #
    # ------------------------------------------------------------------ #
    def _ready_locked(self) -> tuple[bool, float | None]:
        if not self._pending:
            return False, None
        if len(self._pending) >= self.config.max_batch:
            return True, None
        waited_ms = (time.perf_counter() - self._pending[0].submitted_perf) * 1e3
        if waited_ms >= self.config.max_latency_ms:
            return True, None
        return False, (self.config.max_latency_ms - waited_ms) / 1e3

    def _dispatch_loop(self) -> None:
        while True:
            expired: list[ServerTicket] = []
            with self._cond:
                while not (self._stop_requested or self._flush_requested
                           or self._failed_reason is not None):
                    ready, wait_s = self._ready_locked()
                    if ready:
                        break
                    self._cond.wait(wait_s)
                if self._failed_reason is not None:
                    return
                force = self._stop_requested or self._flush_requested
                self._flush_requested = False
                entries = self._take_batches_locked(force, expired)
                stopping = self._stop_requested
            for ticket in expired:
                self._resolve(ticket, Prediction.failure(
                    "deadline expired before the request was dispatched",
                    domain=self._domain_name(ticket.domain)), "expired")
            for entry in entries:
                with self._lock:
                    self._assign_locked(entry)
            if stopping:
                return

    def _take_batches_locked(self, force: bool,
                             expired: list[ServerTicket]) -> list[_Inflight]:
        now = time.monotonic()
        alive: deque[ServerTicket] = deque()
        for ticket in self._pending:
            if ticket.deadline is not None and now >= ticket.deadline:
                expired.append(ticket)
            else:
                alive.append(ticket)
        self._pending = alive
        entries: list[_Inflight] = []
        while self._pending:
            ready, _ = self._ready_locked()
            if not (force or ready):
                break
            size = min(len(self._pending), self.config.max_batch)
            reason = ("full" if size == self.config.max_batch
                      else "drain" if force else "latency")
            tickets = [self._pending.popleft() for _ in range(size)]
            deadlines = [t.deadline for t in tickets if t.deadline is not None]
            job = BatchJob(
                batch_id=next(self._batch_ids),
                texts=[t.text for t in tickets],
                domains=[t.domain for t in tickets],
                deadline=min(deadlines) if deadlines else None)
            for ticket in tickets:
                ticket.batch_id = job.batch_id
            entry = _Inflight(job=job, tickets=tickets)
            self._inflight[job.batch_id] = entry
            self.stats.record_flush(reason, size)
            if self.config.record_batches:
                self.batch_records.append({
                    "batch_id": job.batch_id,
                    "texts": list(job.texts),
                    "domains": list(job.domains),
                    "tickets": [t.id for t in tickets],
                })
            entries.append(entry)
        return entries

    def _assign_locked(self, entry: _Inflight) -> None:
        candidates = [slot for slot in self._slots if slot.process is not None]
        if not candidates:  # pragma: no cover - only after a failed start
            self._inflight.pop(entry.job.batch_id, None)
            for ticket in entry.tickets:
                self._resolve(ticket, Prediction.failure(
                    "no workers available",
                    domain=self._domain_name(ticket.domain)), "failed")
            return
        slot = min(candidates, key=lambda s: len(s.outstanding))
        entry.slot = slot.id
        slot.outstanding[entry.job.batch_id] = entry
        slot.queue.put(entry.job)

    # ------------------------------------------------------------------ #
    # Collector / supervisor                                               #
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._result_q.get(timeout=self.config.poll_interval_s)
            except (Empty, OSError, ValueError):
                message = None
            if message is not None:
                self._handle_message(message)
                continue  # drain bursts before paying for liveness checks
            self._check_liveness()
            if self._collector_stop.is_set():
                return

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, pid = message
            with self._lock:
                slot = self._slots[worker_id]
                if slot.pid == pid:
                    slot.ready = True
            return
        if kind == "fatal":
            _, worker_id, reason = message
            self._fail(f"worker {worker_id} cannot start: {reason}")
            return
        _, worker_id, batch_id, status, payload, _elapsed_ms = message
        with self._lock:
            self._slots[worker_id].outstanding.pop(batch_id, None)
            entry = self._inflight.pop(batch_id, None)
            if entry is not None and entry.slot != worker_id and 0 <= entry.slot < len(self._slots):
                # resolved by a duplicate dispatch: clear the other copy too
                self._slots[entry.slot].outstanding.pop(batch_id, None)
        if entry is None:
            return  # duplicate result from a re-dispatched batch
        if status == "ok":
            for ticket, row in zip(entry.tickets, payload):
                self._resolve(ticket, Prediction(
                    label=row["label"], label_name=row["label_name"],
                    probability_fake=row["probability_fake"],
                    probabilities=tuple(row["probabilities"]),
                    domain=row["domain"], latency_ms=0.0), "served")
        elif status == "expired":
            for ticket in entry.tickets:
                self._resolve(ticket, Prediction.failure(
                    str(payload), domain=self._domain_name(ticket.domain)),
                    "expired")
        else:
            for ticket in entry.tickets:
                self._resolve(ticket, Prediction.failure(
                    f"worker scoring failed: {payload}",
                    domain=self._domain_name(ticket.domain)), "failed")

    def _resolve(self, ticket: ServerTicket, prediction: Prediction,
                 bucket: str) -> None:
        if ticket._resolve(prediction):
            self.stats.count(bucket)
            with self._lock:
                self._unresolved -= 1

    def _check_liveness(self) -> None:
        orphaned: list[_Inflight] = []
        with self._lock:
            if self._state != "running" or self._stop_requested:
                return
            for slot in self._slots:
                if slot.process is None or slot.process.is_alive():
                    continue
                exitcode = slot.process.exitcode
                self.stats.count("worker_deaths")
                jobs = list(slot.outstanding.values())
                slot.outstanding.clear()
                slot.process = None
                if self._restarts_used >= self.config.max_restarts:
                    self._fail_locked(
                        f"worker {slot.id} died (exit {exitcode}) after the "
                        f"restart budget ({self.config.max_restarts}) was spent")
                    return
                self._restarts_used += 1
                self.stats.count("worker_restarts")
                self._spawn_locked(slot)
                orphaned.extend(jobs)
            for entry in orphaned:
                if entry.job.batch_id in self._inflight:  # not resolved yet
                    self.stats.count("redispatched", len(entry.tickets))
                    self._assign_locked(entry)

    def _fail(self, reason: str) -> None:
        with self._lock:
            self._fail_locked(reason)

    def _fail_locked(self, reason: str) -> None:
        if self._failed_reason is not None:
            return
        self._failed_reason = f"server failed: {reason}"
        stranded = list(self._pending)
        self._pending.clear()
        for entry in self._inflight.values():
            stranded.extend(entry.tickets)
        self._inflight.clear()
        for slot in self._slots:
            slot.outstanding.clear()
        self._cond.notify_all()
        # Resolution runs callbacks; do it without re-entering per ticket.
        for ticket in stranded:
            self._resolve(ticket, Prediction.failure(
                self._failed_reason,
                domain=self._domain_name(ticket.domain)), "failed")

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    def worker_pids(self) -> list[int]:
        with self._lock:
            return [slot.pid for slot in self._slots if slot.alive()]

    def health(self) -> dict:
        """Pool liveness + the unified queue ledger (ServeStats)."""
        with self._lock:
            workers = [{
                "id": slot.id,
                "pid": slot.pid,
                "alive": slot.alive(),
                "ready": slot.ready,
                "outstanding_batches": len(slot.outstanding),
            } for slot in self._slots]
            alive = sum(1 for w in workers if w["alive"])
            if self._failed_reason is not None:
                status = "failed"
            elif self._state != "running":
                status = self._state
            elif alive == len(workers):
                status = "ok"
            else:
                status = "degraded"
            return {
                "status": status,
                "state": self._state,
                "reason": self._failed_reason,
                "model": self.model_name,
                "dtype": self.dtype,
                "domains": list(self.domain_names),
                "artifact": self.artifact_path,
                "workers": workers,
                "restarts_used": self._restarts_used,
                "pending": len(self._pending),
                "inflight_batches": len(self._inflight),
                "queue": self.stats.snapshot(),
            }
