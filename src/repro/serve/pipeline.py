"""The pipeline artifact: one bundle holding everything inference needs.

Artifact layout (one directory per pipeline)::

    detector/
      manifest.json   # format version, model name + ModelConfig, dtype,
                      # tokenizer spec, frozen-encoder spec, max_length,
                      # domain names, feature channels, labels, metadata
      weights.npz     # versioned checkpoint (repro.nn.save_checkpoint)
      vocab.json      # token list in id order (Vocabulary.to_spec)

Everything in the manifest is a *spec*, not a pickle: the tokenizer and the
frozen encoder are reconstructed from their constructor arguments (the
encoder's weights are deterministic functions of its seed), the model through
:func:`repro.models.build_model` — so a pipeline saved for a detector
registered via :func:`repro.models.register_model` loads in any process that
performs the same registration first.

Loading restores the model under the pipeline's dtype policy and loads the
saved weights bit-for-bit, so a loaded pipeline reproduces the exporting
model's probabilities exactly (pinned by ``tests/serve/test_pipeline.py`` in
both ``REPRO_DTYPE``\\ s).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro._version import __version__
from repro.data.dataset import LABEL_NAMES
from repro.data.tokenizer import WhitespaceTokenizer, tokenizer_from_spec
from repro.data.vocab import Vocabulary
from repro.encoders.backends import (
    EncoderBackend,
    EncoderBackendError,
    LocalBackend,
    as_backend,
    backend_from_spec,
)
from repro.encoders.channels import (
    STOCK_CHANNELS,
    FeatureChannel,
    FeatureChannelError,
    PLMChannel,
    channels_from_specs,
)
from repro.encoders.pretrained import FrozenPretrainedEncoder
from repro.models.base import FakeNewsDetector, ModelConfig
from repro.models.registry import build_model, registry_name
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.reliability.durable import atomic_write_text, sha256_file
from repro.reliability.faults import fault_point
from repro.reliability.retry import default_read_policy
from repro.tensor import default_dtype

#: Bump when the artifact layout changes incompatibly.
PIPELINE_FORMAT_VERSION = 1

MANIFEST_FILE = "manifest.json"
WEIGHTS_FILE = "weights.npz"
VOCAB_FILE = "vocab.json"
#: Sidecar mapping each artifact file to its SHA-256, written last so a
#: crash mid-save leaves a missing (detectable) sidecar, never a stale one
#: blessing partial content.  Artifacts written before the reliability PR
#: have no sidecar and are loaded without verification.
CHECKSUMS_FILE = "checksums.json"

#: Feature channels the stock training loaders precompute and the serving
#: path recomputes from raw text (see ``repro.serve.predictor``).
DEFAULT_FEATURE_CHANNELS: tuple[str, ...] = ("plm", "style", "emotion")


class PipelineError(RuntimeError):
    """A pipeline artifact is missing, malformed or incompatible."""


def _model_dtype(model: FakeNewsDetector) -> str:
    """The dtype the model's parameters currently live in (no copies made)."""
    for _, parameter in model._all_parameters_even_frozen():
        return str(parameter.data.dtype)
    raise PipelineError(f"{type(model).__name__} has no parameters to serve")


@dataclass
class Pipeline:
    """A servable bundle: model, vocabulary, tokenizer, encoder and dtype.

    Build one with :meth:`from_training` (deriving the registry name and the
    dtype from the model itself), persist it with :meth:`save` and restore it
    with :func:`load_pipeline`.  :meth:`predictor` attaches the raw-text
    inference front-end.
    """

    model_name: str
    model: FakeNewsDetector
    model_config: ModelConfig
    vocab: Vocabulary
    tokenizer: WhitespaceTokenizer
    #: Accepts a raw :class:`FrozenPretrainedEncoder` (wrapped into the
    #: default ``local`` backend) or any :class:`EncoderBackend`; after
    #: ``__post_init__`` this is always a backend.
    encoder: "FrozenPretrainedEncoder | EncoderBackend"
    max_length: int
    domain_names: list[str]
    dtype: str
    feature_channels: tuple[str, ...] = DEFAULT_FEATURE_CHANNELS
    metadata: dict = field(default_factory=dict)
    #: Resolved :class:`FeatureChannel` objects, or ``None`` for the legacy
    #: names-only representation (stock channels reconstructed on demand).
    channels: "list[FeatureChannel] | None" = None
    #: Directory this pipeline was loaded from (set by :func:`load_pipeline`;
    #: ``None`` for in-memory pipelines).  ``Predictor.health`` re-verifies
    #: the artifact's checksums through it.
    source_path: str | None = None

    def __post_init__(self):
        try:
            self.encoder = as_backend(self.encoder)
        except EncoderBackendError as error:
            raise PipelineError(str(error)) from error
        if self.encoder.vocab_size != len(self.vocab):
            raise PipelineError(
                f"frozen encoder was built for a vocabulary of {self.encoder.vocab_size} "
                f"tokens but the pipeline vocabulary has {len(self.vocab)}; the encoder "
                "must be the one the model was trained against")
        if len(self.domain_names) < self.model_config.num_domains:
            raise PipelineError(
                f"model expects {self.model_config.num_domains} domains but only "
                f"{len(self.domain_names)} domain names were provided")
        if self.channels is not None:
            self.feature_channels = tuple(ch.name for ch in self.channels)
        self.model.eval()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_training(cls, model: FakeNewsDetector, vocab: Vocabulary,
                      encoder: "FrozenPretrainedEncoder | EncoderBackend", *,
                      tokenizer: WhitespaceTokenizer | None = None,
                      max_length: int = 24,
                      domain_names: list[str] | None = None,
                      model_name: str | None = None,
                      feature_channels: tuple[str, ...] | None = None,
                      channels: "list[FeatureChannel] | None" = None,
                      metadata: dict | None = None) -> "Pipeline":
        """Bundle a trained detector with its training-time state.

        ``model_name`` defaults to the registry key of the model's class
        (:func:`repro.models.registry_name`), ``dtype`` to the dtype of the
        model's parameters, ``domain_names`` to ``domain_0 .. domain_{n-1}``,
        ``feature_channels`` to the stock loader channels.  ``max_length``
        must be the length the training loaders encoded with — serving pads
        to it, so a mismatch silently shifts probabilities.

        ``encoder`` may be a bare :class:`FrozenPretrainedEncoder` (wrapped
        into the default ``local`` backend) or any :class:`EncoderBackend`.
        ``channels`` passes the resolved :class:`FeatureChannel` objects the
        model trained against (e.g. ``DataBundle.channels``); when given it
        overrides ``feature_channels`` and lets registered *custom* channels
        round-trip through the artifact.
        """
        if domain_names is None:
            domain_names = [f"domain_{i}" for i in range(model.config.num_domains)]
        if channels is not None:
            feature_channels = tuple(ch.name for ch in channels)
        elif feature_channels is None:
            feature_channels = DEFAULT_FEATURE_CHANNELS
        return cls(
            model_name=model_name or registry_name(model),
            model=model,
            model_config=model.config,
            vocab=vocab,
            tokenizer=tokenizer or WhitespaceTokenizer(),
            encoder=encoder,
            max_length=max_length,
            domain_names=list(domain_names),
            dtype=_model_dtype(model),
            feature_channels=tuple(feature_channels),
            channels=channels,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    def resolve_channels(self) -> "list[FeatureChannel]":
        """The channel objects serving must recompute, stock ones on demand.

        Pipelines built (or loaded) with explicit channel objects return
        them; legacy pipelines carry names only, and every name must then be
        one of the stock :data:`~repro.encoders.STOCK_CHANNELS` — anything
        else cannot be recomputed from raw text without its registered spec.
        """
        if self.channels is not None:
            return list(self.channels)
        from repro.encoders.channels import stock_channels

        stock = {ch.name: ch for ch in stock_channels(self.encoder)}
        unknown = [name for name in self.feature_channels if name not in stock]
        if unknown:
            raise PipelineError(
                f"pipeline requires feature channels {unknown} that the serving "
                f"path cannot recompute from raw text; supported: "
                f"{sorted(stock)}. Custom channels must be exported with their "
                "specs (register_feature_channel + DataBundle.channels)")
        return [stock[name] for name in self.feature_channels]

    def _needs_channel_specs(self) -> bool:
        """Whether the manifest must carry explicit channel specs.

        The legacy names-only representation reconstructs stock channels
        bound to the pipeline's backend; explicit specs are needed only when
        a channel is custom, renamed, or a ``plm`` bound to a *different*
        backend — keeping stock artifacts byte-identical to pre-registry
        exports.
        """
        if self.channels is None:
            return False
        for channel in self.channels:
            if channel.kind not in STOCK_CHANNELS or channel.name != channel.kind:
                return True
            if (isinstance(channel, PLMChannel)
                    and channel.backend.fingerprint() != self.encoder.fingerprint()):
                return True
        return False

    # ------------------------------------------------------------------ #
    def manifest(self) -> dict:
        """The JSON document :func:`save_pipeline` writes as ``manifest.json``.

        The schema is strictly additive over the pre-registry layout: the
        legacy ``"encoder"`` key still carries the frozen-encoder spec, an
        ``"encoder_backend"`` key appears only for non-``local`` backends and
        ``"feature_channel_specs"`` only for non-stock channels — so an
        artifact exported with the default backend and stock channels is
        *byte-identical* to one written before backends existed, and legacy
        manifests load unchanged.
        """
        document = {
            "format_version": PIPELINE_FORMAT_VERSION,
            "repro_version": __version__,
            "model": {"name": self.model_name, "config": self.model_config.to_dict()},
            "dtype": self.dtype,
            "max_length": self.max_length,
            "domain_names": list(self.domain_names),
            "tokenizer": self.tokenizer.to_spec(),
            "feature_channels": list(self.feature_channels),
            "labels": list(LABEL_NAMES),
            "metadata": self.metadata,
        }
        encoder_spec = self.encoder.encoder_spec()
        if encoder_spec is not None:
            document["encoder"] = encoder_spec
        if self.encoder.kind != "local":
            document["encoder_backend"] = self.encoder.to_spec()
        elif encoder_spec is None:
            raise PipelineError(
                f"encoder backend '{self.encoder.kind}' exposes neither an "
                "underlying encoder spec nor a non-local backend spec; it "
                "cannot be persisted")
        if self._needs_channel_specs():
            document["feature_channel_specs"] = [
                channel.to_spec() for channel in self.channels]
        return document

    def fingerprint(self) -> str:
        """16-hex content digest of this pipeline (manifest + weight bytes).

        Purely content-based — the manifest document plus every state-dict
        array's name and raw bytes — so it is stable across replays of the
        same deterministic run (unlike hashing the artifact files, whose npz
        container embeds timestamps) and survives a save/load round-trip
        unchanged.  Serving exposes it so operators can see *which* weights a
        predictor is holding after a hot reload.
        """
        digest = hashlib.sha256()
        digest.update(json.dumps(self.manifest(), sort_keys=True).encode("utf-8"))
        for name, value in sorted(self.model.state_dict().items()):
            digest.update(name.encode("utf-8"))
            array = np.ascontiguousarray(value)
            digest.update(str(array.dtype).encode("utf-8"))
            digest.update(array.tobytes())
        return digest.hexdigest()[:16]

    def save(self, path: str | os.PathLike) -> str:
        return save_pipeline(self, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Pipeline":
        return load_pipeline(path)

    def predictor(self, **kwargs) -> "Predictor":
        """A :class:`repro.serve.Predictor` bound to this pipeline."""
        from repro.serve.predictor import Predictor

        return Predictor(self, **kwargs)


def save_pipeline(pipeline: Pipeline, path: str | os.PathLike) -> str:
    """Write ``pipeline`` as a directory artifact at ``path``; returns the path.

    Every file is written atomically, and a ``checksums.json`` sidecar
    recording each file's SHA-256 lands *last* — so a crash at any moment
    leaves either a complete, verifiable artifact or one whose incompleteness
    is detectable, never a silently inconsistent bundle.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    checksums: dict[str, str] = {}
    save_checkpoint(pipeline.model, os.path.join(path, WEIGHTS_FILE))
    checksums[WEIGHTS_FILE] = sha256_file(os.path.join(path, WEIGHTS_FILE))
    checksums[VOCAB_FILE] = atomic_write_text(
        os.path.join(path, VOCAB_FILE),
        json.dumps(pipeline.vocab.to_spec()) + "\n")
    checksums[MANIFEST_FILE] = atomic_write_text(
        os.path.join(path, MANIFEST_FILE),
        json.dumps(pipeline.manifest(), indent=2, sort_keys=True) + "\n")
    atomic_write_text(os.path.join(path, CHECKSUMS_FILE),
                      json.dumps(checksums, indent=2, sort_keys=True) + "\n")
    return path


def verify_pipeline(path: str | os.PathLike) -> dict[str, str]:
    """Verify the artifact's recorded checksums; returns ``{file: digest}``.

    Raises :class:`PipelineError` naming every damaged or missing file.
    Artifacts written before checksums existed (no ``checksums.json``) pass
    vacuously with an empty mapping.
    """
    path = os.fspath(path)
    sidecar = os.path.join(path, CHECKSUMS_FILE)
    if not os.path.exists(sidecar):
        if not os.path.exists(os.path.join(path, MANIFEST_FILE)):
            raise PipelineError(
                f"no pipeline artifact at '{path}' (missing {MANIFEST_FILE}); "
                "expected a directory written by repro.serve.save_pipeline")
        return {}
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            recorded = json.load(handle)
    except ValueError as error:
        raise PipelineError(
            f"pipeline at '{path}' has an unreadable {CHECKSUMS_FILE} "
            f"({error}); the artifact is corrupt — re-export it") from error
    damaged: list[str] = []
    for name, digest in sorted(recorded.items()):
        target = os.path.join(path, name)
        if not os.path.exists(target) or sha256_file(target) != digest:
            damaged.append(name)
    if damaged:
        raise PipelineError(
            f"pipeline at '{path}' is corrupted (checksum mismatch) in: "
            f"{damaged}; the artifact was damaged after export — re-export it")
    return dict(recorded)


def export_pipeline(model: FakeNewsDetector, path: str | os.PathLike, *,
                    vocab: Vocabulary,
                    encoder: "FrozenPretrainedEncoder | EncoderBackend",
                    tokenizer: WhitespaceTokenizer | None = None,
                    max_length: int = 24,
                    domain_names: list[str] | None = None,
                    model_name: str | None = None,
                    feature_channels: tuple[str, ...] | None = None,
                    channels: "list[FeatureChannel] | None" = None,
                    metadata: dict | None = None) -> str:
    """One-call export: bundle a trained model and write the artifact.

    This is the primitive behind ``Trainer.export_pipeline`` /
    ``DTDBDTrainer.export_pipeline`` and
    :func:`repro.experiments.export_pipeline`; returns the artifact path.
    """
    pipeline = Pipeline.from_training(
        model, vocab, encoder, tokenizer=tokenizer, max_length=max_length,
        domain_names=domain_names, model_name=model_name,
        feature_channels=feature_channels, channels=channels, metadata=metadata)
    return save_pipeline(pipeline, path)


def load_pipeline(path: str | os.PathLike) -> Pipeline:
    """Restore a pipeline saved by :func:`save_pipeline`.

    The model is rebuilt with :func:`repro.models.build_model` under the
    pipeline's dtype policy and the saved weights are loaded bit-for-bit, so
    no training-time state beyond the artifact (and, for custom detectors,
    the same :func:`repro.models.register_model` call) is needed.
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, MANIFEST_FILE)
    if not os.path.exists(manifest_path):
        raise PipelineError(
            f"no pipeline artifact at '{path}' (missing {MANIFEST_FILE}); "
            "expected a directory written by repro.serve.save_pipeline")
    verify_pipeline(path)
    try:
        manifest = json.loads(_read_artifact_text(manifest_path))
    except ValueError as error:
        raise PipelineError(
            f"pipeline at '{path}' has an unreadable {MANIFEST_FILE} "
            f"({error}); the artifact is corrupt — re-export it") from error
    version = manifest.get("format_version")
    if not isinstance(version, int) or version > PIPELINE_FORMAT_VERSION:
        raise PipelineError(
            f"pipeline at '{path}' has format version {version!r}, but this build "
            f"only understands versions <= {PIPELINE_FORMAT_VERSION}")

    try:
        vocab = Vocabulary.from_spec(
            json.loads(_read_artifact_text(os.path.join(path, VOCAB_FILE))))
        tokenizer = tokenizer_from_spec(manifest["tokenizer"])
        model_name = manifest["model"]["name"]
        model_config = ModelConfig.from_dict(manifest["model"]["config"])
        dtype = manifest["dtype"]
    except PipelineError:
        raise
    except (OSError, KeyError, ValueError, TypeError) as error:
        # Missing files, unknown tokenizer kinds, corrupt specs: surface them
        # all as the documented "malformed artifact" error class.
        raise PipelineError(f"pipeline at '{path}' is malformed: {error}") from error

    try:
        if "encoder_backend" in manifest:
            encoder = backend_from_spec(manifest["encoder_backend"])
        elif "encoder" in manifest:
            # Legacy manifests (and every stock local-backend export) carry
            # only the frozen-encoder spec; the default backend wraps it.
            encoder = LocalBackend(
                FrozenPretrainedEncoder.from_spec(manifest["encoder"]))
        else:
            raise PipelineError(
                f"pipeline at '{path}' is malformed: manifest has neither an "
                "'encoder' nor an 'encoder_backend' entry")
    except PipelineError:
        raise
    except EncoderBackendError as error:
        raise PipelineError(
            f"pipeline at '{path}' needs an encoder backend this process "
            f"cannot build: {error}") from error
    except (KeyError, ValueError, TypeError) as error:
        raise PipelineError(f"pipeline at '{path}' is malformed: {error}") from error

    channels = None
    if "feature_channel_specs" in manifest:
        try:
            channels = channels_from_specs(manifest["feature_channel_specs"],
                                           backend=encoder)
        except FeatureChannelError as error:
            raise PipelineError(
                f"pipeline at '{path}' needs a feature channel this process "
                f"cannot build: {error}") from error
        except (KeyError, ValueError, TypeError) as error:
            raise PipelineError(
                f"pipeline at '{path}' is malformed: {error}") from error
    with default_dtype(dtype):
        try:
            model = build_model(model_name, model_config)
        except KeyError as error:
            raise PipelineError(
                f"pipeline at '{path}' needs model '{model_name}', which is not in "
                "the registry in this process; call repro.models.register_model("
                f"'{model_name}', <class>) before load_pipeline") from error
        try:
            load_checkpoint(model, os.path.join(path, WEIGHTS_FILE))
        except PipelineError:
            raise
        except (OSError, KeyError, ValueError) as error:
            raise PipelineError(
                f"pipeline at '{path}' has unloadable weights: {error}") from error

    return Pipeline(
        model_name=model_name,
        model=model,
        model_config=model_config,
        vocab=vocab,
        tokenizer=tokenizer,
        encoder=encoder,
        max_length=int(manifest["max_length"]),
        domain_names=list(manifest["domain_names"]),
        dtype=dtype,
        feature_channels=tuple(manifest.get("feature_channels",
                                            DEFAULT_FEATURE_CHANNELS)),
        metadata=dict(manifest.get("metadata", {})),
        channels=channels,
        source_path=path,
    )


def _read_artifact_text(path: str) -> str:
    """Read a small artifact file under the default read-retry policy."""

    def attempt() -> str:
        fault_point("io.read", path=path, kind="pipeline")
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    return default_read_policy().call(attempt)
