"""Unified serving-queue statistics.

Every queue in the serving tier — the in-process :class:`repro.serve.MicroBatcher`
and the multi-process :class:`repro.serve.Server` — answers the same
operational questions: how much work arrived, how much was served, and where
the rest went (rejected as invalid, shed under overload, expired past its
deadline, failed at scoring).  :class:`ServeStats` is the one ledger both
keep, so ``health()`` endpoints report identical fields whichever queue is
serving.

Accounting contract (every submitted ticket ends in exactly one bucket)::

    submitted = served + failed + expired + stranded(unresolved at shutdown)
    rejected / shed are counted *instead of* submitted (the ticket was never
    accepted into the queue).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


def _flush_reasons() -> dict[str, int]:
    return {"full": 0, "latency": 0, "drain": 0}


@dataclass
class ServeStats:
    """Counters shared by every serving queue; thread-safe via :meth:`lock`."""

    #: tickets accepted into the queue
    submitted: int = 0
    #: tickets resolved with an ok prediction
    served: int = 0
    #: tickets resolved with an error prediction (scoring/worker failure)
    failed: int = 0
    #: submissions refused as structurally invalid (empty text, bad domain)
    rejected: int = 0
    #: submissions refused by backpressure (queue at its high-water mark)
    shed: int = 0
    #: tickets dropped because their deadline passed before scoring
    expired: int = 0
    #: batches scored
    batches: int = 0
    #: why each batch went out: queue full, oldest ticket overdue, or drain
    flush_reasons: dict[str, int] = field(default_factory=_flush_reasons)
    #: worker deaths detected by the supervisor (server only)
    worker_deaths: int = 0
    #: workers (re)spawned after a death (server only)
    worker_restarts: int = 0
    #: tickets re-dispatched because their worker died mid-batch (server only)
    redispatched: int = 0
    #: state of the encoder backend behind the queue (kind, spec fingerprint,
    #: live counters like cache hit rate / circuit state); ``None`` until the
    #: owning queue first publishes it via :meth:`set_encoder_backend`
    encoder_backend: dict | None = None
    #: ok predictions per served domain name (streaming / onboarding views)
    served_by_domain: dict[str, int] = field(default_factory=dict)
    #: fingerprint of the pipeline artifact currently behind the queue;
    #: ``None`` until first published — changes after a hot reload, which is
    #: how operators confirm a swap actually happened
    artifact_fingerprint: str | None = None

    def __post_init__(self):
        # One queue is driven from several threads (submitters, dispatcher,
        # collector); counter updates go through this lock.  The lock is not
        # part of equality/repr.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def lock(self) -> threading.Lock:
        return self._lock

    @property
    def resolved(self) -> int:
        """Tickets that reached a terminal state."""
        return self.served + self.failed + self.expired

    @property
    def in_queue(self) -> int:
        """Accepted tickets not yet resolved."""
        return self.submitted - self.resolved

    def record_flush(self, reason: str, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def record_outcome(self, ok: bool, count: int = 1) -> None:
        with self._lock:
            if ok:
                self.served += count
            else:
                self.failed += count

    def set_encoder_backend(self, state: dict | None) -> None:
        """Publish the owning queue's encoder-backend state for snapshots."""
        with self._lock:
            self.encoder_backend = dict(state) if state is not None else None

    def record_domain(self, domain: str, count: int = 1) -> None:
        """Count ``count`` ok predictions served for ``domain``."""
        with self._lock:
            self.served_by_domain[domain] = \
                self.served_by_domain.get(domain, 0) + count

    def set_artifact_fingerprint(self, fingerprint: str | None) -> None:
        """Publish the fingerprint of the artifact currently being served."""
        with self._lock:
            self.artifact_fingerprint = fingerprint

    def count(self, field_name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to one of the integer counters."""
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + amount)

    def snapshot(self) -> dict:
        """A JSON-able copy for ``health()`` endpoints and benchmarks."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "served": self.served,
                "failed": self.failed,
                "rejected": self.rejected,
                "shed": self.shed,
                "expired": self.expired,
                "in_queue": self.in_queue,
                "batches": self.batches,
                "flush_reasons": dict(self.flush_reasons),
                "worker_deaths": self.worker_deaths,
                "worker_restarts": self.worker_restarts,
                "redispatched": self.redispatched,
                "encoder_backend": (dict(self.encoder_backend)
                                    if self.encoder_backend is not None else None),
                "served_by_domain": dict(self.served_by_domain),
                "artifact_fingerprint": self.artifact_fingerprint,
            }
