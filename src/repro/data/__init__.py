"""Data substrate: synthetic corpora, vocabularies, splits and loaders."""

from repro.data.dataset import (
    FAKE_LABEL,
    LABEL_NAMES,
    REAL_LABEL,
    MultiDomainNewsDataset,
    NewsItem,
    encode_texts,
)
from repro.data.loader import Batch, DataLoader
from repro.data.splits import DatasetSplits, stratified_split
from repro.data.streambuffer import StreamWindowBuffer
from repro.data.statistics import (
    DomainStatistics,
    dataset_statistics_table,
    domain_statistics,
    imbalance_summary,
)
from repro.data.synthetic import (
    ENGLISH_DOMAIN_SPECS,
    WEIBO21_DOMAIN_SPECS,
    CaseStudyItem,
    DomainSpec,
    SyntheticCorpusConfig,
    SyntheticNewsGenerator,
    make_case_study_probes,
    make_english_like,
    make_weibo21_like,
)
from repro.data.tokenizer import (
    CharNGramTokenizer,
    WhitespaceTokenizer,
    register_tokenizer,
    tokenizer_from_spec,
)
from repro.data.vocab import Vocabulary

__all__ = [
    "NewsItem", "MultiDomainNewsDataset", "REAL_LABEL", "FAKE_LABEL", "LABEL_NAMES",
    "encode_texts",
    "Batch", "DataLoader",
    "DatasetSplits", "stratified_split",
    "StreamWindowBuffer",
    "DomainStatistics", "domain_statistics", "dataset_statistics_table", "imbalance_summary",
    "DomainSpec", "SyntheticCorpusConfig", "SyntheticNewsGenerator", "CaseStudyItem",
    "WEIBO21_DOMAIN_SPECS", "ENGLISH_DOMAIN_SPECS",
    "make_weibo21_like", "make_english_like", "make_case_study_probes",
    "Vocabulary", "WhitespaceTokenizer", "CharNGramTokenizer",
    "register_tokenizer", "tokenizer_from_spec",
]
