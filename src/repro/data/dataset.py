"""News item and multi-domain dataset containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.data.tokenizer import WhitespaceTokenizer
from repro.data.vocab import Vocabulary

REAL_LABEL = 0
FAKE_LABEL = 1

#: Human-readable names of the binary labels, indexed by label id.
LABEL_NAMES = ("real", "fake")


def encode_texts(texts: Sequence[str], vocab: Vocabulary, max_length: int,
                 tokenizer: WhitespaceTokenizer | None = None,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Encode raw ``texts`` into ``(token_ids, mask)`` matrices.

    This is the ONE truncation+padding implementation shared by training-time
    dataset encoding (:meth:`MultiDomainNewsDataset.encode`, hence every
    :class:`repro.data.DataLoader`) and the serving path
    (:class:`repro.serve.Predictor`): a tokenizer pass, :meth:`Vocabulary.encode`
    with truncation to ``max_length`` and right-padding with the pad id, and a
    0/1 mask covering the surviving (pre-padding) positions.  Tokenizers that
    carry their own ``max_length`` truncate first, exactly as they do when a
    dataset is encoded — keeping the two paths byte-identical is pinned by
    ``tests/serve/test_predictor.py``.
    """
    tokenizer = tokenizer or WhitespaceTokenizer()
    token_ids = np.zeros((len(texts), max_length), dtype=np.int64)
    mask = np.zeros((len(texts), max_length), dtype=np.float64)
    for row, text in enumerate(texts):
        tokens = tokenizer(text)
        token_ids[row] = vocab.encode(tokens, max_length=max_length, pad=True)
        mask[row, : min(max_length, len(tokens))] = 1.0
    return token_ids, mask


def default_token_lists(texts: Sequence[str]) -> list[list[str]]:
    """Whitespace-tokenise *untruncated* raw texts, one list per text.

    The one tokenisation the handcrafted feature channels read, shared by the
    training-time extractors and the serving path so the two stay
    byte-identical: channels see the full raw token stream regardless of the
    vocabulary truncation applied to the model's token-id window.
    """
    tokenizer = WhitespaceTokenizer()
    return [tokenizer(text) for text in texts]


@dataclass
class NewsItem:
    """A single news piece with its veracity and domain labels.

    Attributes
    ----------
    text:
        Raw news text (space-separated symbolic tokens for synthetic corpora).
    label:
        0 for real, 1 for fake (Definition 1 in the paper).
    domain:
        Integer domain index.
    domain_name:
        Human-readable domain name (e.g. ``"disaster"``).
    item_id:
        Stable identifier, useful for case studies and debugging.
    metadata:
        Free-form extra information recorded by the generator (e.g. whether the
        item carries an explicit veracity signal).
    """

    text: str
    label: int
    domain: int
    domain_name: str = ""
    item_id: int = -1
    metadata: dict = field(default_factory=dict)

    def tokens(self, tokenizer: WhitespaceTokenizer | None = None) -> list[str]:
        tokenizer = tokenizer or WhitespaceTokenizer()
        return tokenizer(self.text)


class MultiDomainNewsDataset:
    """In-memory multi-domain fake-news dataset ``N_M = {P, D, Y}`` (Definition 2)."""

    def __init__(self, items: Sequence[NewsItem], domain_names: Sequence[str],
                 name: str = "dataset"):
        self.items = list(items)
        self.domain_names = list(domain_names)
        self.name = name
        for item in self.items:
            if not 0 <= item.domain < len(self.domain_names):
                raise ValueError(
                    f"item {item.item_id} has domain {item.domain} outside the dataset's domains")
            if item.label not in (REAL_LABEL, FAKE_LABEL):
                raise ValueError(f"item {item.item_id} has invalid label {item.label}")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> NewsItem:
        return self.items[index]

    def __iter__(self):
        return iter(self.items)

    @property
    def num_domains(self) -> int:
        return len(self.domain_names)

    @property
    def labels(self) -> np.ndarray:
        return np.array([item.label for item in self.items], dtype=np.int64)

    @property
    def domains(self) -> np.ndarray:
        return np.array([item.domain for item in self.items], dtype=np.int64)

    def texts(self) -> list[str]:
        return [item.text for item in self.items]

    # ------------------------------------------------------------------ #
    def subset(self, indices: Iterable[int], name: str | None = None) -> "MultiDomainNewsDataset":
        """Return a new dataset view containing only ``indices`` (copy of list)."""
        indices = list(indices)
        items = [self.items[i] for i in indices]
        return MultiDomainNewsDataset(items, self.domain_names,
                                      name=name or f"{self.name}/subset")

    def filter_domain(self, domain: int | str) -> "MultiDomainNewsDataset":
        """Return the subset of items belonging to ``domain`` (index or name)."""
        if isinstance(domain, str):
            domain = self.domain_names.index(domain)
        indices = [i for i, item in enumerate(self.items) if item.domain == domain]
        return self.subset(indices, name=f"{self.name}/{self.domain_names[domain]}")

    def build_vocabulary(self, min_freq: int = 1, max_size: int | None = None,
                         tokenizer: WhitespaceTokenizer | None = None) -> Vocabulary:
        tokenizer = tokenizer or WhitespaceTokenizer()
        return Vocabulary.from_documents(
            (tokenizer(item.text) for item in self.items),
            min_freq=min_freq, max_size=max_size)

    def encode(self, vocab: Vocabulary, max_length: int,
               tokenizer: WhitespaceTokenizer | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Encode every item into ``(token_ids, mask)`` integer/float matrices."""
        return encode_texts(self.texts(), vocab, max_length, tokenizer=tokenizer)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Quick per-domain counts (see :mod:`repro.data.statistics` for tables)."""
        labels = self.labels
        domains = self.domains
        per_domain = {}
        for index, domain_name in enumerate(self.domain_names):
            domain_mask = domains == index
            per_domain[domain_name] = {
                "total": int(domain_mask.sum()),
                "fake": int((labels[domain_mask] == FAKE_LABEL).sum()),
                "real": int((labels[domain_mask] == REAL_LABEL).sum()),
            }
        return {"name": self.name, "size": len(self.items), "domains": per_domain}
