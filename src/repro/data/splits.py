"""Stratified train/validation/test splitting.

Splits are stratified jointly by (domain, label) so that every domain keeps its
fake/real ratio in every split — the same protocol the MDFEND / M3FEND line of
work uses for Weibo21.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import MultiDomainNewsDataset


@dataclass
class DatasetSplits:
    """Train / validation / test views of a dataset."""

    train: MultiDomainNewsDataset
    val: MultiDomainNewsDataset
    test: MultiDomainNewsDataset

    def sizes(self) -> dict[str, int]:
        return {"train": len(self.train), "val": len(self.val), "test": len(self.test)}


def stratified_split(dataset: MultiDomainNewsDataset, train_fraction: float = 0.7,
                     val_fraction: float = 0.1, seed: int = 0) -> DatasetSplits:
    """Split ``dataset`` stratified by (domain, label).

    Every (domain, label) cell is shuffled independently and sliced into
    train/val/test according to the requested fractions; cells with fewer than
    three items keep at least one item in train and one in test.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 <= val_fraction < 1.0:
        raise ValueError("val_fraction must be in [0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must be < 1")

    rng = np.random.default_rng(seed)
    labels = dataset.labels
    domains = dataset.domains
    train_idx: list[int] = []
    val_idx: list[int] = []
    test_idx: list[int] = []

    for domain in range(dataset.num_domains):
        for label in (0, 1):
            cell = np.flatnonzero((domains == domain) & (labels == label))
            if cell.size == 0:
                continue
            rng.shuffle(cell)
            n_train = int(round(train_fraction * cell.size))
            n_val = int(round(val_fraction * cell.size))
            n_train = max(1, min(n_train, cell.size - 1))
            n_val = min(n_val, cell.size - n_train - 1) if cell.size - n_train > 1 else 0
            n_val = max(0, n_val)
            train_idx.extend(cell[:n_train].tolist())
            val_idx.extend(cell[n_train:n_train + n_val].tolist())
            test_idx.extend(cell[n_train + n_val:].tolist())

    rng.shuffle(train_idx)
    rng.shuffle(val_idx)
    rng.shuffle(test_idx)
    return DatasetSplits(
        train=dataset.subset(train_idx, name=f"{dataset.name}/train"),
        val=dataset.subset(val_idx, name=f"{dataset.name}/val"),
        test=dataset.subset(test_idx, name=f"{dataset.name}/test"),
    )
