"""Vocabulary mapping tokens to integer ids."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


class Vocabulary:
    """Token ↔ id mapping with reserved padding and unknown tokens."""

    PAD_TOKEN = "<pad>"
    UNK_TOKEN = "<unk>"

    def __init__(self, tokens: Iterable[str] | None = None, min_freq: int = 1,
                 max_size: int | None = None):
        self._token_to_id: dict[str, int] = {self.PAD_TOKEN: 0, self.UNK_TOKEN: 1}
        self._id_to_token: list[str] = [self.PAD_TOKEN, self.UNK_TOKEN]
        if tokens is not None:
            self.build(tokens, min_freq=min_freq, max_size=max_size)

    # ------------------------------------------------------------------ #
    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    # ------------------------------------------------------------------ #
    def build(self, tokens: Iterable[str], min_freq: int = 1,
              max_size: int | None = None) -> "Vocabulary":
        """Populate the vocabulary from an iterable of tokens."""
        counts = Counter(tokens)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        for token, count in ranked:
            if count < min_freq:
                continue
            if max_size is not None and len(self._id_to_token) >= max_size:
                break
            self.add(token)
        return self

    @classmethod
    def from_documents(cls, documents: Iterable[Sequence[str]], min_freq: int = 1,
                       max_size: int | None = None) -> "Vocabulary":
        vocab = cls()
        vocab.build((token for doc in documents for token in doc),
                    min_freq=min_freq, max_size=max_size)
        return vocab

    def add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    # ------------------------------------------------------------------ #
    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        if 0 <= index < len(self._id_to_token):
            return self._id_to_token[index]
        return self.UNK_TOKEN

    def encode(self, tokens: Sequence[str], max_length: int | None = None,
               pad: bool = False) -> list[int]:
        """Map tokens to ids, optionally truncating and right-padding."""
        if max_length is not None:
            tokens = tokens[:max_length]
        lookup = self._token_to_id.get
        unk = self.unk_id
        ids = [lookup(token, unk) for token in tokens]
        if max_length is not None and pad and len(ids) < max_length:
            ids = ids + [self.pad_id] * (max_length - len(ids))
        return ids

    def decode(self, ids: Sequence[int], strip_pad: bool = True) -> list[str]:
        tokens = [self.id_to_token(int(index)) for index in ids]
        if strip_pad:
            tokens = [token for token in tokens if token != self.PAD_TOKEN]
        return tokens

    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """JSON-serialisable description preserving the exact id order.

        Token ids are positional (``tokens[i]`` has id ``i``), so a vocabulary
        rebuilt by :meth:`from_spec` maps every token to the same id — which is
        what makes saved pipelines reproduce the exporting model's inputs
        bit-for-bit.
        """
        return {"tokens": list(self._id_to_token)}

    @classmethod
    def from_spec(cls, spec: dict) -> "Vocabulary":
        tokens = list(spec["tokens"])
        if tokens[:2] != [cls.PAD_TOKEN, cls.UNK_TOKEN]:
            raise ValueError(
                f"vocabulary spec must start with ({cls.PAD_TOKEN!r}, {cls.UNK_TOKEN!r}); "
                f"got {tokens[:2]!r}")
        vocab = cls()
        for token in tokens[2:]:
            vocab.add(token)
        if len(vocab) != len(tokens):
            raise ValueError("vocabulary spec contains duplicate tokens")
        return vocab
