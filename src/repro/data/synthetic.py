"""Synthetic multi-domain fake-news corpora.

The paper evaluates on Weibo21 (Chinese, nine domains) and on a merged
FakeNewsNet + MM-COVID English corpus (three domains).  Neither corpus can be
downloaded in this offline environment, so this module generates *synthetic*
corpora whose **imbalance structure matches the published statistics**
(Tables I, IV and V of the paper):

* the number of news items per domain and the fake/real ratio per domain are
  reproduced exactly (scaled by ``scale``);
* each item is a bag of symbolic tokens drawn from domain-topic vocabularies,
  shared veracity-signal vocabularies, domain-conditional veracity cues,
  emotion vocabularies and style vocabularies;
* a controllable fraction of items carries *no* shared veracity signal, so a
  model can only classify them from domain-prior information — which is
  exactly the mechanism that creates the domain-bias phenomenon the paper
  studies (high FPR in fake-heavy domains, high FNR in real-heavy domains).

Because of this construction the *shape* of the paper's experiments (who is
biased, what de-biasing does, the performance/bias trade-off) is preserved even
though the text itself is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.dataset import FAKE_LABEL, REAL_LABEL, MultiDomainNewsDataset, NewsItem


# --------------------------------------------------------------------------- #
# Domain specifications from the paper                                         #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DomainSpec:
    """Number of fake and real items in one domain (Table IV / Table V)."""

    name: str
    fake: int
    real: int

    @property
    def total(self) -> int:
        return self.fake + self.real

    @property
    def fake_ratio(self) -> float:
        return self.fake / max(self.total, 1)


#: Table IV of the paper — Weibo21 per-domain fake/real counts.
WEIBO21_DOMAIN_SPECS: tuple[DomainSpec, ...] = (
    DomainSpec("science", fake=93, real=143),
    DomainSpec("military", fake=222, real=121),
    DomainSpec("education", fake=248, real=243),
    DomainSpec("disaster", fake=591, real=185),
    DomainSpec("politics", fake=546, real=306),
    DomainSpec("health", fake=515, real=485),
    DomainSpec("finance", fake=362, real=959),
    DomainSpec("entertainment", fake=440, real=1000),
    DomainSpec("society", fake=1471, real=1198),
)

#: Table V of the paper — FakeNewsNet + COVID per-domain fake/real counts.
ENGLISH_DOMAIN_SPECS: tuple[DomainSpec, ...] = (
    DomainSpec("gossipcop", fake=5067, real=16804),
    DomainSpec("politifact", fake=379, real=447),
    DomainSpec("covid", fake=1317, real=4750),
)


# --------------------------------------------------------------------------- #
# Corpus configuration                                                         #
# --------------------------------------------------------------------------- #
@dataclass
class SyntheticCorpusConfig:
    """Knobs of the generative process.

    ``signal_strength`` is the probability that an item contains tokens from
    the *shared* veracity-signal vocabulary (learnable without domain
    information).  ``domain_cue_strength`` is the probability of a weaker
    *domain-conditional* cue.  Items with neither can only be classified from
    the domain prior, which is what biased models end up doing.
    """

    name: str = "synthetic"
    domain_specs: tuple[DomainSpec, ...] = WEIBO21_DOMAIN_SPECS
    scale: float = 1.0
    seed: int = 2024
    topic_vocab_size: int = 40
    shared_signal_vocab_size: int = 24
    domain_cue_vocab_size: int = 10
    emotion_vocab_size: int = 12
    style_vocab_size: int = 8
    common_vocab_size: int = 60
    signal_strength: float = 0.78
    domain_cue_strength: float = 0.40
    emotion_strength: float = 0.65
    #: probability that the emotion / style tokens agree with the true label;
    #: below 1.0 they are helpful-but-noisy cues, so models cannot solve the
    #: ambiguous items from emotion alone and the domain-prior bias appears in
    #: every baseline (as in the paper).
    emotion_label_consistency: float = 0.78
    style_label_consistency: float = 0.75
    mean_topic_tokens: int = 9
    mean_secondary_tokens: int = 3
    mean_common_tokens: int = 5
    min_items_per_cell: int = 4
    domain_affinity_temperature: float = 1.0

    def scaled_specs(self) -> list[DomainSpec]:
        """Return domain specs with counts multiplied by ``scale`` (floored)."""
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        scaled = []
        for spec in self.domain_specs:
            fake = max(self.min_items_per_cell, int(round(spec.fake * self.scale)))
            real = max(self.min_items_per_cell, int(round(spec.real * self.scale)))
            scaled.append(DomainSpec(spec.name, fake=fake, real=real))
        return scaled


@dataclass
class CaseStudyItem:
    """A probe news item for the Figure-3 style case study."""

    item: NewsItem
    description: str = ""
    expected_bias: str = ""
    metadata: dict = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Generator                                                                    #
# --------------------------------------------------------------------------- #
class SyntheticNewsGenerator:
    """Generates a :class:`MultiDomainNewsDataset` from a corpus configuration."""

    def __init__(self, config: SyntheticCorpusConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._specs = config.scaled_specs()
        self._num_domains = len(self._specs)
        self._affinity = self._build_domain_affinity()

    # ------------------------------------------------------------------ #
    # Vocabulary helpers                                                   #
    # ------------------------------------------------------------------ #
    def _topic_token(self, domain: int, index: int) -> str:
        return f"{self._specs[domain].name}_topic{index}"

    def _shared_signal_token(self, label: int, index: int) -> str:
        prefix = "fakesig" if label == FAKE_LABEL else "realsig"
        return f"{prefix}{index}"

    def _domain_cue_token(self, domain: int, label: int, index: int) -> str:
        prefix = "fakecue" if label == FAKE_LABEL else "realcue"
        return f"{self._specs[domain].name}_{prefix}{index}"

    def _emotion_token(self, label: int, index: int) -> str:
        prefix = "emo_arousal" if label == FAKE_LABEL else "emo_neutral"
        return f"{prefix}{index}"

    def _style_token(self, label: int, index: int) -> str:
        prefix = "style_sensational" if label == FAKE_LABEL else "style_formal"
        return f"{prefix}{index}"

    def _common_token(self, index: int) -> str:
        return f"common{index}"

    # ------------------------------------------------------------------ #
    # Domain affinity: which other domains a news item may also relate to  #
    # ------------------------------------------------------------------ #
    def _build_domain_affinity(self) -> np.ndarray:
        """Ring-structured affinity so neighbouring domains overlap in content.

        The paper stresses that a news item can relate to several domains with
        different degrees of relevance (Section IV-B-2); the affinity matrix
        realises that property for the generator.
        """
        n = self._num_domains
        distance = np.abs(np.arange(n)[:, None] - np.arange(n)[None, :])
        distance = np.minimum(distance, n - distance)
        affinity = np.exp(-distance / max(self.config.domain_affinity_temperature, 1e-6))
        np.fill_diagonal(affinity, 0.0)
        affinity /= affinity.sum(axis=1, keepdims=True)
        return affinity

    # ------------------------------------------------------------------ #
    # Item generation                                                      #
    # ------------------------------------------------------------------ #
    def _zipf_choice(self, vocab_size: int, count: int) -> np.ndarray:
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        probabilities = 1.0 / ranks
        probabilities /= probabilities.sum()
        return self._rng.choice(vocab_size, size=count, p=probabilities)

    def _generate_item(self, domain: int, label: int, item_id: int,
                       force_ambiguous: bool = False) -> NewsItem:
        cfg = self.config
        rng = self._rng
        tokens: list[str] = []

        # Primary-domain topic tokens.
        n_topic = max(3, rng.poisson(cfg.mean_topic_tokens))
        tokens.extend(self._topic_token(domain, i)
                      for i in self._zipf_choice(cfg.topic_vocab_size, n_topic))

        # Secondary-domain topic tokens (fuzzy domain membership).
        secondary = int(rng.choice(self._num_domains, p=self._affinity[domain]))
        n_secondary = rng.poisson(cfg.mean_secondary_tokens)
        tokens.extend(self._topic_token(secondary, i)
                      for i in self._zipf_choice(cfg.topic_vocab_size, n_secondary))

        # Shared veracity signal (the content cue a de-biased model should use).
        has_signal = (not force_ambiguous) and rng.random() < cfg.signal_strength
        if has_signal:
            n_signal = rng.integers(3, 6)
            tokens.extend(self._shared_signal_token(label, i)
                          for i in rng.integers(0, cfg.shared_signal_vocab_size, n_signal))

        # Weaker domain-conditional veracity cue.
        has_domain_cue = (not force_ambiguous) and rng.random() < cfg.domain_cue_strength
        if has_domain_cue:
            n_cue = rng.integers(1, 3)
            tokens.extend(self._domain_cue_token(domain, label, i)
                          for i in rng.integers(0, cfg.domain_cue_vocab_size, n_cue))

        # Emotion tokens (fake news skews towards high-arousal emotion, noisily).
        if rng.random() < cfg.emotion_strength:
            emotion_label = label if rng.random() < cfg.emotion_label_consistency else 1 - label
            n_emotion = rng.integers(1, 4)
            tokens.extend(self._emotion_token(emotion_label, i)
                          for i in rng.integers(0, cfg.emotion_vocab_size, n_emotion))

        # Style tokens (noisy cue as well).
        style_label = label if rng.random() < cfg.style_label_consistency else 1 - label
        n_style = rng.integers(1, 3)
        tokens.extend(self._style_token(style_label, i)
                      for i in rng.integers(0, cfg.style_vocab_size, n_style))

        # Common / function tokens.
        n_common = max(2, rng.poisson(cfg.mean_common_tokens))
        tokens.extend(self._common_token(i)
                      for i in rng.integers(0, cfg.common_vocab_size, n_common))

        rng.shuffle(tokens)
        return NewsItem(
            text=" ".join(tokens),
            label=label,
            domain=domain,
            domain_name=self._specs[domain].name,
            item_id=item_id,
            metadata={
                "has_signal": bool(has_signal),
                "has_domain_cue": bool(has_domain_cue),
                "secondary_domain": self._specs[secondary].name,
            },
        )

    # ------------------------------------------------------------------ #
    # Public API                                                           #
    # ------------------------------------------------------------------ #
    def generate(self) -> MultiDomainNewsDataset:
        """Generate the full corpus with the configured per-domain counts."""
        items: list[NewsItem] = []
        item_id = 0
        for domain, spec in enumerate(self._specs):
            for label, count in ((FAKE_LABEL, spec.fake), (REAL_LABEL, spec.real)):
                for _ in range(count):
                    items.append(self._generate_item(domain, label, item_id))
                    item_id += 1
        order = self._rng.permutation(len(items))
        items = [items[i] for i in order]
        domain_names = [spec.name for spec in self._specs]
        return MultiDomainNewsDataset(items, domain_names, name=self.config.name)

    def sample_item(self, domain_name: str, label: int, item_id: int,
                    force_ambiguous: bool = False) -> NewsItem:
        """One extra item from a configured domain (stream-schedule hook).

        Draws from the generator's single RNG stream, so a schedule built by
        interleaving :meth:`sample_item` calls after :meth:`generate` is
        deterministic from the corpus seed.  ``force_ambiguous=True`` drops
        the shared veracity signal *and* the domain cue — the item is then
        classifiable only from its domain prior, which is how the drift
        scenarios manufacture windows whose error rates diverge.
        """
        names = [spec.name for spec in self._specs]
        if domain_name not in names:
            raise ValueError(
                f"unknown domain '{domain_name}'; configured domains: {names}")
        return self._generate_item(names.index(domain_name), label, item_id,
                                   force_ambiguous=force_ambiguous)

    def sample_novel_item(self, name: str, label: int, item_id: int,
                          domain: int = -1) -> NewsItem:
        """An item from a domain that did not exist at corpus-build time.

        Topic tokens are ``{name}_topic{i}`` — out-of-vocabulary for any
        vocabulary built before onboarding, so they encode to UNK — while the
        shared veracity signal, emotion, style and common tokens come from
        the in-vocab pools: the only learnable content is the cross-domain
        signal, exactly the situation a few-shot onboarded domain is in.
        ``domain`` is the integer index the caller assigned the new domain
        (unknown to this generator's specs).
        """
        cfg = self.config
        rng = self._rng
        tokens: list[str] = []
        n_topic = max(3, rng.poisson(cfg.mean_topic_tokens))
        tokens.extend(f"{name}_topic{i}"
                      for i in self._zipf_choice(cfg.topic_vocab_size, n_topic))
        n_signal = rng.integers(3, 6)
        tokens.extend(self._shared_signal_token(label, i)
                      for i in rng.integers(0, cfg.shared_signal_vocab_size, n_signal))
        if rng.random() < cfg.emotion_strength:
            emotion_label = label if rng.random() < cfg.emotion_label_consistency else 1 - label
            tokens.extend(self._emotion_token(emotion_label, i)
                          for i in rng.integers(0, cfg.emotion_vocab_size,
                                                rng.integers(1, 4)))
        style_label = label if rng.random() < cfg.style_label_consistency else 1 - label
        tokens.extend(self._style_token(style_label, i)
                      for i in rng.integers(0, cfg.style_vocab_size,
                                            rng.integers(1, 3)))
        n_common = max(2, rng.poisson(cfg.mean_common_tokens))
        tokens.extend(self._common_token(i)
                      for i in rng.integers(0, cfg.common_vocab_size, n_common))
        rng.shuffle(tokens)
        return NewsItem(
            text=" ".join(tokens),
            label=label,
            domain=domain,
            domain_name=name,
            item_id=item_id,
            metadata={"novel_domain": True},
        )

    def generate_case_study(self) -> list[CaseStudyItem]:
        """Probe items mirroring the three cases of Figure 3.

        Each probe is a *real* news item without a shared veracity signal from a
        domain whose prior strongly disagrees with its label, so biased models
        tend to misclassify it while a de-biased model should not.
        """
        probes: list[CaseStudyItem] = []
        wanted = [
            ("entertainment", REAL_LABEL,
             "Real entertainment news (fake-light domain, ambiguous content)",
             "domain prior pushes prediction towards real with low confidence"),
            ("politics", REAL_LABEL,
             "Real politics news (fake-heavy domain, ambiguous content)",
             "domain prior pushes prediction towards fake"),
            ("disaster", REAL_LABEL,
             "Real disaster news (fake-heavy domain, ambiguous content)",
             "domain prior pushes prediction towards fake"),
        ]
        names = [spec.name for spec in self._specs]
        for position, (domain_name, label, description, bias) in enumerate(wanted):
            if domain_name not in names:
                domain_name = names[position % len(names)]
            domain = names.index(domain_name)
            item = self._generate_item(domain, label, item_id=10_000_000 + position,
                                       force_ambiguous=True)
            probes.append(CaseStudyItem(item=item, description=description,
                                        expected_bias=bias))
        return probes


# --------------------------------------------------------------------------- #
# Convenience constructors                                                     #
# --------------------------------------------------------------------------- #
def make_weibo21_like(scale: float = 1.0, seed: int = 2024,
                      **overrides) -> MultiDomainNewsDataset:
    """Synthetic corpus with the Weibo21 (Table IV) imbalance structure."""
    config = SyntheticCorpusConfig(name="weibo21-like", domain_specs=WEIBO21_DOMAIN_SPECS,
                                   scale=scale, seed=seed)
    config = replace(config, **overrides) if overrides else config
    return SyntheticNewsGenerator(config).generate()


def make_english_like(scale: float = 1.0, seed: int = 2024,
                      **overrides) -> MultiDomainNewsDataset:
    """Synthetic corpus with the FakeNewsNet+COVID (Table V) imbalance structure."""
    config = SyntheticCorpusConfig(name="english-like", domain_specs=ENGLISH_DOMAIN_SPECS,
                                   scale=scale, seed=seed)
    config = replace(config, **overrides) if overrides else config
    return SyntheticNewsGenerator(config).generate()


def make_case_study_probes(dataset_seed: int = 2024,
                           specs: tuple[DomainSpec, ...] = WEIBO21_DOMAIN_SPECS,
                           scale: float = 1.0) -> list[CaseStudyItem]:
    """Case-study probes drawn from the same generative process as the corpus."""
    config = SyntheticCorpusConfig(name="case-study", domain_specs=specs,
                                   scale=scale, seed=dataset_seed + 7)
    return SyntheticNewsGenerator(config).generate_case_study()
