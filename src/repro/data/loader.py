"""Batching: :class:`Batch` containers and the :class:`DataLoader`.

The loader encodes the whole dataset once (token ids, mask, labels, domains)
and optionally precomputes *feature channels* — e.g. the frozen pre-trained
encoder output, style features or emotion features — so that iterating over
epochs is just array slicing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.data.dataset import MultiDomainNewsDataset, NewsItem
from repro.data.tokenizer import WhitespaceTokenizer
from repro.data.vocab import Vocabulary
from repro.tensor import get_default_dtype

#: A feature extractor receives the news items plus the encoded token ids and
#: mask, and returns one array with the batch dimension first.
FeatureExtractor = Callable[[Sequence[NewsItem], np.ndarray, np.ndarray], np.ndarray]


@dataclass
class Batch:
    """One mini-batch of encoded news items.

    ``indices`` carries the *absolute dataset positions* of the rows in this
    batch (``batch.token_ids[i] == loader.token_ids[batch.indices[i]]``).
    They are stable across epochs and iteration modes — shuffling permutes
    which positions land in a batch, never what a position means — which is
    the contract that lets per-sample caches (e.g.
    :class:`repro.core.distill.TeacherCache`) precompute over
    :meth:`DataLoader.iter_eval` once and serve any later batch by gathering
    on ``batch.indices``.
    """

    token_ids: np.ndarray
    mask: np.ndarray
    labels: np.ndarray
    domains: np.ndarray
    indices: np.ndarray
    features: dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.token_ids.shape[0])

    def feature(self, name: str) -> np.ndarray:
        if name not in self.features:
            raise KeyError(
                f"batch has no feature channel '{name}'; available: {sorted(self.features)}")
        return self.features[name]


class DataLoader:
    """Iterates a :class:`MultiDomainNewsDataset` in shuffled mini-batches."""

    def __init__(self, dataset: MultiDomainNewsDataset, vocab: Vocabulary,
                 max_length: int = 24, batch_size: int = 32, shuffle: bool = True,
                 seed: int = 0,
                 feature_extractors: dict[str, FeatureExtractor] | None = None,
                 tokenizer: WhitespaceTokenizer | None = None,
                 channels: Sequence | None = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.vocab = vocab
        self.max_length = max_length
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._tokenizer = tokenizer or WhitespaceTokenizer()

        self.token_ids, self.mask = dataset.encode(vocab, max_length, tokenizer=self._tokenizer)
        self.labels = dataset.labels
        self.domains = dataset.domains
        # Store floating arrays in the engine's compute dtype once, so the
        # models never re-cast per batch (matters on the float32 fast path).
        compute_dtype = get_default_dtype()
        self.mask = self.mask.astype(compute_dtype, copy=False)
        self.channels = self._resolve_channels(channels)
        extractors = dict(feature_extractors or {})
        for channel in self.channels:
            if channel.name in extractors:
                raise ValueError(
                    f"feature channel '{channel.name}' passed both as a channel "
                    "and in feature_extractors")
            extractors[channel.name] = channel.as_extractor()
        self.features: dict[str, np.ndarray] = {}
        for name, extractor in extractors.items():
            values = np.asarray(extractor(dataset.items, self.token_ids, self.mask))
            if values.shape[0] != len(dataset):
                raise ValueError(
                    f"feature extractor '{name}' returned {values.shape[0]} rows "
                    f"for a dataset of size {len(dataset)}")
            if np.issubdtype(values.dtype, np.floating):
                values = values.astype(compute_dtype, copy=False)
            self.features[name] = values
        # Identity index array shared by every deterministic iteration: eval
        # batches slice views out of it instead of allocating ranges per batch.
        self._identity = np.arange(len(dataset))

    @staticmethod
    def _resolve_channels(channels: Sequence | None) -> list:
        """Resolve ``channels`` entries to :class:`FeatureChannel` instances.

        Accepts channel instances directly or spec dicts resolved through the
        :data:`repro.encoders.FEATURE_CHANNELS` registry, so a loader can be
        built straight from a pipeline manifest's channel specs.
        """
        if not channels:
            return []
        from repro.encoders.channels import FeatureChannel, build_feature_channel

        resolved = []
        for entry in channels:
            if isinstance(entry, FeatureChannel):
                resolved.append(entry)
            elif isinstance(entry, dict):
                resolved.append(build_feature_channel(entry))
            else:
                raise TypeError(
                    f"channels entries must be FeatureChannel instances or spec "
                    f"dicts, got {type(entry).__name__}")
        return resolved

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(np.ceil(len(self.dataset) / self.batch_size))

    @property
    def num_domains(self) -> int:
        return self.dataset.num_domains

    @property
    def tokenizer(self) -> WhitespaceTokenizer:
        """The tokenizer the dataset was encoded with (for export/serving)."""
        return self._tokenizer

    @property
    def num_samples(self) -> int:
        """Number of rows every ``batch.indices`` entry indexes into."""
        return len(self.dataset)

    def _slice(self, indices: np.ndarray | slice) -> Batch:
        """Build a batch for ``indices``.

        Contiguous selections are passed as ``slice`` objects so every array
        (token ids, mask, labels, domains and *all* feature channels) is a
        zero-copy view; shuffled training batches use fancy indexing.
        """
        return Batch(
            token_ids=self.token_ids[indices],
            mask=self.mask[indices],
            labels=self.labels[indices],
            domains=self.domains[indices],
            indices=self._identity[indices] if isinstance(indices, slice) else indices,
            features={name: values[indices] for name, values in self.features.items()},
        )

    def reseed(self, seed: int | None = None) -> None:
        """Restore the shuffle stream to its constructor state (or ``seed``).

        The epoch shuffle draws from a mutable generator, so the batch order
        seen by a training run depends on how many epochs were consumed
        before it.  Callers that share one loader across independent runs
        (e.g. the benchmark fixtures) reseed between runs so every run sees
        the same deterministic stream regardless of what ran earlier.
        """
        if seed is not None:
            self._seed = seed
        self._rng = np.random.default_rng(self._seed)

    def rng_state(self) -> dict:
        """JSON-serialisable state of the shuffle stream (for training snapshots)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore the shuffle stream to a state from :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    def epoch_order(self) -> np.ndarray:
        """Materialise one epoch's index permutation, advancing the shuffle stream.

        Consumes exactly the randomness :func:`repro.utils.batched_indices`
        would (one ``rng.shuffle`` over ``arange(n)``), so iterating via
        ``iter_from(epoch_order())`` is bit-identical to ``iter(loader)``.
        Resumable trainers snapshot the returned array: after a mid-epoch
        crash the permutation cannot be re-derived, because the stream has
        already advanced past it.
        """
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        return order

    def iter_from(self, order: np.ndarray, start_batch: int = 0) -> Iterator[Batch]:
        """Iterate batches of ``order`` starting at batch ``start_batch``.

        Batch boundaries match :func:`repro.utils.batched_indices` exactly
        (size ``batch_size``, last batch ragged), so a resumed epoch sees the
        same batch *shapes* as the uninterrupted run — the property that keeps
        BLAS results bit-identical across a crash/resume boundary.
        """
        if len(order) != len(self.dataset):
            raise ValueError(
                f"epoch order has {len(order)} entries for a dataset of "
                f"{len(self.dataset)} rows; was the loader rebuilt over "
                "different data?")
        size = self.batch_size
        for index in range(start_batch, len(self)):
            yield self._slice(order[index * size:(index + 1) * size])

    def __iter__(self) -> Iterator[Batch]:
        yield from self.iter_from(self.epoch_order())

    def full_batch(self) -> Batch:
        """Return the entire dataset as a single batch (evaluation helper)."""
        return self._slice(slice(0, len(self.dataset)))

    def window(self, start: int, stop: int) -> Batch:
        """Contiguous zero-copy batch of rows ``[start, stop)``.

        ``start``/``stop`` are absolute dataset positions (the same space as
        ``Batch.indices``).  This is the precompute entry point for
        per-sample caches: :class:`repro.core.distill.TeacherCache` walks the
        dataset in fixed-size windows so every row is forwarded with the same
        batch shape a full training batch uses.
        """
        if not 0 <= start <= stop <= len(self.dataset):
            raise ValueError(
                f"window [{start}, {stop}) outside dataset of {len(self.dataset)} rows")
        return self._slice(slice(start, stop))

    def iter_eval(self, batch_size: int | None = None) -> Iterator[Batch]:
        """Deterministic, unshuffled iteration (for evaluation).

        Eval order is contiguous, so each batch reuses views of the encoded
        arrays and precomputed feature channels — no per-batch copies and no
        per-batch ``arange`` allocations.
        """
        size = batch_size or self.batch_size
        total = len(self.dataset)
        for start in range(0, total, size):
            yield self._slice(slice(start, min(start + size, total)))
