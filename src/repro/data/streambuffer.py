"""A ring buffer of fresh stream items over an existing :class:`DataLoader`.

Online adaptation fine-tunes the student on recent labeled traffic.  Rather
than rebuilding a loader per adaptation (which would re-encode the whole
corpus and drop every precomputed teacher output),
:class:`StreamWindowBuffer` overwrites loader rows **in place**: each write
re-encodes the new items through the same :func:`repro.data.encode_texts` +
feature-channel path the loader used at construction, lands them at the ring
cursor, and returns the absolute row indices it touched — exactly the
handle :meth:`repro.core.DTDBDTrainer.invalidate_teacher_caches` needs to
invalidate only the :class:`~repro.core.TeacherCache` windows containing
fresh data.

The loader must have been built with explicit feature ``channels`` (not bare
``feature_extractors``): channels are retained on the loader and can
recompute rows on demand, while ad-hoc extractor callables are consumed at
construction and gone.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import FAKE_LABEL, REAL_LABEL, NewsItem, encode_texts
from repro.data.loader import DataLoader


class StreamWindowBuffer:
    """Overwrite rows of a loader with fresh items, oldest-first."""

    def __init__(self, loader: DataLoader):
        channel_names = {channel.name for channel in loader.channels}
        if set(loader.features) != channel_names:
            raise ValueError(
                "StreamWindowBuffer needs a loader whose every feature comes "
                "from a FeatureChannel (so rows can be recomputed in place); "
                f"this loader has features {sorted(loader.features)} but "
                f"channels {sorted(channel_names)} — build it with channels=, "
                "not feature_extractors=")
        self.loader = loader
        self._cursor = 0
        #: total items ever written (diagnostics; wraps are written -
        #: capacity overwrites)
        self.written = 0

    @property
    def capacity(self) -> int:
        return self.loader.num_samples

    @property
    def cursor(self) -> int:
        """The row the next write lands on."""
        return self._cursor

    def write(self, items: "list[NewsItem]") -> np.ndarray:
        """Overwrite the next ``len(items)`` ring rows; returns touched indices.

        Each item is validated (label in ``{REAL, FAKE}``, domain inside the
        loader dataset's current domain count — which grows on continual
        onboarding), encoded with the loader's vocab/max_length/tokenizer,
        and run through every loader channel so the overwritten rows are
        indistinguishable from rows encoded at construction.  One write of
        more than ``capacity`` items is refused: the ring would overwrite its
        own fresh data mid-call.
        """
        if not items:
            return np.empty(0, dtype=np.int64)
        if len(items) > self.capacity:
            raise ValueError(
                f"cannot write {len(items)} items into a {self.capacity}-row "
                "ring in one call; split the write or use a larger loader")
        num_domains = self.loader.dataset.num_domains
        for item in items:
            if not isinstance(item, NewsItem):
                raise TypeError(
                    f"write expects NewsItem instances, got {type(item).__name__}")
            if item.label not in (REAL_LABEL, FAKE_LABEL):
                raise ValueError(
                    f"item {item.item_id} has invalid label {item.label}")
            if not 0 <= item.domain < num_domains:
                raise ValueError(
                    f"item {item.item_id} has domain {item.domain} outside "
                    f"the dataset's {num_domains} domains")

        loader = self.loader
        indices = np.array([(self._cursor + offset) % self.capacity
                            for offset in range(len(items))], dtype=np.int64)
        token_ids, mask = encode_texts([item.text for item in items],
                                       loader.vocab, loader.max_length,
                                       tokenizer=loader.tokenizer)
        mask = mask.astype(loader.mask.dtype, copy=False)
        loader.token_ids[indices] = token_ids
        loader.mask[indices] = mask
        loader.labels[indices] = np.array([item.label for item in items],
                                          dtype=loader.labels.dtype)
        loader.domains[indices] = np.array([item.domain for item in items],
                                           dtype=loader.domains.dtype)
        for channel in loader.channels:
            values = np.asarray(channel.as_extractor()(items, token_ids, mask))
            if values.shape[0] != len(items):
                raise ValueError(
                    f"feature channel '{channel.name}' returned "
                    f"{values.shape[0]} rows for {len(items)} items")
            target = loader.features[channel.name]
            if np.issubdtype(values.dtype, np.floating):
                values = values.astype(target.dtype, copy=False)
            target[indices] = values
        for index, item in zip(indices, items):
            loader.dataset.items[int(index)] = item
        self._cursor = int((self._cursor + len(items)) % self.capacity)
        self.written += len(items)
        return indices


__all__ = ["StreamWindowBuffer"]
