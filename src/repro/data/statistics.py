"""Dataset statistics tables (Table I, Table IV and Table V of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import FAKE_LABEL, MultiDomainNewsDataset


@dataclass
class DomainStatistics:
    """Counts and ratios for a single domain."""

    name: str
    fake: int
    real: int

    @property
    def total(self) -> int:
        return self.fake + self.real

    @property
    def fake_percentage(self) -> float:
        return 100.0 * self.fake / max(self.total, 1)


def domain_statistics(dataset: MultiDomainNewsDataset) -> list[DomainStatistics]:
    """Per-domain fake/real counts (rows of Table IV / Table V)."""
    labels = dataset.labels
    domains = dataset.domains
    rows = []
    for index, name in enumerate(dataset.domain_names):
        mask = domains == index
        fake = int((labels[mask] == FAKE_LABEL).sum())
        real = int(mask.sum()) - fake
        rows.append(DomainStatistics(name=name, fake=fake, real=real))
    return rows


def dataset_statistics_table(dataset: MultiDomainNewsDataset) -> dict:
    """Full Table-I style summary: %Fake and %News per domain plus averages."""
    rows = domain_statistics(dataset)
    total_news = sum(row.total for row in rows)
    domains = []
    for row in rows:
        domains.append({
            "domain": row.name,
            "fake": row.fake,
            "real": row.real,
            "total": row.total,
            "pct_fake": round(row.fake_percentage, 1),
            "pct_news": round(100.0 * row.total / max(total_news, 1), 1),
        })
    total_fake = sum(row.fake for row in rows)
    average = {
        "pct_fake": round(100.0 * total_fake / max(total_news, 1), 1),
        "pct_news": round(100.0 / max(len(rows), 1), 1),
    }
    return {
        "dataset": dataset.name,
        "total": total_news,
        "total_fake": total_fake,
        "total_real": total_news - total_fake,
        "domains": domains,
        "average": average,
    }


def imbalance_summary(dataset: MultiDomainNewsDataset) -> dict:
    """Quantify the two imbalances the paper highlights in Section I.

    Returns the spread of the per-domain share of news (%News) and of the
    per-domain fake ratio (%Fake), i.e. how unbalanced the corpus is.
    """
    table = dataset_statistics_table(dataset)
    news_shares = [row["pct_news"] for row in table["domains"]]
    fake_ratios = [row["pct_fake"] for row in table["domains"]]
    return {
        "news_share_min": min(news_shares),
        "news_share_max": max(news_shares),
        "fake_ratio_min": min(fake_ratios),
        "fake_ratio_max": max(fake_ratios),
        "news_share_spread": round(max(news_shares) - min(news_shares), 1),
        "fake_ratio_spread": round(max(fake_ratios) - min(fake_ratios), 1),
    }
