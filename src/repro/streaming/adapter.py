"""Incremental student adaptation and continual domain onboarding.

The :class:`OnlineAdapter` owns the *training copy* of the served model: its
``pipeline.model`` is fine-tuned in place, and every adaptation ends with an
atomic checksummed re-export of the pipeline artifact (via
:func:`repro.serve.save_pipeline` / ``reliability.durable``) that a
:class:`repro.serve.Predictor` hot-reloads from disk.  Because pipeline
save/load round-trips are bit-exact, the served weights equal the training
copy exactly.

Two reactions are supported:

* :meth:`adapt` — fold buffered labeled feedback into the training loader
  through the :class:`repro.data.StreamWindowBuffer` ring (touched rows
  invalidate only the :class:`~repro.core.TeacherCache` windows containing
  them — in DTDBD mode untouched windows keep serving their original
  arrays), then run ``epochs_per_adaptation`` incremental epochs with the
  existing :class:`~repro.core.Trainer` / :class:`~repro.core.DTDBDTrainer`
  machinery, snapshot if configured, and re-export.
* :meth:`onboard_domain` — grow the student (and, in DTDBD mode, both frozen
  teachers) by one domain with copy-initialised weights
  (:func:`repro.models.expand_domains`), extend the domain vocabulary, and
  re-export — existing domains' outputs stay bit-identical to the
  pre-expansion model.  The trainer is rebuilt afterwards (Adam moments are
  shaped for the old parameters) with the teacher caches transplanted: a
  frozen teacher's cached rows survive expansion unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dtdbd import DTDBDConfig, DTDBDTrainer
from repro.core.trainer import Trainer, TrainerConfig
from repro.data.dataset import NewsItem
from repro.data.loader import DataLoader
from repro.data.streambuffer import StreamWindowBuffer
from repro.models.base import FakeNewsDetector
from repro.models.expand import expand_domains
from repro.serve.pipeline import Pipeline, save_pipeline
from repro.tensor import default_dtype


@dataclass
class AdapterConfig:
    """Knobs of the :class:`OnlineAdapter`."""

    #: directory the re-exported pipeline artifact lands in (hot-reload source)
    export_path: str
    #: incremental epochs per adaptation
    epochs_per_adaptation: int = 1
    #: labeled feedback items required before :meth:`adapt` actually trains
    min_feedback: int = 8
    #: existing domain whose weights seed an onboarded domain
    donor_domain: int = 0
    #: optional trainer snapshot written after each adaptation (crash-resume)
    snapshot_path: str | None = None

    def __post_init__(self):
        if not self.export_path:
            raise ValueError("AdapterConfig.export_path is required")
        if self.epochs_per_adaptation < 1:
            raise ValueError("epochs_per_adaptation must be >= 1")
        if self.min_feedback < 1:
            raise ValueError("min_feedback must be >= 1")


@dataclass
class AdaptationRecord:
    """What one :meth:`OnlineAdapter.adapt` call did (deterministic fields)."""

    ordinal: int
    reason: str
    items: int
    touched_rows: int
    epochs: int
    losses: list[float]
    fingerprint: str

    def as_dict(self) -> dict:
        return {
            "ordinal": self.ordinal,
            "reason": self.reason,
            "items": self.items,
            "touched_rows": self.touched_rows,
            "epochs": self.epochs,
            "losses": list(self.losses),
            "fingerprint": self.fingerprint,
        }


class OnlineAdapter:
    """Reacts to drift / feedback by fine-tuning and re-exporting the student."""

    def __init__(self, pipeline: Pipeline, loader: DataLoader,
                 config: AdapterConfig,
                 unbiased_teacher: FakeNewsDetector | None = None,
                 clean_teacher: FakeNewsDetector | None = None,
                 trainer_config: TrainerConfig | None = None,
                 dtdbd_config: DTDBDConfig | None = None):
        if loader.dataset.domain_names != pipeline.domain_names[:len(
                loader.dataset.domain_names)]:
            raise ValueError(
                "loader and pipeline disagree on domain names: "
                f"{loader.dataset.domain_names} vs {pipeline.domain_names}")
        self.pipeline = pipeline
        self.loader = loader
        self.config = config
        self.buffer = StreamWindowBuffer(loader)
        self.unbiased_teacher = unbiased_teacher
        self.clean_teacher = clean_teacher
        self._trainer_config = trainer_config
        self._dtdbd_config = dtdbd_config
        self._feedback: list[NewsItem] = []
        self.adaptations: list[AdaptationRecord] = []
        self.onboardings: list[dict] = []
        self.trainer = self._build_trainer()
        # The first export makes the artifact exist before any traffic, so a
        # predictor can be pointed at export_path from ordinal zero.
        save_pipeline(self.pipeline, self.config.export_path)

    @property
    def distilled(self) -> bool:
        """Whether adaptations run the dual-teacher (DTDBD) loss."""
        return (self.unbiased_teacher is not None
                or self.clean_teacher is not None)

    def _build_trainer(self):
        if self.distilled:
            return DTDBDTrainer(self.pipeline.model, self.unbiased_teacher,
                                self.clean_teacher, self._dtdbd_config)
        return Trainer(self.pipeline.model, self._trainer_config)

    # ------------------------------------------------------------------ #
    # Labeled feedback                                                     #
    # ------------------------------------------------------------------ #
    def ingest(self, item: NewsItem) -> None:
        """Buffer one labeled item for the next adaptation."""
        self._feedback.append(item)

    @property
    def feedback_count(self) -> int:
        return len(self._feedback)

    def feedback_for_domain(self, name: str) -> int:
        """Buffered labeled items belonging to domain ``name`` (by name)."""
        return sum(1 for item in self._feedback if item.domain_name == name)

    def ready(self) -> bool:
        """Whether enough feedback is buffered for :meth:`adapt` to train."""
        return len(self._feedback) >= self.config.min_feedback

    # ------------------------------------------------------------------ #
    # Incremental fine-tuning                                              #
    # ------------------------------------------------------------------ #
    def adapt(self, reason: str, ordinal: int) -> AdaptationRecord | None:
        """Fold buffered feedback in, fine-tune, snapshot, re-export.

        Returns the adaptation record, or ``None`` when no feedback is
        buffered (there is nothing to learn from; drift without labels waits
        for labels).  The re-export is atomic and checksummed; the returned
        record carries the new artifact fingerprint for hot-reload
        verification.
        """
        if not self._feedback:
            return None
        items, self._feedback = self._feedback, []
        if len(items) > self.buffer.capacity:
            # Ring semantics: a single oversized fold keeps the newest rows —
            # the older ones would be overwritten inside the ring anyway.
            items = items[-self.buffer.capacity:]
        touched = self.buffer.write(items)
        if self.distilled:
            # Fresh rows invalidate exactly the cache windows containing
            # them; every other window keeps serving its original arrays.
            self.trainer.invalidate_teacher_caches(touched)
        losses: list[float] = []
        with default_dtype(self.pipeline.dtype):
            for _ in range(self.config.epochs_per_adaptation):
                losses.append(float(self.trainer.train_epoch(self.loader)))
        self.pipeline.model.eval()
        if self.config.snapshot_path is not None:
            self.trainer.snapshot(self.config.snapshot_path)
        save_pipeline(self.pipeline, self.config.export_path)
        record = AdaptationRecord(
            ordinal=ordinal, reason=reason, items=len(items),
            touched_rows=int(touched.size),
            epochs=self.config.epochs_per_adaptation, losses=losses,
            fingerprint=self.pipeline.fingerprint())
        self.adaptations.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Continual domain onboarding                                          #
    # ------------------------------------------------------------------ #
    def onboard_domain(self, name: str, ordinal: int) -> dict:
        """Register unseen domain ``name``: expand models, re-export.

        Grows the student's domain axis (and both teachers' in DTDBD mode —
        expansion only rewrites parameter data, so frozen teachers stay
        frozen) with weights copy-initialised from ``donor_domain``, appends
        ``name`` to the loader's and pipeline's domain vocabulary, rebuilds
        the trainer (optimizer moments are shaped for the old parameters)
        while transplanting the teacher caches (a frozen teacher's cached
        outputs for existing rows are unchanged by expansion), and atomically
        re-exports.  Existing domains' predictions are bit-identical before
        and after — pinned by ``tests/streaming/``.

        The new domain starts as a behavioural clone of the donor; call
        :meth:`ingest` with its first labeled items and then :meth:`adapt`
        to warm it up.
        """
        if name in self.loader.dataset.domain_names:
            raise ValueError(f"domain '{name}' already exists")
        new_count = self.pipeline.model_config.num_domains + 1
        donor = self.config.donor_domain
        grown = expand_domains(self.pipeline.model, new_count, donor=donor)
        for teacher in (self.unbiased_teacher, self.clean_teacher):
            if teacher is not None and teacher.config.num_domains < new_count:
                expand_domains(teacher, new_count, donor=donor)
        self.loader.dataset.domain_names.append(name)
        if name not in self.pipeline.domain_names:
            self.pipeline.domain_names.append(name)
        self.pipeline.model_config = self.pipeline.model.config

        old_trainer = self.trainer
        self.trainer = self._build_trainer()
        if self.distilled:
            # Teacher outputs for every existing row are unchanged by the
            # expansion, so the precomputed caches carry over as-is.
            self.trainer._teacher_caches = old_trainer._teacher_caches

        self.pipeline.model.eval()
        save_pipeline(self.pipeline, self.config.export_path)
        record = {
            "ordinal": ordinal,
            "domain": name,
            "domain_index": new_count - 1,
            "num_domains": new_count,
            "donor": donor,
            "grown": list(grown),
            "fingerprint": self.pipeline.fingerprint(),
        }
        self.onboardings.append(record)
        return record


__all__ = ["AdapterConfig", "AdaptationRecord", "OnlineAdapter"]
