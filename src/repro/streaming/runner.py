"""The online loop: score a stream, watch for drift, adapt, onboard.

:class:`StreamRunner` consumes an ordered list of
:class:`~repro.streaming.events.StreamEvent`\\ s and drives the whole
subsystem:

1. every event is scored through the existing
   :class:`~repro.serve.Predictor` / :class:`~repro.serve.MicroBatcher`
   path (micro-batching amortises per-event overhead exactly as in serving);
2. scored events feed the :class:`~repro.streaming.DriftMonitor`'s rolling
   windows, labeled events additionally become adapter feedback;
3. a fired :class:`~repro.streaming.events.DriftEvent` drains the batcher
   (in-flight traffic is scored by the *old* model — serving semantics),
   triggers :meth:`OnlineAdapter.adapt`, hot-reloads the predictor from the
   re-exported artifact, and resets the monitor's references (the model
   changed, so old score distributions are no baseline);
4. an event from an unknown domain triggers continual onboarding: drain,
   :meth:`OnlineAdapter.onboard_domain`, hot reload, register with the
   monitor — then the event is scored like any other, and once enough
   labeled samples of the new domain arrive it is warmed up with a regular
   adaptation.

Determinism: the micro-batcher runs with an infinite latency budget, so
flushes happen only on "full" and "drain" — batch composition is a pure
function of the event order, never of wall-clock.  Everything downstream
(windows, thresholds, training) is seeded, so one schedule replays to
byte-identical drift logs and bit-identical final weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.data.dataset import NewsItem
from repro.serve.microbatch import MicroBatcher, Ticket
from repro.serve.predictor import Predictor
from repro.streaming.adapter import OnlineAdapter
from repro.streaming.events import DriftEvent, StreamEvent, drift_log_text
from repro.streaming.monitor import DriftMonitor


@dataclass
class StreamConfig:
    """Knobs of the :class:`StreamRunner`."""

    #: micro-batch width (flushes are "full"/"drain" only — deterministic)
    max_batch: int = 16
    #: react to fired drift events with an adaptation (needs an adapter)
    adapt_on_drift: bool = True
    #: also adapt whenever buffered feedback alone reaches the adapter's
    #: ``min_feedback`` (label-driven adaptation without a drift signal)
    adapt_on_feedback: bool = False
    #: labeled events an onboarded domain needs before its warm-up adaptation
    warmup_min_labeled: int = 4

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.warmup_min_labeled < 1:
            raise ValueError("warmup_min_labeled must be >= 1")


@dataclass
class StreamReport:
    """What one :meth:`StreamRunner.run` did, in JSON-able deterministic form."""

    events: int = 0
    served: int = 0
    failed: int = 0
    skipped_unknown_domain: int = 0
    served_by_domain: dict = field(default_factory=dict)
    drift_events: list = field(default_factory=list)
    adaptations: list = field(default_factory=list)
    onboardings: list = field(default_factory=list)
    final_fingerprint: str = ""

    @property
    def drift_log(self) -> str:
        """Byte-stable JSON-lines rendering of the drift events."""
        return drift_log_text([DriftEvent.from_dict(entry)
                               for entry in self.drift_events])

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "served": self.served,
            "failed": self.failed,
            "skipped_unknown_domain": self.skipped_unknown_domain,
            "served_by_domain": dict(self.served_by_domain),
            "drift_events": list(self.drift_events),
            "adaptations": list(self.adaptations),
            "onboardings": list(self.onboardings),
            "final_fingerprint": self.final_fingerprint,
        }


class StreamRunner:
    """Drive predictor + monitor (+ optional adapter) over an event stream."""

    def __init__(self, predictor: Predictor, monitor: DriftMonitor,
                 adapter: OnlineAdapter | None = None,
                 config: StreamConfig | None = None):
        self.predictor = predictor
        self.monitor = monitor
        self.adapter = adapter
        self.config = config or StreamConfig()
        # Infinite latency budget: flush on "full"/"drain" only, so batch
        # composition never depends on wall-clock.
        self.batcher = MicroBatcher(predictor, max_batch=self.config.max_batch,
                                    max_latency_ms=math.inf)
        self._inflight: "list[tuple[StreamEvent, Ticket]]" = []
        self._pending_reasons: list[str] = []
        self._warmup_pending: set[str] = set()
        self._last_ordinal = -1
        self.report = StreamReport()

    # ------------------------------------------------------------------ #
    def run(self, events: "list[StreamEvent]") -> StreamReport:
        """Process ``events`` in order; returns the final report."""
        previous = None
        for event in events:
            if previous is not None and event.ordinal <= previous:
                raise ValueError(
                    f"event ordinals must be strictly increasing; got "
                    f"{event.ordinal} after {previous}")
            previous = event.ordinal
            if not self._ensure_domain(event):
                self.report.skipped_unknown_domain += 1
                continue
            ticket = self.batcher.submit(event.text, domain=event.domain)
            self._inflight.append((event, ticket))
            self._process_resolved()
            self._maybe_adapt()
        self._drain()
        self._maybe_adapt(final=True)
        self._finish_report()
        return self.report

    # ------------------------------------------------------------------ #
    def _ensure_domain(self, event: StreamEvent) -> bool:
        """Make ``event.domain`` servable; returns False to skip the event."""
        if event.domain in self.predictor.pipeline.domain_names:
            return True
        if self.adapter is None:
            return False
        # Onboard: finish in-flight traffic on the old model first, then
        # expand, re-export, hot-reload and start tracking.
        self._drain()
        record = self.adapter.onboard_domain(event.domain, event.ordinal)
        self.predictor.reload(self.adapter.config.export_path)
        self.monitor.register_domain(event.domain)
        self._warmup_pending.add(event.domain)
        self.report.onboardings.append(record)
        return True

    def _process_resolved(self) -> None:
        """Consume the resolved prefix of in-flight tickets, in event order."""
        while self._inflight and self._inflight[0][1].done:
            event, ticket = self._inflight.pop(0)
            self._last_ordinal = event.ordinal
            prediction = ticket.result
            self.report.events += 1
            if not prediction.ok:
                self.report.failed += 1
                continue
            self.report.served += 1
            fired = self.monitor.observe(
                event.ordinal, event.domain, prediction.probability_fake,
                prediction.label, event.label)
            if self.adapter is not None and event.label is not None:
                domain_index = self.adapter.loader.dataset.domain_names.index(
                    event.domain)
                self.adapter.ingest(NewsItem(
                    text=event.text, label=int(event.label),
                    domain=domain_index, domain_name=event.domain,
                    item_id=event.ordinal, metadata=dict(event.metadata)))
            if fired and self.adapter is not None and self.config.adapt_on_drift:
                self._pending_reasons.extend(
                    f"{item.kind}:{item.domain}" for item in fired)
            self._check_warmup(event)
            if (self.adapter is not None and self.config.adapt_on_feedback
                    and not self._pending_reasons and self.adapter.ready()):
                self._pending_reasons.append("feedback")

    def _check_warmup(self, event: StreamEvent) -> None:
        if (self.adapter is None
                or event.domain not in self._warmup_pending):
            return
        if (self.adapter.feedback_for_domain(event.domain)
                >= self.config.warmup_min_labeled):
            self._warmup_pending.discard(event.domain)
            self._pending_reasons.append(f"onboard_warmup:{event.domain}")

    def _drain(self) -> None:
        self.batcher.drain()
        self._process_resolved()

    def _maybe_adapt(self, final: bool = False) -> None:
        if not self._pending_reasons or self.adapter is None:
            return
        if not final:
            # Score in-flight traffic with the *current* model before the
            # weights change (this can fire more drift; reasons accumulate).
            self._drain()
        reasons, self._pending_reasons = self._pending_reasons, []
        record = self.adapter.adapt(";".join(reasons),
                                    ordinal=self._last_ordinal)
        if record is None:
            return  # drift without any labeled feedback: nothing to learn from
        self.report.adaptations.append(record.as_dict())
        self.predictor.reload(self.adapter.config.export_path)
        # The model changed: every domain's frozen score reference is stale.
        for name in list(self.monitor.domain_names):
            self.monitor.reset_domain(name)

    def _finish_report(self) -> None:
        self.report.drift_events = [event.as_dict()
                                    for event in self.monitor.drift_events]
        self.report.served_by_domain = dict(self.predictor.served_by_domain)
        self.report.final_fingerprint = self.predictor.pipeline.fingerprint()


__all__ = ["StreamConfig", "StreamReport", "StreamRunner"]
