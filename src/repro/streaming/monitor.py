"""Online drift monitoring over per-domain rolling windows.

The monitor watches two orthogonal degradation signals per domain:

* **Score drift** — the distribution of predicted fake-probabilities inside a
  domain's rolling window, compared to a frozen *reference* window (the first
  ``reference_size`` observations after the domain was registered or last
  reset) with the population stability index.  PSI needs no labels, so it
  fires on unlabeled traffic too — the common case in production, where
  labels trail events by hours or days.
* **Bias drift** — the paper's own fairness lens made windowed: over the
  pooled labeled rolling window, a domain's deviation
  ``|FNR_d - FNR| + |FPR_d - FPR|`` (its contribution to the FNED/FPED
  totals of Eq. 16-17, via :func:`repro.metrics.fairness.rolling_domain_bias`)
  crossing a threshold means the de-biasing guarantee is being violated
  *live* for that domain.

Everything is driven by event ordinals, never wall-clock, so a replayed
schedule yields byte-identical :class:`~repro.streaming.events.DriftEvent`
logs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.metrics.fairness import DomainBiasReport, rolling_domain_bias
from repro.streaming.events import DriftEvent


def population_stability_index(reference, current, bins: int = 10,
                               epsilon: float = 1e-4) -> float:
    """PSI between two probability samples over fixed bins on ``[0, 1]``.

    Bin edges are deterministic (``bins`` equal-width bins over the unit
    interval — predicted probabilities live there by construction), and both
    histograms are epsilon-smoothed so empty bins never produce infinities.
    Conventional reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25
    significant shift.
    """
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.size == 0 or current.size == 0:
        raise ValueError("PSI needs non-empty reference and current samples")
    edges = np.linspace(0.0, 1.0, bins + 1)
    reference_share = np.histogram(np.clip(reference, 0.0, 1.0), bins=edges)[0] \
        / reference.size
    current_share = np.histogram(np.clip(current, 0.0, 1.0), bins=edges)[0] \
        / current.size
    reference_share = reference_share + epsilon
    current_share = current_share + epsilon
    reference_share /= reference_share.sum()
    current_share /= current_share.sum()
    return float(np.sum((current_share - reference_share)
                        * np.log(current_share / reference_share)))


@dataclass
class DriftConfig:
    """Thresholds and window sizes of the :class:`DriftMonitor`."""

    #: rolling window length per domain (scores) and pooled (labels)
    window: int = 64
    #: minimum observations in a domain's rolling window before PSI is tested
    min_window: int = 32
    #: PSI histogram bins
    psi_bins: int = 10
    #: PSI above this fires a ``score_drift`` event (0.25 = significant)
    psi_threshold: float = 0.25
    #: per-domain bias deviation above this fires a ``bias_drift`` event
    bias_threshold: float = 0.25
    #: labeled observations needed (pooled, and for the tested domain) before
    #: the bias signal is trusted
    min_labeled: int = 16
    #: ordinals a domain stays quiet after firing (per signal kind) — one
    #: drifting domain emits one event per adaptation opportunity, not one
    #: per observation
    cooldown: int = 64
    #: observations frozen as the PSI reference after registration/reset
    reference_size: int = 32

    def __post_init__(self):
        if self.window < 2 or self.min_window < 2:
            raise ValueError("window and min_window must be >= 2")
        if self.min_window > self.window:
            raise ValueError("min_window cannot exceed window")
        if self.reference_size < 2:
            raise ValueError("reference_size must be >= 2")
        if self.min_labeled < 1:
            raise ValueError("min_labeled must be >= 1")


class _DomainTrack:
    """Rolling score window + frozen PSI reference for one domain."""

    __slots__ = ("scores", "reference", "observed")

    def __init__(self, window: int):
        self.scores: deque = deque(maxlen=window)
        self.reference: list[float] = []
        self.observed = 0


class DriftMonitor:
    """Windowed per-domain drift detection, deterministic by ordinal."""

    def __init__(self, domain_names, config: DriftConfig | None = None):
        self.config = config or DriftConfig()
        self.domain_names: list[str] = []
        self._tracks: dict[str, _DomainTrack] = {}
        #: pooled labeled history, arrival-ordered: (domain_index, y_true, y_pred)
        self._labeled: deque = deque(maxlen=self.config.window)
        #: domain -> kind -> last firing ordinal (cooldown bookkeeping)
        self._last_fired: dict[str, dict[str, int]] = {}
        self.drift_events: list[DriftEvent] = []
        for name in domain_names:
            self.register_domain(name)

    # ------------------------------------------------------------------ #
    def register_domain(self, name: str) -> None:
        """Start tracking ``name`` (seed domains and onboarded ones alike)."""
        if name in self._tracks:
            raise ValueError(f"domain '{name}' is already tracked")
        self.domain_names.append(name)
        self._tracks[name] = _DomainTrack(self.config.window)
        self._last_fired[name] = {}

    def reset_domain(self, name: str) -> None:
        """Forget ``name``'s windows and reference (call after adapting).

        The rolling window and the frozen PSI reference both cleared: the
        model just changed, so the old score distribution is no baseline for
        the new one — the next ``reference_size`` observations re-freeze it.
        Pooled labeled history for the domain is dropped too, so a fixed bias
        signal does not re-fire from stale pre-adaptation errors.
        """
        track = self._track(name)
        track.scores.clear()
        track.reference = []
        index = self.domain_names.index(name)
        self._labeled = deque(
            (entry for entry in self._labeled if entry[0] != index),
            maxlen=self.config.window)
        self._last_fired[name] = {}

    def _track(self, name: str) -> _DomainTrack:
        if name not in self._tracks:
            raise KeyError(
                f"domain '{name}' is not tracked; known domains: "
                f"{self.domain_names}. Register it first (continual "
                "onboarding calls register_domain)")
        return self._tracks[name]

    # ------------------------------------------------------------------ #
    def observe(self, ordinal: int, domain: str, probability_fake: float,
                predicted_label: int,
                true_label: int | None = None) -> "list[DriftEvent]":
        """Feed one scored event; returns the drift events it triggered."""
        track = self._track(domain)
        track.observed += 1
        if len(track.reference) < self.config.reference_size:
            # Still freezing the reference: reference observations are the
            # baseline, they are never tested against themselves.
            track.reference.append(float(probability_fake))
        else:
            track.scores.append(float(probability_fake))
        if true_label is not None:
            self._labeled.append((self.domain_names.index(domain),
                                  int(true_label), int(predicted_label)))

        fired: list[DriftEvent] = []
        score_event = self._check_score_drift(ordinal, domain, track)
        if score_event is not None:
            fired.append(score_event)
        bias_event = self._check_bias_drift(ordinal, domain)
        if bias_event is not None:
            fired.append(bias_event)
        self.drift_events.extend(fired)
        return fired

    def _cooled_down(self, ordinal: int, domain: str, kind: str) -> bool:
        last = self._last_fired[domain].get(kind)
        return last is None or ordinal - last >= self.config.cooldown

    def _check_score_drift(self, ordinal: int, domain: str,
                           track: _DomainTrack) -> DriftEvent | None:
        cfg = self.config
        if (len(track.reference) < cfg.reference_size
                or len(track.scores) < cfg.min_window
                or not self._cooled_down(ordinal, domain, "score_drift")):
            return None
        psi = population_stability_index(track.reference, list(track.scores),
                                         bins=cfg.psi_bins)
        if psi <= cfg.psi_threshold:
            return None
        self._last_fired[domain]["score_drift"] = ordinal
        return DriftEvent(
            ordinal=ordinal, domain=domain, kind="score_drift",
            value=psi, threshold=cfg.psi_threshold, window=len(track.scores),
            details={"reference_size": len(track.reference)})

    def _check_bias_drift(self, ordinal: int, domain: str) -> DriftEvent | None:
        cfg = self.config
        if (len(self._labeled) < cfg.min_labeled
                or not self._cooled_down(ordinal, domain, "bias_drift")):
            return None
        domain_index = self.domain_names.index(domain)
        domain_labeled = sum(1 for entry in self._labeled
                             if entry[0] == domain_index)
        if domain_labeled < cfg.min_labeled:
            return None
        report = self.bias_report()
        deviation = report.deviation(domain)
        if deviation <= cfg.bias_threshold:
            return None
        self._last_fired[domain]["bias_drift"] = ordinal
        return DriftEvent(
            ordinal=ordinal, domain=domain, kind="bias_drift",
            value=deviation, threshold=cfg.bias_threshold,
            window=len(self._labeled),
            details={
                "domain_labeled": domain_labeled,
                "fnr_domain": report.fnr_per_domain[domain],
                "fpr_domain": report.fpr_per_domain[domain],
                "fnr_overall": report.fnr_overall,
                "fpr_overall": report.fpr_overall,
            })

    # ------------------------------------------------------------------ #
    def bias_report(self) -> DomainBiasReport:
        """Fairness report over the pooled labeled rolling window."""
        if self._labeled:
            domains, y_true, y_pred = (np.array(column, dtype=np.int64)
                                       for column in zip(*self._labeled))
        else:
            domains = y_true = y_pred = np.empty(0, dtype=np.int64)
        return rolling_domain_bias(y_true, y_pred, domains, self.domain_names,
                                   window=self.config.window)

    def snapshot(self) -> dict:
        """JSON-able monitor state summary (window fill, events fired)."""
        return {
            "domains": {
                name: {
                    "observed": track.observed,
                    "window_fill": len(track.scores),
                    "reference_frozen": (len(track.reference)
                                         >= self.config.reference_size),
                }
                for name, track in self._tracks.items()
            },
            "labeled_window_fill": len(self._labeled),
            "drift_events": len(self.drift_events),
        }


__all__ = ["DriftConfig", "DriftMonitor", "population_stability_index"]
