"""Streaming detection: online drift monitoring, incremental adaptation and
continual domain onboarding over the serving tier.

See ``README.md`` ("Streaming & continual domains") for the end-to-end
story; the pieces are:

* :class:`StreamEvent` / :class:`DriftEvent` + schedule persistence
  (:mod:`repro.streaming.events`),
* :class:`DriftMonitor` — windowed per-domain PSI + fairness-deviation
  signals (:mod:`repro.streaming.monitor`),
* :class:`OnlineAdapter` — incremental fine-tuning, teacher-cache window
  invalidation, atomic artifact re-export, domain onboarding
  (:mod:`repro.streaming.adapter`),
* :class:`StreamRunner` — the deterministic online loop tying them to the
  micro-batched predictor (:mod:`repro.streaming.runner`).
"""

from repro.streaming.adapter import AdaptationRecord, AdapterConfig, OnlineAdapter
from repro.streaming.events import (
    SCHEDULE_FORMAT_VERSION,
    DriftEvent,
    StreamEvent,
    drift_log_text,
    load_schedule,
    save_schedule,
)
from repro.streaming.monitor import (
    DriftConfig,
    DriftMonitor,
    population_stability_index,
)
from repro.streaming.runner import StreamConfig, StreamReport, StreamRunner

__all__ = [
    "StreamEvent", "DriftEvent", "drift_log_text",
    "save_schedule", "load_schedule", "SCHEDULE_FORMAT_VERSION",
    "DriftConfig", "DriftMonitor", "population_stability_index",
    "AdapterConfig", "AdaptationRecord", "OnlineAdapter",
    "StreamConfig", "StreamReport", "StreamRunner",
]
