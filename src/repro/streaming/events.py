"""Typed events of the streaming tier, with byte-stable serialisation.

Two event kinds flow through the subsystem:

* :class:`StreamEvent` — one inbound ``(text, domain, optional label)`` news
  item, ordered by ``ordinal``.  Schedules (ordered lists of stream events)
  persist as checksummed JSON documents via :func:`save_schedule` /
  :func:`load_schedule`.
* :class:`DriftEvent` — one monitor verdict: a domain's score distribution
  or fairness signal moved past its threshold at a given ordinal.

Determinism contract: :func:`drift_log_text` renders a drift-event list as
canonical JSON lines (sorted keys, fixed separators, ``repr``-stable floats)
so two replays of the same seeded schedule can be compared **byte for
byte** — the pinning artifact of the whole subsystem's determinism tests.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.reliability.durable import atomic_write_text

#: Bump when the schedule document layout changes incompatibly.
SCHEDULE_FORMAT_VERSION = 1


@dataclass
class StreamEvent:
    """One inbound news item; ``label`` is ``None`` for unlabeled traffic."""

    ordinal: int
    text: str
    domain: str
    label: int | None = None
    metadata: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "ordinal": self.ordinal,
            "text": self.text,
            "domain": self.domain,
            "label": self.label,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamEvent":
        try:
            return cls(
                ordinal=int(payload["ordinal"]),
                text=str(payload["text"]),
                domain=str(payload["domain"]),
                label=(None if payload.get("label") is None
                       else int(payload["label"])),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"not a serialised StreamEvent: {error}") from error


@dataclass
class DriftEvent:
    """One monitor verdict: ``domain`` drifted past ``threshold`` on ``kind``.

    ``kind`` is ``"score_drift"`` (windowed PSI of predicted fake
    probabilities against the domain's frozen reference window) or
    ``"bias_drift"`` (the domain's ``|FNR_d - FNR| + |FPR_d - FPR|``
    deviation over the pooled labeled window).  ``value`` is the measured
    signal, ``window`` how many observations backed it.
    """

    ordinal: int
    domain: str
    kind: str
    value: float
    threshold: float
    window: int
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "ordinal": self.ordinal,
            "domain": self.domain,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "window": self.window,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftEvent":
        try:
            return cls(
                ordinal=int(payload["ordinal"]),
                domain=str(payload["domain"]),
                kind=str(payload["kind"]),
                value=float(payload["value"]),
                threshold=float(payload["threshold"]),
                window=int(payload["window"]),
                details=dict(payload.get("details", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"not a serialised DriftEvent: {error}") from error


def drift_log_text(events: "list[DriftEvent]") -> str:
    """Canonical JSON-lines rendering of a drift-event list.

    Sorted keys and fixed separators make the rendering a function of the
    event *values* only, so identical replays produce identical bytes.
    """
    return "".join(
        json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
        for event in events)


# --------------------------------------------------------------------------- #
# Schedule persistence                                                         #
# --------------------------------------------------------------------------- #
def save_schedule(events: "list[StreamEvent]", path: str | os.PathLike,
                  metadata: dict | None = None) -> str:
    """Atomically write a stream schedule as one JSON document; returns path."""
    document = {
        "format_version": SCHEDULE_FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "events": [event.as_dict() for event in events],
    }
    path = os.fspath(path)
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_schedule(path: str | os.PathLike) -> "tuple[list[StreamEvent], dict]":
    """Load ``(events, metadata)`` written by :func:`save_schedule`."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ValueError(f"cannot read stream schedule '{path}': {error}") from error
    except ValueError as error:
        raise ValueError(
            f"stream schedule '{path}' is not valid JSON ({error}); expected "
            "a document written by repro.streaming.save_schedule") from error
    version = document.get("format_version") if isinstance(document, dict) else None
    if not isinstance(version, int) or version > SCHEDULE_FORMAT_VERSION:
        raise ValueError(
            f"stream schedule '{path}' has format version {version!r}, but "
            f"this build only understands versions <= {SCHEDULE_FORMAT_VERSION}")
    events = [StreamEvent.from_dict(entry) for entry in document.get("events", [])]
    ordinals = [event.ordinal for event in events]
    if ordinals != sorted(ordinals):
        raise ValueError(
            f"stream schedule '{path}' has out-of-order ordinals; a schedule "
            "must replay in arrival order")
    return events, dict(document.get("metadata", {}))


__all__ = [
    "SCHEDULE_FORMAT_VERSION",
    "StreamEvent", "DriftEvent", "drift_log_text",
    "save_schedule", "load_schedule",
]
