"""Model registry: build any detector of the zoo by name.

The benchmark harness reproduces Tables VI and VII by iterating over these
names, so the registry is the single place that maps the paper's method names
to implementations.
"""

from __future__ import annotations

from typing import Callable

from repro.models.base import FakeNewsDetector, ModelConfig
from repro.models.bert_mlp import BertMLP, RobertaMLP
from repro.models.bigru import BiGRU, BiGRUStudent
from repro.models.dual_emotion import DualEmotion
from repro.models.eann import EANN, EANNNoDAT
from repro.models.eddfn import EDDFN, EDDFNNoDAT
from repro.models.m3fend import M3FEND
from repro.models.mdfend import MDFEND
from repro.models.mmoe import MMoE, MoSE
from repro.models.style_lstm import StyleLSTM
from repro.models.textcnn import TextCNN, TextCNNStudent

_REGISTRY: dict[str, type[FakeNewsDetector]] = {
    "bigru": BiGRU,
    "bigru_s": BiGRUStudent,
    "textcnn": TextCNN,
    "textcnn_s": TextCNNStudent,
    "bert": BertMLP,
    "roberta": RobertaMLP,
    "stylelstm": StyleLSTM,
    "dualemo": DualEmotion,
    "mmoe": MMoE,
    "mose": MoSE,
    "eann": EANN,
    "eann_nodat": EANNNoDAT,
    "eddfn": EDDFN,
    "eddfn_nodat": EDDFNNoDAT,
    "mdfend": MDFEND,
    "m3fend": M3FEND,
}

#: Display names used when printing the paper's tables.
DISPLAY_NAMES: dict[str, str] = {
    "bigru": "BiGRU",
    "bigru_s": "BiGRU-S",
    "textcnn": "TextCNN",
    "textcnn_s": "TextCNN-S",
    "bert": "BERT",
    "roberta": "RoBERTa",
    "stylelstm": "StyleLSTM",
    "dualemo": "DualEmo",
    "mmoe": "MMoE",
    "mose": "MoSE",
    "eann": "EANN",
    "eann_nodat": "EANN_NoDAT",
    "eddfn": "EDDFN",
    "eddfn_nodat": "EDDFN_NoDAT",
    "mdfend": "MDFEND",
    "m3fend": "M3FEND",
}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def register_model(name: str, factory: type[FakeNewsDetector]) -> None:
    """Register a custom detector class under ``name`` (for user extensions)."""
    if name in _REGISTRY:
        raise ValueError(f"model name '{name}' is already registered")
    _REGISTRY[name] = factory


def build_model(name: str, config: ModelConfig, **kwargs) -> FakeNewsDetector:
    """Instantiate the detector registered under ``name`` with ``config``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    return _REGISTRY[key](config, **kwargs)


def registry_name(model: FakeNewsDetector) -> str:
    """Return the registry key that rebuilds ``model`` via :func:`build_model`.

    Resolution prefers the model's own ``name`` attribute when it maps back to
    the model's exact class (the convention across the zoo), then falls back
    to a class-identity search so renamed registrations still round-trip.
    Raises :class:`KeyError` for unregistered classes — register them with
    :func:`register_model` before exporting a pipeline.
    """
    declared = getattr(model, "name", "").lower()
    if _REGISTRY.get(declared) is type(model):
        return declared
    for key, cls in _REGISTRY.items():
        if cls is type(model):
            return key
    raise KeyError(
        f"{type(model).__name__} is not in the model registry; call "
        "repro.models.register_model(name, cls) before exporting it so the "
        "pipeline artifact records a name load_pipeline can rebuild from")


def display_name(name: str) -> str:
    return DISPLAY_NAMES.get(name.lower(), name)


ModelFactory = Callable[[ModelConfig], FakeNewsDetector]
