"""Multi-gate mixture-of-experts baselines: MMoE (MLP experts) and MoSE (LSTM experts)."""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence, pooled_plm
from repro.nn import LSTM, Dropout, ExpertGate, Linear, ModuleList, Sequential, ReLU
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng, spawn_rngs


class MMoE(FakeNewsDetector):
    """Multi-gate mixture of MLP experts over the pooled frozen-encoder features."""

    name = "mmoe"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rngs = spawn_rngs(config.seed, config.num_experts + 2)
        self.experts = ModuleList([
            Sequential(Linear(config.plm_dim, config.expert_hidden, rng=rngs[i]), ReLU(),
                       Linear(config.expert_hidden, config.expert_hidden, rng=rngs[i]))
            for i in range(config.num_experts)
        ])
        self.gate = ExpertGate(config.plm_dim, config.num_experts, rng=rngs[-2])
        self.dropout = Dropout(config.dropout, rng=rngs[-1])
        self.classifier = self._build_classifier(config.expert_hidden, rngs[-1])

    @property
    def feature_dim(self) -> int:
        return self.config.expert_hidden

    def extract_features(self, batch: Batch) -> Tensor:
        pooled = pooled_plm(batch)
        expert_outputs = Tensor.stack([expert(pooled) for expert in self.experts], axis=1)
        weights = self.gate(pooled).unsqueeze(2)  # (batch, experts, 1)
        mixed = (expert_outputs * weights).sum(axis=1)
        return self.dropout(mixed)


class MoSE(FakeNewsDetector):
    """Mixture of sequential (LSTM) experts; otherwise identical to MMoE."""

    name = "mose"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rngs = spawn_rngs(config.seed + 17, config.num_experts + 2)
        self.experts = ModuleList([
            LSTM(config.plm_dim, config.expert_hidden, bidirectional=False, rng=rngs[i])
            for i in range(config.num_experts)
        ])
        self.gate = ExpertGate(config.plm_dim, config.num_experts, rng=rngs[-2])
        self.dropout = Dropout(config.dropout, rng=rngs[-1])
        self.classifier = self._build_classifier(config.expert_hidden, rngs[-1])

    @property
    def feature_dim(self) -> int:
        return self.config.expert_hidden

    def extract_features(self, batch: Batch) -> Tensor:
        sequence = plm_sequence(batch)
        pooled = F.masked_mean(sequence, batch.mask, axis=1)
        expert_outputs = Tensor.stack([expert(sequence)[1] for expert in self.experts], axis=1)
        weights = self.gate(pooled).unsqueeze(2)
        mixed = (expert_outputs * weights).sum(axis=1)
        return self.dropout(mixed)
