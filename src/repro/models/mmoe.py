"""Multi-gate mixture-of-experts baselines: MMoE (MLP experts) and MoSE (LSTM experts)."""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import (
    FakeNewsDetector,
    ModelConfig,
    mix_experts,
    plm_sequence,
    pooled_plm,
)
from repro.nn import LSTM, Dropout, ExpertGate, Linear, ModuleList, Sequential, ReLU
from repro.nn.recurrent import lstm_expert_scan
from repro.tensor import Tensor, functional as F, fused
from repro.utils import spawn_rngs


class MMoE(FakeNewsDetector):
    """Multi-gate mixture of MLP experts over the pooled frozen-encoder features."""

    name = "mmoe"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rngs = spawn_rngs(config.seed, config.num_experts + 2)
        self.experts = ModuleList([
            Sequential(Linear(config.plm_dim, config.expert_hidden, rng=rngs[i]), ReLU(),
                       Linear(config.expert_hidden, config.expert_hidden, rng=rngs[i]))
            for i in range(config.num_experts)
        ])
        self.gate = ExpertGate(config.plm_dim, config.num_experts, rng=rngs[-2])
        self.dropout = Dropout(config.dropout, rng=rngs[-1])
        self.classifier = self._build_classifier(config.expert_hidden, rngs[-1])

    @property
    def feature_dim(self) -> int:
        return self.config.expert_hidden

    def extract_features(self, batch: Batch) -> Tensor:
        pooled = pooled_plm(batch)
        mixed = mix_experts([expert(pooled) for expert in self.experts],
                            self.gate(pooled))
        return self.dropout(mixed)


class MoSE(FakeNewsDetector):
    """Mixture of sequential (LSTM) experts; otherwise identical to MMoE."""

    name = "mose"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rngs = spawn_rngs(config.seed + 17, config.num_experts + 2)
        self.experts = ModuleList([
            LSTM(config.plm_dim, config.expert_hidden, bidirectional=False, rng=rngs[i])
            for i in range(config.num_experts)
        ])
        self.gate = ExpertGate(config.plm_dim, config.num_experts, rng=rngs[-2])
        self.dropout = Dropout(config.dropout, rng=rngs[-1])
        self.classifier = self._build_classifier(config.expert_hidden, rngs[-1])

    @property
    def feature_dim(self) -> int:
        return self.config.expert_hidden

    def extract_features(self, batch: Batch) -> Tensor:
        sequence = plm_sequence(batch)
        pooled = F.masked_mean(sequence, batch.mask, axis=1)
        # With ``mask_padding`` each expert reads its final state at the row's
        # last valid token (the mask carries the state through trailing
        # padding) instead of after consuming the pad embeddings.
        mask = batch.mask if self.config.mask_padding else None
        if fused.is_fused_enabled():
            # All experts advance as lanes of ONE scan node (same input, N
            # weight sets); the final step holds every expert's read-out.
            states = lstm_expert_scan(self.experts, sequence, mask=mask)
            finals = states[:, -1, :].reshape(
                len(batch), len(self.experts), self.config.expert_hidden)
            mixed = mix_experts(finals, self.gate(pooled))
        else:
            mixed = mix_experts(
                [expert(sequence, mask=mask)[1] for expert in self.experts],
                self.gate(pooled))
        return self.dropout(mixed)
