"""Model base class and shared configuration for the fake-news model zoo.

Every detector follows the same contract:

* :meth:`FakeNewsDetector.extract_features` maps a :class:`repro.data.Batch` to
  the intermediate representation (used by the classifier, by the adversarial
  de-biasing distillation of Eq. 5–6, and by the t-SNE analysis of Fig. 2);
* :meth:`FakeNewsDetector.forward` returns binary classification logits;
* :meth:`FakeNewsDetector.compute_loss` returns the training loss — models with
  auxiliary objectives (EANN / EDDFN domain adversaries) override it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace

import numpy as np

from repro.data.loader import Batch
from repro.encoders.features import EMOTION_FEATURE_DIM, STYLE_FEATURE_DIM
from repro.nn import MLP, CrossEntropyLoss, Module
from repro.tensor import Tensor, functional as F, fused, no_grad


@dataclass
class ModelConfig:
    """Hyper-parameters shared by the model zoo.

    The defaults are the paper's architecture choices scaled down so that all
    experiments run on CPU: e.g. the paper's TextCNN-S uses five kernel sizes
    with 64 channels on 768-d BERT features, here the same structure runs on
    the frozen encoder's ``plm_dim`` features with configurable channels.
    """

    plm_dim: int = 32
    num_domains: int = 9
    num_classes: int = 2
    cnn_channels: int = 24
    kernel_sizes: tuple[int, ...] = (1, 2, 3, 5)
    rnn_hidden: int = 24
    hidden_dim: int = 48
    mlp_hidden: tuple[int, ...] = (48,)
    num_experts: int = 4
    expert_hidden: int = 32
    memory_dim: int = 32
    domain_embedding_dim: int = 16
    dropout: float = 0.2
    style_dim: int = STYLE_FEATURE_DIM
    emotion_dim: int = EMOTION_FEATURE_DIM
    seed: int = 0
    #: Route the padding mask into the recurrent encoders so padded steps
    #: carry the previous state instead of consuming pad embeddings.  Off by
    #: default: the paper-table reproductions are pinned to the seed
    #: behaviour (encoders consume the padded sequence; pooling masks it out).
    mask_padding: bool = False

    def with_overrides(self, **overrides) -> "ModelConfig":
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelConfig":
        """Rebuild a config saved by :meth:`to_dict` (tuples survive JSON lists)."""
        known = {field_.name for field_ in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown ModelConfig fields {unknown}; known: {sorted(known)}")
        values = dict(payload)
        for name in ("kernel_sizes", "mlp_hidden"):
            if name in values and values[name] is not None:
                values[name] = tuple(values[name])
        return cls(**values)


class FakeNewsDetector(Module):
    """Base class for all detectors in the zoo."""

    #: short name used by the registry / result tables
    name: str = "base"
    #: channels of the Batch this model reads (documentation + loader checks)
    required_features: tuple[str, ...] = ("plm",)
    #: whether repro.models.expand.expand_domains can grow the domain axis
    #: while keeping existing domains' outputs bit-identical (models whose
    #: numerics renormalise across domains set this False)
    domain_expandable: bool = True

    def __init__(self, config: ModelConfig):
        super().__init__()
        self.config = config
        self._criterion = CrossEntropyLoss()

    # ------------------------------------------------------------------ #
    # Contract                                                             #
    # ------------------------------------------------------------------ #
    @property
    def feature_dim(self) -> int:
        raise NotImplementedError

    def extract_features(self, batch: Batch) -> Tensor:
        """Intermediate representation ``(batch, feature_dim)``."""
        raise NotImplementedError

    def classify(self, features: Tensor) -> Tensor:
        """Map intermediate features to logits; default uses ``self.classifier``."""
        return self.classifier(features)

    def forward(self, batch: Batch) -> Tensor:
        return self.classify(self.extract_features(batch))

    def forward_with_features(self, batch: Batch) -> tuple[Tensor, Tensor]:
        features = self.extract_features(batch)
        return self.classify(features), features

    # ------------------------------------------------------------------ #
    # Training / inference helpers                                         #
    # ------------------------------------------------------------------ #
    def compute_loss(self, batch: Batch) -> tuple[Tensor, Tensor]:
        """Return ``(loss, logits)`` for one batch; default is cross-entropy."""
        logits = self.forward(batch)
        return self._criterion(logits, batch.labels), logits

    def predict_proba(self, batch: Batch) -> np.ndarray:
        with no_grad():
            was_training = self.training
            self.eval()
            probabilities = F.softmax(self.forward(batch), axis=-1).numpy()
            if was_training:
                self.train()
        return probabilities

    def predict(self, batch: Batch) -> np.ndarray:
        return self.predict_proba(batch).argmax(axis=1)

    # ------------------------------------------------------------------ #
    def _build_classifier(self, input_dim: int, rng: np.random.Generator) -> MLP:
        dims = [input_dim, *self.config.mlp_hidden]
        return MLP(dims, self.config.num_classes, dropout=self.config.dropout, rng=rng)


def mix_experts(expert_outputs, gate_weights: Tensor) -> Tensor:
    """Gate-weighted sum of per-expert features.

    ``expert_outputs`` is a sequence of ``(batch, dim)`` tensors — or an
    already lane-stacked ``(batch, num_experts, dim)`` tensor, as produced by
    the fused expert scan — and ``gate_weights`` a ``(batch, num_experts)``
    softmax; shared by the mixture-of-experts detectors (MDFEND / MMoE /
    MoSE / M3FEND adapters).  On the fused fast path the mixture runs as the
    single-node :func:`repro.tensor.fused.mix_experts` kernel.
    """
    if isinstance(expert_outputs, Tensor):
        stacked = expert_outputs
    else:
        stacked = Tensor.stack(list(expert_outputs), axis=1)  # (batch, experts, dim)
    if fused.is_fused_enabled():
        return fused.mix_experts(stacked, gate_weights)
    return (stacked * gate_weights.unsqueeze(2)).sum(axis=1)


def pooled_plm(batch: Batch) -> Tensor:
    """Masked mean pooling of the frozen-encoder channel → ``(batch, plm_dim)``."""
    plm = Tensor(batch.feature("plm"))
    return F.masked_mean(plm, batch.mask, axis=1)


def plm_sequence(batch: Batch) -> Tensor:
    """The frozen-encoder channel as a ``(batch, seq, plm_dim)`` tensor."""
    return Tensor(batch.feature("plm"))
