"""The fake-news detector zoo: baselines, clean teachers and student networks."""

from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence, pooled_plm
from repro.models.bert_mlp import BertMLP, RobertaMLP
from repro.models.bigru import BiGRU, BiGRUStudent
from repro.models.dual_emotion import DualEmotion
from repro.models.eann import EANN, EANNNoDAT
from repro.models.eddfn import EDDFN, EDDFNNoDAT
from repro.models.expand import expand_domains
from repro.models.m3fend import M3FEND, DomainMemoryBank
from repro.models.mdfend import MDFEND
from repro.models.mmoe import MMoE, MoSE
from repro.models.registry import (
    DISPLAY_NAMES,
    available_models,
    build_model,
    display_name,
    register_model,
    registry_name,
)
from repro.models.style_lstm import StyleLSTM
from repro.models.textcnn import TextCNN, TextCNNStudent, TextCNNWithEmbedding

__all__ = [
    "FakeNewsDetector", "ModelConfig", "pooled_plm", "plm_sequence",
    "BiGRU", "BiGRUStudent", "TextCNN", "TextCNNStudent", "TextCNNWithEmbedding",
    "BertMLP", "RobertaMLP", "StyleLSTM", "DualEmotion", "MMoE", "MoSE",
    "EANN", "EANNNoDAT", "EDDFN", "EDDFNNoDAT", "MDFEND", "M3FEND", "DomainMemoryBank",
    "expand_domains",
    "build_model", "available_models", "register_model", "registry_name",
    "display_name", "DISPLAY_NAMES",
]
