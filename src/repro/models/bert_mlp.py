"""Frozen pre-trained encoder + MLP baselines (the paper's BERT and RoBERTa rows).

Both baselines freeze the pre-trained encoder and train only an MLP head on the
pooled sentence representation.  In this reproduction the frozen encoder is the
:class:`repro.encoders.FrozenPretrainedEncoder`; the BERT and RoBERTa variants
differ only in their classification-head capacity, mirroring how close those
two rows are in the paper's tables.
"""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, pooled_plm
from repro.nn import Dropout, Linear
from repro.tensor import Tensor
from repro.utils import seeded_rng


class BertMLP(FakeNewsDetector):
    """Frozen encoder (BERT stand-in) + MLP classification head."""

    name = "bert"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        self.projection = Linear(config.plm_dim, config.hidden_dim, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(config.hidden_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.config.hidden_dim

    def extract_features(self, batch: Batch) -> Tensor:
        return self.dropout(self.projection(pooled_plm(batch)).relu())


class RobertaMLP(BertMLP):
    """RoBERTa row of the paper: same frozen-encoder + MLP recipe, wider head."""

    name = "roberta"

    def __init__(self, config: ModelConfig):
        wider = config.with_overrides(hidden_dim=max(config.hidden_dim, 64),
                                      seed=config.seed + 1)
        super().__init__(wider)
