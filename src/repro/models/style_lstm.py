"""StyleLSTM baseline (Przybyla, 2020): BiLSTM text encoder + writing-style features."""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence
from repro.nn import LSTM, Dropout
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng


class StyleLSTM(FakeNewsDetector):
    """Bidirectional LSTM whose pooled states are concatenated with style features."""

    name = "stylelstm"
    required_features = ("plm", "style")

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        self.encoder = LSTM(config.plm_dim, config.rnn_hidden, bidirectional=True, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim + config.style_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim + self.config.style_dim

    def extract_features(self, batch: Batch) -> Tensor:
        mask = batch.mask if self.config.mask_padding else None
        states, _ = self.encoder(plm_sequence(batch), mask=mask)
        pooled = F.masked_mean(states, batch.mask, axis=1)
        style = Tensor(batch.feature("style"))
        return self.dropout(Tensor.cat([pooled, style], axis=1))
