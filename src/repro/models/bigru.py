"""BiGRU baseline (Ma et al., 2016) and the BiGRU-S student used in ablations."""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence
from repro.nn import GRU, Dropout
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng


class BiGRU(FakeNewsDetector):
    """Bidirectional GRU over frozen-encoder token features with masked mean pooling."""

    name = "bigru"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        self.encoder = GRU(config.plm_dim, config.rnn_hidden, bidirectional=True, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim

    def extract_features(self, batch: Batch) -> Tensor:
        # With ``mask_padding`` the recurrence stops at each row's last valid
        # token (the backward direction no longer consumes pad embeddings
        # before the text); the default reproduces the seed behaviour, where
        # only the mean pooling masks padding out.
        mask = batch.mask if self.config.mask_padding else None
        states, _ = self.encoder(plm_sequence(batch), mask=mask)
        pooled = F.masked_mean(states, batch.mask, axis=1)
        return self.dropout(pooled)


class BiGRUStudent(BiGRU):
    """BiGRU-S: frozen encoder + one-layer BiGRU + MLP (Table VIII ablation student)."""

    name = "bigru_s"
