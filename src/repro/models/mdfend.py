"""MDFEND baseline (Nan et al., 2021): domain gate over TextCNN experts.

MDFEND encodes news with several TextCNN expert networks and aggregates their
outputs with a *domain gate*: a softmax gate fed by the domain embedding and
the sentence summary.  It is one of the two "clean teachers" used by DTDBD's
domain knowledge distillation.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import (
    FakeNewsDetector,
    ModelConfig,
    mix_experts,
    plm_sequence,
    pooled_plm,
)
from repro.nn import Dropout, Embedding, ExpertGate, ModuleList, TextCNNEncoder
from repro.tensor import Tensor
from repro.utils import spawn_rngs


class MDFEND(FakeNewsDetector):
    """Multi-domain detector with learnable domain gate over convolutional experts."""

    name = "mdfend"

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rngs = spawn_rngs(config.seed + 31, config.num_experts + 3)
        self.domain_embedding = Embedding(config.num_domains, config.domain_embedding_dim,
                                          rng=rngs[-1])
        self.experts = ModuleList([
            TextCNNEncoder(config.plm_dim, kernel_sizes=config.kernel_sizes,
                           channels=config.cnn_channels, rng=rngs[i])
            for i in range(config.num_experts)
        ])
        expert_dim = self.experts[0].output_dim
        self.gate = ExpertGate(config.domain_embedding_dim + config.plm_dim,
                               config.num_experts, rng=rngs[-2])
        self.dropout = Dropout(config.dropout, rng=rngs[-3])
        self.classifier = self._build_classifier(expert_dim, rngs[-3])

    @property
    def feature_dim(self) -> int:
        return self.experts[0].output_dim

    def extract_features(self, batch: Batch) -> Tensor:
        sequence = plm_sequence(batch)
        summary = pooled_plm(batch)
        domain_vectors = self.domain_embedding(np.asarray(batch.domains))
        gate_weights = self.gate(Tensor.cat([domain_vectors, summary], axis=1))
        mixed = mix_experts([expert(sequence) for expert in self.experts],
                            gate_weights)
        return self.dropout(mixed)
