"""EDDFN baseline (Silva et al., 2021): domain-specific + cross-domain knowledge.

EDDFN keeps two feature branches — a *shared* (cross-domain) branch trained
adversarially against a domain discriminator and a *specific* (intra-domain)
branch trained to predict the domain — and classifies news from their
concatenation.  ``EDDFNNoDAT`` removes the adversarial part of the shared
branch (the "EDDFN_NoDAT" rows of Tables VI and VII).
"""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, pooled_plm
from repro.nn import Dropout, GradientReversal, Linear, MLP, ReLU, Sequential
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng


class EDDFN(FakeNewsDetector):
    """Shared/specific dual-branch detector with a domain adversary on the shared branch."""

    name = "eddfn"

    def __init__(self, config: ModelConfig, adversarial_weight: float = 1.0,
                 specific_weight: float = 0.5, use_adversary: bool = True):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        hidden = config.hidden_dim
        self.shared_encoder = Sequential(Linear(config.plm_dim, hidden, rng=rng), ReLU(),
                                         Linear(hidden, hidden, rng=rng), ReLU())
        self.specific_encoder = Sequential(Linear(config.plm_dim, hidden, rng=rng), ReLU(),
                                           Linear(hidden, hidden, rng=rng), ReLU())
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(2 * hidden, rng)
        self.use_adversary = use_adversary
        self.adversarial_weight = adversarial_weight
        self.specific_weight = specific_weight
        self.specific_domain_head = MLP([hidden, hidden], config.num_domains,
                                        dropout=config.dropout, rng=rng)
        if use_adversary:
            self.gradient_reversal = GradientReversal(1.0)
            self.shared_domain_head = MLP([hidden, hidden], config.num_domains,
                                          dropout=config.dropout, rng=rng)

    @property
    def feature_dim(self) -> int:
        return 2 * self.config.hidden_dim

    def extract_features(self, batch: Batch) -> Tensor:
        pooled = pooled_plm(batch)
        shared = self.shared_encoder(pooled)
        specific = self.specific_encoder(pooled)
        return self.dropout(Tensor.cat([shared, specific], axis=1))

    def compute_loss(self, batch: Batch) -> tuple[Tensor, Tensor]:
        pooled = pooled_plm(batch)
        shared = self.shared_encoder(pooled)
        specific = self.specific_encoder(pooled)
        features = self.dropout(Tensor.cat([shared, specific], axis=1))
        logits = self.classify(features)
        loss = self._criterion(logits, batch.labels)
        # Intra-domain knowledge: the specific branch must recognise its domain.
        specific_domain = F.cross_entropy(self.specific_domain_head(specific), batch.domains)
        loss = loss + self.specific_weight * specific_domain
        if self.use_adversary:
            shared_domain = F.cross_entropy(
                self.shared_domain_head(self.gradient_reversal(shared)), batch.domains)
            loss = loss + self.adversarial_weight * shared_domain
        return loss, logits


class EDDFNNoDAT(EDDFN):
    """EDDFN without the adversarial objective on the shared branch."""

    name = "eddfn_nodat"

    def __init__(self, config: ModelConfig):
        super().__init__(config, use_adversary=False)
