"""Continual domain onboarding: grow a detector's domain axis in place.

When a previously-unseen domain arrives on the stream, the student (and, in
DTDBD mode, both frozen teachers) must accept the new domain id before any
warm-up fine-tuning can happen.  :func:`expand_domains` grows every
domain-indexed parameter axis with **copy-initialised** weights from a donor
domain:

* domain :class:`~repro.nn.layers.Embedding` tables gain rows that are exact
  copies of the donor domain's row (MDFEND's ``domain_embedding``);
* domain classifier / adversary heads — MLPs or bare Linears whose *output*
  axis is ``num_domains`` — gain output columns copied from the donor's
  column (EANN's ``domain_classifier``, EDDFN's ``specific_domain_head`` and
  ``shared_domain_head``).

Copy-initialisation is what makes onboarding safe to hot-deploy: existing
rows/columns are never touched and the veracity forward never reads the new
entries for old-domain inputs, so every pre-onboarding domain's predictions
stay **bit-identical** to the pre-expansion model.  The new domain starts as
a behavioural clone of the donor and then differentiates through warm-up
fine-tuning.

Domain-indexed parameters are discovered by the module-path convention the
repo already follows: the submodule's registered name contains ``"domain"``.
Models with no domain-indexed parameters at all (the TextCNN student, BiGRU,
BERT-MLP, ...) expand config-only — equally valid, there is simply nothing
to grow.

Models whose numerics renormalise *across* domains cannot keep old outputs
bit-identical when a domain is added — M3FEND's memory bank softmaxes
similarities over all domains — and declare ``domain_expandable = False`` to
refuse expansion with a readable error instead of silently shifting every
prediction.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import FakeNewsDetector
from repro.nn.layers import MLP, Embedding, Linear


def _grow_embedding_rows(embedding: Embedding, extra: int, donor: int) -> None:
    weight = embedding.weight
    donor_rows = np.repeat(weight.data[donor:donor + 1], extra, axis=0)
    weight.data = np.concatenate([weight.data, donor_rows], axis=0)
    weight.grad = None
    embedding.num_embeddings += extra


def _grow_linear_out(linear: Linear, extra: int, donor: int) -> None:
    weight = linear.weight  # (in_features, out_features)
    donor_cols = np.repeat(weight.data[:, donor:donor + 1], extra, axis=1)
    weight.data = np.concatenate([weight.data, donor_cols], axis=1)
    weight.grad = None
    if getattr(linear, "bias", None) is not None:
        bias = linear.bias
        donor_bias = np.repeat(bias.data[donor:donor + 1], extra, axis=0)
        bias.data = np.concatenate([bias.data, donor_bias], axis=0)
        bias.grad = None
    linear.out_features += extra


def expand_domains(model: FakeNewsDetector, num_domains: int,
                   donor: int = 0) -> list[str]:
    """Grow ``model`` in place to ``num_domains`` domains; return grown params.

    New domain slots are copy-initialised from domain ``donor``.  Works on
    frozen models too (teachers): only parameter ``.data`` is rewritten, the
    ``requires_grad`` flags are untouched.  ``model.config`` is replaced with
    a ``num_domains``-updated copy so re-exported artifacts carry the grown
    shape.  Returns the qualified names of the parameters that gained new
    rows/columns (empty for models with no domain-indexed parameters).
    """
    old = model.config.num_domains
    if num_domains <= old:
        raise ValueError(
            f"cannot expand {model.name} from {old} to {num_domains} domains; "
            "the new count must be strictly larger")
    if not 0 <= donor < old:
        raise ValueError(
            f"donor domain {donor} outside the existing range [0, {old})")
    if not getattr(model, "domain_expandable", True):
        raise ValueError(
            f"{model.name} does not support bit-identical domain expansion: "
            "its per-domain state renormalises across all domains (e.g. the "
            "M3FEND memory bank's soft-domain softmax), so adding a domain "
            "would shift existing domains' outputs. Onboard new domains with "
            "an expandable model (mdfend, eann, eddfn, or any domain-free "
            "student) or retrain from scratch.")
    extra = num_domains - old

    grown: list[str] = []
    handled: set[int] = set()
    # First pass: MLP heads — grow only the final (output) Linear and mark
    # every Linear inside the head as handled, so hidden layers whose widths
    # coincide with the old domain count are never mistaken for domain axes.
    for name, module in model.named_modules():
        if "domain" not in name or not isinstance(module, MLP):
            continue
        layers = list(module.network._modules.values())
        for layer in layers:
            if isinstance(layer, Linear):
                handled.add(id(layer))
        final = layers[-1]
        if isinstance(final, Linear) and final.out_features == old:
            _grow_linear_out(final, extra, donor)
            grown.append(f"{name}.network (output axis {old} -> {num_domains})")
    # Second pass: bare domain-indexed tables and heads.
    for name, module in model.named_modules():
        if "domain" not in name:
            continue
        if isinstance(module, Embedding) and module.num_embeddings == old:
            _grow_embedding_rows(module, extra, donor)
            grown.append(f"{name}.weight (rows {old} -> {num_domains})")
        elif isinstance(module, Linear) and id(module) not in handled:
            if module.out_features == old:
                _grow_linear_out(module, extra, donor)
                grown.append(f"{name}.weight (output axis {old} -> {num_domains})")
            elif module.in_features == old:
                raise ValueError(
                    f"{model.name}.{name} consumes a {old}-wide domain input "
                    "axis; growing an input axis cannot keep old-domain "
                    "outputs bit-identical, so this model cannot be expanded")

    model.config = model.config.with_overrides(num_domains=num_domains)
    return grown


__all__ = ["expand_domains"]
