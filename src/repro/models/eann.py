"""EANN baseline (Wang et al., 2018): event/domain-adversarial feature learning.

EANN couples a TextCNN feature extractor with a fake-news classifier and an
adversarial domain (event) discriminator connected through a gradient-reversal
layer, so the extractor is pushed towards domain-invariant features.  The
``EANNNoDAT`` variant removes the adversarial branch (the "EANN_NoDAT" rows of
Tables VI and VII).
"""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence
from repro.nn import Dropout, GradientReversal, MLP, TextCNNEncoder
from repro.tensor import Tensor
from repro.utils import seeded_rng


class EANN(FakeNewsDetector):
    """TextCNN features + label classifier + gradient-reversed domain discriminator."""

    name = "eann"

    def __init__(self, config: ModelConfig, adversarial_weight: float = 1.0,
                 use_adversary: bool = True):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        self.encoder = TextCNNEncoder(config.plm_dim, kernel_sizes=config.kernel_sizes,
                                      channels=config.cnn_channels, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim, rng)
        self.use_adversary = use_adversary
        self.adversarial_weight = adversarial_weight
        if use_adversary:
            self.gradient_reversal = GradientReversal(1.0)
            self.domain_classifier = MLP([self.encoder.output_dim, config.hidden_dim],
                                         config.num_domains, dropout=config.dropout, rng=rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim

    def extract_features(self, batch: Batch) -> Tensor:
        return self.dropout(self.encoder(plm_sequence(batch)))

    def domain_logits(self, features: Tensor) -> Tensor:
        if not self.use_adversary:
            raise RuntimeError("this EANN variant has no domain discriminator")
        return self.domain_classifier(self.gradient_reversal(features))

    def compute_loss(self, batch: Batch) -> tuple[Tensor, Tensor]:
        logits, features = self.forward_with_features(batch)
        loss = self._criterion(logits, batch.labels)
        if self.use_adversary:
            from repro.tensor import functional as F

            domain_loss = F.cross_entropy(self.domain_logits(features), batch.domains)
            loss = loss + self.adversarial_weight * domain_loss
        return loss, logits


class EANNNoDAT(EANN):
    """EANN without the domain-adversarial branch."""

    name = "eann_nodat"

    def __init__(self, config: ModelConfig):
        super().__init__(config, use_adversary=False)
