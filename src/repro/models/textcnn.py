"""TextCNN baseline and the TextCNN-S / TextCNN-U student network.

The paper's student ("TextCNN-S", also referred to as TextCNN-U in the
experiments) encodes frozen BERT layer-11 activations with five convolution
kernels (sizes 1, 2, 3, 5) of 64 channels each followed by an MLP classifier.
The plain TextCNN baseline additionally uses a kernel of size 10.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence
from repro.nn import Dropout, TextCNNEncoder
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TextCNN(FakeNewsDetector):
    """Kim (2014) convolutional classifier over frozen-encoder token features."""

    name = "textcnn"

    def __init__(self, config: ModelConfig, kernel_sizes: tuple[int, ...] | None = None):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        kernels = kernel_sizes if kernel_sizes is not None else (*config.kernel_sizes, 10)
        # Kernels longer than the padded sequence would be invalid; the loader
        # always pads to max_length, so only kernels <= max_length make sense —
        # the caller controls that through the config.
        self.encoder = TextCNNEncoder(config.plm_dim, kernel_sizes=kernels,
                                      channels=config.cnn_channels, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim

    def extract_features(self, batch: Batch) -> Tensor:
        return self.dropout(self.encoder(plm_sequence(batch)))


class TextCNNStudent(TextCNN):
    """TextCNN-S: the student network distilled by DTDBD (kernels 1, 2, 3, 5)."""

    name = "textcnn_s"

    def __init__(self, config: ModelConfig):
        super().__init__(config, kernel_sizes=config.kernel_sizes)


class TextCNNWithEmbedding(FakeNewsDetector):
    """TextCNN over a trainable token-embedding table (no frozen encoder).

    Used for ablations on the input representation; reads the ``token_ids``
    channel instead of the frozen ``plm`` features.
    """

    name = "textcnn_embedding"
    required_features: tuple[str, ...] = ()

    def __init__(self, config: ModelConfig, vocab_size: int, embed_dim: int = 32):
        super().__init__(config)
        from repro.nn import Embedding  # local import to keep base deps minimal

        rng = seeded_rng(config.seed)
        self.embedding = Embedding(vocab_size, embed_dim, padding_idx=0, rng=rng)
        self.encoder = TextCNNEncoder(embed_dim, kernel_sizes=config.kernel_sizes,
                                      channels=config.cnn_channels, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim

    def extract_features(self, batch: Batch) -> Tensor:
        embedded = self.embedding(np.asarray(batch.token_ids))
        masked = embedded * Tensor(batch.mask[..., None])
        return self.dropout(self.encoder(masked))
