"""DualEmo baseline (Zhang et al., 2021): BiGRU text encoder + dual-emotion features."""

from __future__ import annotations

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, plm_sequence
from repro.nn import GRU, Dropout
from repro.tensor import Tensor, functional as F
from repro.utils import seeded_rng


class DualEmotion(FakeNewsDetector):
    """BiGRU text representation concatenated with emotion features before the MLP."""

    name = "dualemo"
    required_features = ("plm", "emotion")

    def __init__(self, config: ModelConfig):
        super().__init__(config)
        rng = seeded_rng(config.seed)
        self.encoder = GRU(config.plm_dim, config.rnn_hidden, bidirectional=True, rng=rng)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.classifier = self._build_classifier(self.encoder.output_dim + config.emotion_dim, rng)

    @property
    def feature_dim(self) -> int:
        return self.encoder.output_dim + self.config.emotion_dim

    def extract_features(self, batch: Batch) -> Tensor:
        mask = batch.mask if self.config.mask_padding else None
        states, _ = self.encoder(plm_sequence(batch), mask=mask)
        pooled = F.masked_mean(states, batch.mask, axis=1)
        emotion = Tensor(batch.feature("emotion"))
        return self.dropout(Tensor.cat([pooled, emotion], axis=1))
