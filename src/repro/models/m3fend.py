"""M3FEND baseline (Zhu et al., 2022): memory-guided multi-view multi-domain detection.

M3FEND is the strongest clean teacher in the paper.  It builds three views of a
news item — semantics (convolutional encoder), emotion and style (handcrafted
features) — and a **domain memory bank** holding one memory vector per domain.
The similarity between a sample's semantic representation and each domain
memory yields a *soft (fuzzy) domain-label distribution* which gates a set of
domain adapters (experts).  The memory bank is updated with an exponential
moving average of the training samples of each domain.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import FakeNewsDetector, ModelConfig, mix_experts, plm_sequence
from repro.nn import Dropout, Linear, ModuleList, ReLU, Sequential, TextCNNEncoder
from repro.tensor import Tensor, functional as F, get_default_dtype
from repro.utils import spawn_rngs


class DomainMemoryBank:
    """Per-domain memory vectors updated with an exponential moving average."""

    def __init__(self, num_domains: int, dim: int, momentum: float = 0.9, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.momentum = momentum
        self.memory = (rng.standard_normal((num_domains, dim)) * 0.1).astype(
            get_default_dtype(), copy=False)

    def update(self, features: np.ndarray, domains: np.ndarray) -> None:
        """EMA-update each domain memory with the mean feature of its samples."""
        for domain in np.unique(domains):
            domain_mean = features[domains == domain].mean(axis=0)
            self.memory[domain] = (self.momentum * self.memory[domain]
                                   + (1.0 - self.momentum) * domain_mean)

    def soft_domain_labels(self, features: np.ndarray, temperature: float = 1.0) -> np.ndarray:
        """Softmax similarity of every feature to every domain memory.

        Kept in the naive broadcast-difference form on purpose: the expanded
        GEMM form (``||f||^2 + ||m||^2 - 2 f.m``) is faster but not
        bit-identical, and the regenerated paper tables pin the teacher's
        training trajectory to these exact numerics.
        """
        # Negative squared distance as similarity.
        diff = features[:, None, :] - self.memory[None, :, :]
        similarity = -np.sum(diff * diff, axis=2) / max(temperature, 1e-8)
        similarity -= similarity.max(axis=1, keepdims=True)
        exp = np.exp(similarity)
        return exp / exp.sum(axis=1, keepdims=True)


class M3FEND(FakeNewsDetector):
    """Multi-view encoder + domain memory bank + gated domain adapters."""

    name = "m3fend"
    required_features = ("plm", "style", "emotion")
    # The memory bank's soft-domain softmax renormalises over *all* domains,
    # so adding one would shift every existing domain's gate weights —
    # bit-identical continual onboarding (repro.models.expand) is impossible.
    domain_expandable = False

    def __init__(self, config: ModelConfig, memory_momentum: float = 0.9,
                 memory_temperature: float = 4.0):
        super().__init__(config)
        rngs = spawn_rngs(config.seed + 53, config.num_experts + 5)
        self.semantic_encoder = TextCNNEncoder(config.plm_dim, kernel_sizes=config.kernel_sizes,
                                               channels=config.cnn_channels, rng=rngs[-1])
        semantic_dim = self.semantic_encoder.output_dim
        self.emotion_encoder = Sequential(
            Linear(config.emotion_dim, config.hidden_dim // 2, rng=rngs[-2]), ReLU())
        self.style_encoder = Sequential(
            Linear(config.style_dim, config.hidden_dim // 2, rng=rngs[-3]), ReLU())
        view_dim = semantic_dim + config.hidden_dim
        self.adapters = ModuleList([
            Sequential(Linear(view_dim, config.hidden_dim, rng=rngs[i]), ReLU(),
                       Linear(config.hidden_dim, config.hidden_dim, rng=rngs[i]))
            for i in range(config.num_experts)
        ])
        self.adapter_gate = Linear(config.num_domains, config.num_experts, rng=rngs[-4])
        self.dropout = Dropout(config.dropout, rng=rngs[-5])
        self.classifier = self._build_classifier(config.hidden_dim, rngs[-5])
        self.memory = DomainMemoryBank(config.num_domains, semantic_dim,
                                       momentum=memory_momentum, seed=config.seed + 97)
        self.memory_temperature = memory_temperature

    @property
    def feature_dim(self) -> int:
        return self.config.hidden_dim

    # ------------------------------------------------------------------ #
    # The domain memory bank is learned state (EMA of training features), so it
    # must survive checkpointing together with the parameters.
    def state_dict(self):
        state = super().state_dict()
        state["memory.memory"] = self.memory.memory.copy()
        return state

    def load_state_dict(self, state, strict: bool = True) -> None:
        state = dict(state)
        memory = state.pop("memory.memory", None)
        super().load_state_dict(state, strict=strict)
        if memory is not None:
            # Mirror Module.load_state_dict: the stored blob is cast to the
            # bank's current dtype, keeping checkpoints dtype-portable.
            self.memory.memory = np.asarray(memory, dtype=self.memory.memory.dtype).copy()

    def astype(self, dtype):
        """Cast parameters *and* the domain memory bank (non-parameter state)."""
        super().astype(dtype)
        self.memory.memory = self.memory.memory.astype(np.dtype(dtype), copy=False)
        return self

    # ------------------------------------------------------------------ #
    def _views(self, batch: Batch) -> tuple[Tensor, Tensor]:
        semantic = self.semantic_encoder(plm_sequence(batch))
        emotion = self.emotion_encoder(Tensor(batch.feature("emotion")))
        style = self.style_encoder(Tensor(batch.feature("style")))
        return semantic, Tensor.cat([semantic, emotion, style], axis=1)

    def soft_domain_distribution(self, batch: Batch) -> np.ndarray:
        """Fuzzy domain labels from the memory bank (used by analyses and tests)."""
        semantic, _ = self._views(batch)
        return self.memory.soft_domain_labels(semantic.detach().numpy(),
                                              temperature=self.memory_temperature)

    def extract_features(self, batch: Batch) -> Tensor:
        semantic, combined = self._views(batch)
        soft_domains = self.memory.soft_domain_labels(semantic.detach().numpy(),
                                                      temperature=self.memory_temperature)
        gate_weights = F.softmax(self.adapter_gate(Tensor(soft_domains)), axis=-1)
        mixed = mix_experts([adapter(combined) for adapter in self.adapters],
                            gate_weights)
        if self.training:
            self.memory.update(semantic.detach().numpy(), np.asarray(batch.domains))
        return self.dropout(mixed)
