"""Fused autograd kernels: one graph node per composite operation.

The composed implementations in :mod:`repro.tensor.functional` build long
chains of primitive nodes (a single softmax cross-entropy spawns ~8 nodes,
one GRU step ~15).  Each kernel here computes the same forward value with
plain NumPy and registers a *single* node whose backward closure applies the
analytic gradient, which removes almost all graph/closure overhead from the
hot training loops.

Kernel inventory
----------------
``linear``            ``x @ W + b`` with N-d ``x``
``softmax``           stable softmax along an axis
``log_softmax``       stable log-softmax along an axis
``cross_entropy``     softmax cross-entropy on integer targets (opt. weights)
``distillation_kl``   temperature-scaled ``tau^2 KL(teacher || student)``
``gru_step``          one fused GRU cell step
``lstm_step``         one fused LSTM cell step (two-node pair ``h``/``c``)
``gru_scan``          whole-sequence GRU scan (one node for all ``T`` steps)
``lstm_scan``         whole-sequence LSTM scan (one node for all ``T`` steps)
``attention_pooling`` score -> masked softmax -> weighted sum over time
``layer_norm``        layer normalisation over the last axis
``conv1d``            valid 1-D convolution via an ``as_strided`` unfold

The scan kernels consume ``(batch, seq, features)`` plus the initial state,
precompute the input-side gate projections for the whole sequence in one GEMM
and run the per-step recurrence in plain NumPy inside a single graph node; the
backward-through-time pass is one reverse loop over per-step gate activations
stashed during the forward.  An optional 0/1 ``mask`` carries the previous
state through padded positions (and skips columns that are dead for the whole
batch).  The bidirectional encoders use the dedicated lane-batched
``gru_bidir_scan`` / ``lstm_bidir_scan``; the unidirectional kernels'
``reverse=True`` flag scans right-to-left and is exercised by the parity
tests (no production call site currently needs a lone reversed direction).

Every kernel is verified against its composed-primitive counterpart by
numerical-gradient parity tests in ``tests/tensor/test_fused.py`` and — for
the scan/attention/layer-norm kernels — ``tests/tensor/test_fused_scan.py``
(both float64 and float32).

The module-level switch :func:`set_fused_enabled` /
:func:`fused_kernels` lets callers (and the perf benchmarks) fall back to the
composed implementations, which is how the before/after numbers in
``PERFORMANCE.md`` are measured.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor.tensor import (
    Tensor,
    _attach,
    _stable_sigmoid,
    _wrap,
    is_grad_enabled,
)

_FUSED_ENABLED = True


def is_fused_enabled() -> bool:
    """Return whether the fused fast path is active."""
    return _FUSED_ENABLED


def set_fused_enabled(enabled: bool) -> bool:
    """Globally enable/disable fused kernels; returns the previous setting."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager that temporarily toggles the fused fast path."""
    previous = set_fused_enabled(enabled)
    try:
        yield
    finally:
        set_fused_enabled(previous)


def _recording(*tensors: Tensor) -> bool:
    if not is_grad_enabled():
        return False
    for tensor in tensors:
        if tensor.requires_grad:
            return True
    return False


# --------------------------------------------------------------------------- #
# Dense projection                                                             #
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight + bias`` for ``x`` of shape ``(..., in_features)``."""
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(grad @ weight.data.T, owned=True)
        if weight.requires_grad:
            if x.data.ndim == 2:
                weight._accumulate_grad(x.data.T @ grad, owned=True)
            else:
                flat_x = x.data.reshape(-1, x.data.shape[-1])
                flat_g = grad.reshape(-1, grad.shape[-1])
                weight._accumulate_grad(flat_x.T @ flat_g, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Softmax family                                                               #
# --------------------------------------------------------------------------- #
def _softmax_data(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def _log_softmax_data(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as a single graph node."""
    data = _softmax_data(x.data, axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate_grad(data * (grad - inner), owned=True)

    return _attach(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` as a single graph node."""
    data = _log_softmax_data(x.data, axis=axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        probs = np.exp(data)
        x._accumulate_grad(grad - probs * grad.sum(axis=axis, keepdims=True), owned=True)

    return _attach(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Fused softmax cross-entropy on integer ``targets``.

    Matches ``functional.cross_entropy_reference``: the mean (or
    weight-normalised sum) of per-sample negative log-likelihoods.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D integer array")
    num_classes = logits.data.shape[-1]
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("label outside [0, num_classes)")
    rows = np.arange(targets.shape[0])

    log_probs = _log_softmax_data(logits.data, axis=-1)
    picked = log_probs[rows, targets]
    if weights is not None:
        sample_weights = np.asarray(weights, dtype=logits.data.dtype)
        coeff = sample_weights / float(np.sum(sample_weights))
        value = -(picked * coeff).sum()
    else:
        coeff = None
        value = -picked.mean()
    data = np.asarray(value, dtype=logits.data.dtype)
    if not _recording(logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d logits = (softmax - onehot) * per-sample coefficient
        d_logits = np.exp(log_probs)
        d_logits[rows, targets] -= 1.0
        if coeff is not None:
            d_logits *= coeff[:, None]
        else:
            d_logits /= targets.shape[0]
        d_logits *= grad  # grad is scalar-shaped
        logits._accumulate_grad(d_logits, owned=True)

    return _attach(data, (logits,), backward)


def distillation_kl(student_logits: Tensor, teacher_logits: Tensor,
                    temperature: float = 1.0) -> Tensor:
    """Fused ``tau^2 * KL(teacher || student)`` at temperature ``tau``.

    The teacher branch is treated as a constant (matching the composed
    implementation, which detaches the teacher), so gradients only flow into
    the student logits.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    tau = float(temperature)
    student_log = _log_softmax_data(student_logits.data / tau)
    teacher_prob = _softmax_data(teacher_logits.data / tau, axis=-1)
    q = np.clip(teacher_prob, 1e-12, None)
    batch = student_logits.data.shape[0] if student_logits.data.ndim > 0 else 1
    value = (tau ** 2) * float((q * (np.log(q) - student_log)).sum()) / float(batch)
    data = np.asarray(value, dtype=student_logits.data.dtype)
    if not _recording(student_logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d student = tau/B * (softmax(student/tau) * sum_j q_j - q)
        student_prob = np.exp(student_log)
        row_mass = q.sum(axis=-1, keepdims=True)
        d_student = (tau / batch) * (student_prob * row_mass - q)
        d_student *= grad
        student_logits._accumulate_grad(d_student, owned=True)

    return _attach(data, (student_logits,), backward)


# --------------------------------------------------------------------------- #
# Recurrent cell steps                                                         #
# --------------------------------------------------------------------------- #
def gru_step(x: Tensor, hidden: Tensor, weight_ih: Tensor, weight_hh: Tensor,
             bias: Tensor) -> Tensor:
    """One fused GRU step; mirrors ``GRUCell`` layout ``[reset, update, new]``."""
    h = hidden.data.shape[-1]
    gates_x = x.data @ weight_ih.data + bias.data
    gates_h = hidden.data @ weight_hh.data
    reset = _stable_sigmoid(gates_x[:, :h] + gates_h[:, :h])
    update = _stable_sigmoid(gates_x[:, h:2 * h] + gates_h[:, h:2 * h])
    gh_new = gates_h[:, 2 * h:]
    candidate = np.tanh(gates_x[:, 2 * h:] + reset * gh_new)
    data = update * hidden.data + (1.0 - update) * candidate
    parents = (x, hidden, weight_ih, weight_hh, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        d_update = grad * (hidden.data - candidate) * update * (1.0 - update)
        d_candidate = grad * (1.0 - update) * (1.0 - candidate ** 2)
        d_reset = d_candidate * gh_new * reset * (1.0 - reset)
        d_gates_x = np.concatenate([d_reset, d_update, d_candidate], axis=1)
        d_gates_h = np.concatenate([d_reset, d_update, d_candidate * reset], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates_x @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(grad * update + d_gates_h @ weight_hh.data.T,
                                    owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates_x, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates_h, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates_x.sum(axis=0), owned=True)

    return _attach(data, parents, backward)


def lstm_step(x: Tensor, hidden: Tensor, cell: Tensor, weight_ih: Tensor,
              weight_hh: Tensor, bias: Tensor) -> tuple[Tensor, Tensor]:
    """One fused LSTM step; gate layout ``[input, forget, candidate, output]``.

    Returns ``(new_hidden, new_cell)`` as a pair of graph nodes: ``new_cell``
    owns the gradient flow into the gates that write the cell state, and
    ``new_hidden`` (whose parents include ``new_cell``) owns the output-gate
    path plus the ``tanh`` read-out of the new cell state.
    """
    h = hidden.data.shape[-1]
    gates = x.data @ weight_ih.data + hidden.data @ weight_hh.data + bias.data
    input_gate = _stable_sigmoid(gates[:, :h])
    forget_gate = _stable_sigmoid(gates[:, h:2 * h])
    candidate = np.tanh(gates[:, 2 * h:3 * h])
    output_gate = _stable_sigmoid(gates[:, 3 * h:])
    new_cell_data = forget_gate * cell.data + input_gate * candidate
    tanh_cell = np.tanh(new_cell_data)
    new_hidden_data = output_gate * tanh_cell

    cell_parents = (x, hidden, cell, weight_ih, weight_hh, bias)
    if not _recording(*cell_parents):
        return _wrap(new_hidden_data), _wrap(new_cell_data)

    # The output-gate gradient is produced by the ``new_hidden`` node but the
    # matmuls into x / hidden / the weights are done exactly once, by the
    # ``new_cell`` node (topologically guaranteed to run after ``new_hidden``),
    # so the fused step performs the same number of matmuls as the composed
    # chain while collapsing ~15 graph nodes into 2.
    pending_output = [None]

    def cell_backward(grad_cell):
        d_input = grad_cell * candidate * input_gate * (1.0 - input_gate)
        d_forget = grad_cell * cell.data * forget_gate * (1.0 - forget_gate)
        d_candidate = grad_cell * input_gate * (1.0 - candidate ** 2)
        d_output = pending_output[0]
        pending_output[0] = None
        if d_output is None:
            d_output = np.zeros_like(d_input)
        d_gates = np.concatenate([d_input, d_forget, d_candidate, d_output], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(d_gates @ weight_hh.data.T, owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates.sum(axis=0), owned=True)
        if cell.requires_grad:
            cell._accumulate_grad(grad_cell * forget_gate, owned=True)

    new_cell = _attach(new_cell_data, cell_parents, cell_backward)

    def hidden_backward(grad_hidden):
        d_output = grad_hidden * tanh_cell * output_gate * (1.0 - output_gate)
        if pending_output[0] is None:
            pending_output[0] = d_output
        else:
            pending_output[0] += d_output
        new_cell._accumulate_grad(grad_hidden * output_gate * (1.0 - tanh_cell ** 2),
                                  owned=True)

    new_hidden = _attach(new_hidden_data, (new_cell,), hidden_backward)
    return new_hidden, new_cell


# --------------------------------------------------------------------------- #
# Whole-sequence recurrent scans                                               #
# --------------------------------------------------------------------------- #
# Implementation notes shared by the four scan kernels below:
#
# * All sequence-shaped internals are *time-major* — stash arrays are indexed
#   ``stash[t]`` so every per-step read/write touches a contiguous block.  The
#   (batch, seq, ...) public layout is produced/consumed via one bulk
#   transpose at the node boundary.  (With batch-major stashes every per-step
#   ufunc ran on a strided view, which profiling showed cost ~2x.)
# * Reversed scans flip their inputs once up front and their outputs once at
#   the end, so the loop itself always runs ``t = 0..T-1`` over contiguous
#   memory.
# * Gate activations are computed straight into the backward stash (or into
#   scratch when not recording) with in-place ufuncs — the loops are
#   Python-call-bound at the paper's layer sizes, so call count and
#   contiguity, not FLOPs, dominate.


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Overflow-free logistic via ``0.5 * tanh(x / 2) + 0.5``, written into ``out``.

    ``tanh`` saturates instead of overflowing, so this matches
    :func:`_stable_sigmoid` to a couple of ulps while costing four in-place
    ufunc calls and zero temporaries.
    """
    np.multiply(x, 0.5, out=out)
    np.tanh(out, out=out)
    out *= 0.5
    out += 0.5
    return out


def _prepare_scan_mask(mask, batch: int, seq_len: int, dtype):
    """Normalise an optional 0/1 mask to time-major ``(mask_tm, alive)``.

    ``mask_tm`` is ``(seq, batch, 1)`` in the compute dtype (for blending the
    carried state), ``alive[t]`` is False when step ``t`` is padding for the
    *entire* batch, in which case the scan skips its recurrence GEMM outright.
    """
    if mask is None:
        return None, None
    mask_arr = np.asarray(mask, dtype=dtype)
    if mask_arr.shape != (batch, seq_len):
        raise ValueError(
            f"mask shape {mask_arr.shape} does not match (batch, seq) = "
            f"({batch}, {seq_len})")
    mask_tm = np.ascontiguousarray(mask_arr.T)[..., None]
    return mask_tm, mask_arr.sum(axis=0) > 0


def gru_scan(x: Tensor, h0: Tensor, weight_ih: Tensor, weight_hh: Tensor,
             bias: Tensor, mask=None, reverse: bool = False) -> Tensor:
    """Fused whole-sequence GRU: ``(batch, seq, features) -> (batch, seq, hidden)``.

    The input-side gate projections for the entire sequence are computed in a
    single GEMM; only the hidden-side projection runs per step.  The whole
    scan is one graph node whose backward replays the recurrence in reverse
    (per-step gate activations are stashed during the forward — the memory
    cost of collapsing O(T) nodes into one).  ``mask`` (0/1, ``(batch, seq)``)
    carries the previous state through padded positions; ``reverse=True``
    scans right-to-left, with ``states[:, t]`` holding the state *after*
    consuming ``x[:, t]`` in scan order either way.
    """
    batch, seq_len, _ = x.data.shape
    if seq_len == 0:
        raise ValueError("gru_scan requires at least one time step")
    hidden_dim = h0.data.shape[-1]
    dtype = x.data.dtype
    w_hh = weight_hh.data
    gates = x.data.reshape(batch * seq_len, -1) @ weight_ih.data + bias.data
    gates_tm = gates.reshape(batch, seq_len, 3 * hidden_dim).transpose(1, 0, 2)
    if reverse:
        gates_tm = gates_tm[::-1]
    gates_tm = np.ascontiguousarray(gates_tm)
    mask_tm, alive = _prepare_scan_mask(mask, batch, seq_len, dtype)
    if reverse and mask_tm is not None:
        mask_tm = np.ascontiguousarray(mask_tm[::-1])
        alive = alive[::-1]
    parents = (x, h0, weight_ih, weight_hh, bias)
    recording = _recording(*parents)

    states_tm = np.empty((seq_len, batch, hidden_dim), dtype=dtype)
    if recording:
        # Zero-filled when some columns are dead for the whole batch: those
        # steps never write their stash slots, and zeros keep the vectorised
        # backward prefactors and the single weight-gradient GEMM garbage-free.
        alloc = np.zeros if alive is not None and not alive.all() else np.empty
        prev_h = alloc(states_tm.shape, dtype=dtype)
        gate_rz = alloc((seq_len, batch, 2 * hidden_dim), dtype=dtype)
        candidates = alloc(states_tm.shape, dtype=dtype)
        gh_news = alloc(states_tm.shape, dtype=dtype)
    h = h0.data
    gh = np.empty((batch, 3 * hidden_dim), dtype=dtype)
    for t in range(seq_len):
        if alive is not None and not alive[t]:
            states_tm[t] = h
            continue
        gx = gates_tm[t]
        np.matmul(h, w_hh, out=gh)
        # One sigmoid call covers the adjacent [reset, update] blocks, written
        # straight into the backward stash (or scratch when not recording).
        rz_pre = gh[:, :2 * hidden_dim]
        rz_pre += gx[:, :2 * hidden_dim]
        if recording:
            prev_h[t] = h
            rz = _sigmoid_into(rz_pre, gate_rz[t])
            gh_new = gh_news[t]
            gh_new[...] = gh[:, 2 * hidden_dim:]
            candidate = candidates[t]
        else:
            rz = _sigmoid_into(rz_pre, rz_pre)
            gh_new = gh[:, 2 * hidden_dim:]
            candidate = np.empty((batch, hidden_dim), dtype=dtype)
        np.multiply(rz[:, :hidden_dim], gh_new, out=candidate)
        candidate += gx[:, 2 * hidden_dim:]
        np.tanh(candidate, out=candidate)
        new_h = h - candidate
        new_h *= rz[:, hidden_dim:]
        new_h += candidate
        if mask_tm is not None:
            # h + m * (new_h - h), composed in place on the fresh array.
            new_h -= h
            new_h *= mask_tm[t]
            new_h += h
        states_tm[t] = new_h
        h = new_h
    out_tm = states_tm[::-1] if reverse else states_tm
    states = np.ascontiguousarray(out_tm.transpose(1, 0, 2))
    if not recording:
        return _wrap(states)

    def backward(grad):
        g_tm = grad.transpose(1, 0, 2)
        if reverse:
            g_tm = g_tm[::-1]
        g_tm = np.ascontiguousarray(g_tm)
        resets = gate_rz[:, :, :hidden_dim]
        updates = gate_rz[:, :, hidden_dim:]
        # Gate-derivative prefactors, vectorised over the whole sequence so the
        # sequential loop below is down to a handful of ops plus one GEMM per
        # step.
        pref_update = (prev_h - candidates) * updates * (1.0 - updates)
        pref_cand = (1.0 - updates) * (1.0 - candidates ** 2)
        pref_reset = gh_news * resets * (1.0 - resets)
        # gates_h and gates_x share the [reset, update] gradient blocks; only
        # the candidate block differs (extra * reset on the hidden side).
        d_gates_h = np.zeros((seq_len, batch, 3 * hidden_dim), dtype=dtype)
        d_cands = np.zeros((seq_len, batch, hidden_dim), dtype=dtype)
        d_h = np.zeros((batch, hidden_dim), dtype=dtype)
        w_hh_t = w_hh.T
        for t in range(seq_len - 1, -1, -1):
            g = g_tm[t] + d_h
            if alive is not None and not alive[t]:
                d_h = g  # dead step: pure passthrough to the previous state
                continue
            if mask_tm is not None:
                m = mask_tm[t]
                g_active = g * m
                g_pass = g - g_active
            else:
                g_active, g_pass = g, None
            step = d_gates_h[t]
            d_candidate = d_cands[t]
            np.multiply(g_active, pref_cand[t], out=d_candidate)
            np.multiply(d_candidate, pref_reset[t], out=step[:, :hidden_dim])
            np.multiply(g_active, pref_update[t],
                        out=step[:, hidden_dim:2 * hidden_dim])
            np.multiply(d_candidate, resets[t], out=step[:, 2 * hidden_dim:])
            d_h = step @ w_hh_t
            d_h += g_active * updates[t]
            if g_pass is not None:
                d_h += g_pass
        d_gx = np.concatenate([d_gates_h[:, :, :2 * hidden_dim], d_cands], axis=2)
        if reverse:
            d_gx = d_gx[::-1]
        flat_x = np.ascontiguousarray(d_gx.transpose(1, 0, 2)).reshape(
            batch * seq_len, 3 * hidden_dim)
        if x.requires_grad:
            x._accumulate_grad((flat_x @ weight_ih.data.T).reshape(x.data.shape),
                               owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(
                x.data.reshape(batch * seq_len, -1).T @ flat_x, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(flat_x.sum(axis=0), owned=True)
        if weight_hh.requires_grad:
            # One GEMM over all steps (dead steps contribute exact zeros; the
            # scan-order/real-order distinction washes out in the sum).
            weight_hh._accumulate_grad(
                prev_h.reshape(seq_len * batch, hidden_dim).T
                @ d_gates_h.reshape(seq_len * batch, 3 * hidden_dim), owned=True)
        if h0.requires_grad:
            h0._accumulate_grad(d_h, owned=True)

    return _attach(states, parents, backward)


def lstm_scan(x: Tensor, h0: Tensor, c0: Tensor, weight_ih: Tensor,
              weight_hh: Tensor, bias: Tensor, mask=None,
              reverse: bool = False) -> Tensor:
    """Fused whole-sequence LSTM returning the hidden states ``(batch, seq, hidden)``.

    Same contract as :func:`gru_scan` (single node, batched input GEMM,
    stashed activations, mask carry, optional reverse scan); the cell state
    threads through the scan internally, so gradients enter via the hidden
    states only — matching a per-step chain whose loss reads the hidden
    trajectory.
    """
    batch, seq_len, _ = x.data.shape
    if seq_len == 0:
        raise ValueError("lstm_scan requires at least one time step")
    hidden_dim = h0.data.shape[-1]
    dtype = x.data.dtype
    w_hh = weight_hh.data
    gates_all = x.data.reshape(batch * seq_len, -1) @ weight_ih.data + bias.data
    gates_tm = gates_all.reshape(batch, seq_len, 4 * hidden_dim).transpose(1, 0, 2)
    if reverse:
        gates_tm = gates_tm[::-1]
    gates_tm = np.ascontiguousarray(gates_tm)
    mask_tm, alive = _prepare_scan_mask(mask, batch, seq_len, dtype)
    if reverse and mask_tm is not None:
        mask_tm = np.ascontiguousarray(mask_tm[::-1])
        alive = alive[::-1]
    parents = (x, h0, c0, weight_ih, weight_hh, bias)
    recording = _recording(*parents)

    states_tm = np.empty((seq_len, batch, hidden_dim), dtype=dtype)
    if recording:
        alloc = np.zeros if alive is not None and not alive.all() else np.empty
        prev_h = alloc(states_tm.shape, dtype=dtype)
        prev_c = alloc(states_tm.shape, dtype=dtype)
        gate_if = alloc((seq_len, batch, 2 * hidden_dim), dtype=dtype)
        cand_gates = alloc(states_tm.shape, dtype=dtype)
        out_gates = alloc(states_tm.shape, dtype=dtype)
        tanh_cells = alloc(states_tm.shape, dtype=dtype)
    h, c = h0.data, c0.data
    gates = np.empty((batch, 4 * hidden_dim), dtype=dtype)
    for t in range(seq_len):
        if alive is not None and not alive[t]:
            states_tm[t] = h
            continue
        np.matmul(h, w_hh, out=gates)
        gates += gates_tm[t]
        # One sigmoid call covers the adjacent [input, forget] blocks; all
        # activations land straight in the backward stash when recording.
        if recording:
            prev_h[t] = h
            prev_c[t] = c
            in_forget = _sigmoid_into(gates[:, :2 * hidden_dim], gate_if[t])
            candidate = np.tanh(gates[:, 2 * hidden_dim:3 * hidden_dim],
                                out=cand_gates[t])
            output_gate = _sigmoid_into(gates[:, 3 * hidden_dim:], out_gates[t])
            tanh_cell = tanh_cells[t]
        else:
            in_forget = _sigmoid_into(gates[:, :2 * hidden_dim],
                                      gates[:, :2 * hidden_dim])
            candidate = np.tanh(gates[:, 2 * hidden_dim:3 * hidden_dim])
            output_gate = _sigmoid_into(gates[:, 3 * hidden_dim:],
                                        gates[:, 3 * hidden_dim:])
            tanh_cell = np.empty((batch, hidden_dim), dtype=dtype)
        new_c = in_forget[:, hidden_dim:] * c
        new_c += in_forget[:, :hidden_dim] * candidate
        np.tanh(new_c, out=tanh_cell)
        new_h = output_gate * tanh_cell
        if mask_tm is not None:
            m = mask_tm[t]
            new_h -= h
            new_h *= m
            new_h += h
            new_c -= c
            new_c *= m
            new_c += c
        states_tm[t] = new_h
        h, c = new_h, new_c
    out_tm = states_tm[::-1] if reverse else states_tm
    states = np.ascontiguousarray(out_tm.transpose(1, 0, 2))
    if not recording:
        return _wrap(states)

    def backward(grad):
        g_tm = grad.transpose(1, 0, 2)
        if reverse:
            g_tm = g_tm[::-1]
        g_tm = np.ascontiguousarray(g_tm)
        in_gates = gate_if[:, :, :hidden_dim]
        forget_gates = gate_if[:, :, hidden_dim:]
        # Whole-sequence gate-derivative prefactors (see gru_scan.backward).
        pref_out = tanh_cells * out_gates * (1.0 - out_gates)
        pref_cell = out_gates * (1.0 - tanh_cells ** 2)
        pref_in = cand_gates * in_gates * (1.0 - in_gates)
        pref_forget = prev_c * forget_gates * (1.0 - forget_gates)
        pref_cand = in_gates * (1.0 - cand_gates ** 2)
        d_gates_all = np.zeros((seq_len, batch, 4 * hidden_dim), dtype=dtype)
        d_h = np.zeros((batch, hidden_dim), dtype=dtype)
        d_c = np.zeros((batch, hidden_dim), dtype=dtype)
        w_hh_t = w_hh.T
        for t in range(seq_len - 1, -1, -1):
            g_h = g_tm[t] + d_h
            if alive is not None and not alive[t]:
                d_h = g_h  # dead step: hidden and cell both pass straight through
                continue
            if mask_tm is not None:
                m = mask_tm[t]
                gh_active = g_h * m
                gh_pass = g_h - gh_active
                dc_active = d_c * m
                dc_pass = d_c - dc_active
            else:
                gh_active, gh_pass = g_h, None
                dc_active, dc_pass = d_c, None
            d_cell = dc_active + gh_active * pref_cell[t]
            step_dg = d_gates_all[t]
            np.multiply(d_cell, pref_in[t], out=step_dg[:, :hidden_dim])
            np.multiply(d_cell, pref_forget[t],
                        out=step_dg[:, hidden_dim:2 * hidden_dim])
            np.multiply(d_cell, pref_cand[t],
                        out=step_dg[:, 2 * hidden_dim:3 * hidden_dim])
            np.multiply(gh_active, pref_out[t], out=step_dg[:, 3 * hidden_dim:])
            d_h = step_dg @ w_hh_t
            if gh_pass is not None:
                d_h += gh_pass
            d_c = d_cell * forget_gates[t]
            if dc_pass is not None:
                d_c += dc_pass
        d_gx = d_gates_all[::-1] if reverse else d_gates_all
        flat = np.ascontiguousarray(d_gx.transpose(1, 0, 2)).reshape(
            batch * seq_len, 4 * hidden_dim)
        if x.requires_grad:
            x._accumulate_grad((flat @ weight_ih.data.T).reshape(x.data.shape),
                               owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(
                x.data.reshape(batch * seq_len, -1).T @ flat, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(flat.sum(axis=0), owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(
                prev_h.reshape(seq_len * batch, hidden_dim).T
                @ d_gates_all.reshape(seq_len * batch, 4 * hidden_dim), owned=True)
        if h0.requires_grad:
            h0._accumulate_grad(d_h, owned=True)
        if c0.requires_grad:
            c0._accumulate_grad(d_c, owned=True)

    return _attach(states, parents, backward)


def gru_bidir_scan(x: Tensor, h0_fwd: Tensor, h0_bwd: Tensor,
                   wih_fwd: Tensor, whh_fwd: Tensor, bias_fwd: Tensor,
                   wih_bwd: Tensor, whh_bwd: Tensor, bias_bwd: Tensor,
                   mask=None) -> Tensor:
    """Fused bidirectional GRU scan: one node for ``(batch, seq, 2 * hidden)``.

    Both directions run inside a *single* time loop as a leading "lane" axis
    of size 2 (forward, backward): the per-step hidden projections become one
    batched ``(2, B, H) @ (2, H, 3H)`` matmul and every gate op touches both
    lanes at once, halving the Python-call overhead of two independent
    :func:`gru_scan` nodes.  The backward lane consumes time right-to-left via
    pre-flipped inputs; its states/gradients are flipped back in bulk.  Output
    layout: ``[:, :, :H]`` forward states, ``[:, :, H:]`` backward states.
    """
    batch, seq_len, _ = x.data.shape
    if seq_len == 0:
        raise ValueError("gru_bidir_scan requires at least one time step")
    hidden_dim = h0_fwd.data.shape[-1]
    dtype = x.data.dtype
    wih_cat = np.concatenate([wih_fwd.data, wih_bwd.data], axis=1)  # (F, 6H)
    bias_cat = np.concatenate([bias_fwd.data, bias_bwd.data])
    gates = x.data.reshape(batch * seq_len, -1) @ wih_cat + bias_cat
    lanes = gates.reshape(batch, seq_len, 2, 3 * hidden_dim)
    # Time-major, lane-second input gates; the backward lane reads time
    # reversed so the single loop below advances both directions at once.
    gates_tm = np.empty((seq_len, 2, batch, 3 * hidden_dim), dtype=dtype)
    gates_tm[:, 0] = lanes[:, :, 0].transpose(1, 0, 2)
    gates_tm[:, 1] = lanes[:, ::-1, 1].transpose(1, 0, 2)
    mask_tm, alive = _prepare_scan_mask(mask, batch, seq_len, dtype)
    if mask_tm is not None:
        lane_mask = np.empty((seq_len, 2, batch, 1), dtype=dtype)
        lane_mask[:, 0] = mask_tm
        lane_mask[:, 1] = mask_tm[::-1]
        # Skip a step only when it is padding for every row in *both* lanes.
        both_dead = ~alive & ~alive[::-1]
    else:
        lane_mask = None
        both_dead = None
    w_hh = np.stack([whh_fwd.data, whh_bwd.data])  # (2, H, 3H)
    parents = (x, h0_fwd, h0_bwd, wih_fwd, whh_fwd, bias_fwd,
               wih_bwd, whh_bwd, bias_bwd)
    recording = _recording(*parents)

    lane_states = np.empty((seq_len, 2, batch, hidden_dim), dtype=dtype)
    if recording:
        alloc = np.zeros if both_dead is not None and both_dead.any() else np.empty
        prev_h = alloc(lane_states.shape, dtype=dtype)
        gate_rz = alloc((seq_len, 2, batch, 2 * hidden_dim), dtype=dtype)
        candidates = alloc(lane_states.shape, dtype=dtype)
        gh_news = alloc(lane_states.shape, dtype=dtype)
    h = np.stack([h0_fwd.data, h0_bwd.data])  # (2, B, H)
    gh = np.empty((2, batch, 3 * hidden_dim), dtype=dtype)
    for t in range(seq_len):
        if both_dead is not None and both_dead[t]:
            lane_states[t] = h
            continue
        gx = gates_tm[t]
        np.matmul(h, w_hh, out=gh)  # (2, B, 3H)
        rz_pre = gh[:, :, :2 * hidden_dim]
        rz_pre += gx[:, :, :2 * hidden_dim]
        if recording:
            prev_h[t] = h
            rz = _sigmoid_into(rz_pre, gate_rz[t])
            gh_new = gh_news[t]
            gh_new[...] = gh[:, :, 2 * hidden_dim:]
            candidate = candidates[t]
        else:
            rz = _sigmoid_into(rz_pre, rz_pre)
            gh_new = gh[:, :, 2 * hidden_dim:]
            candidate = np.empty((2, batch, hidden_dim), dtype=dtype)
        np.multiply(rz[:, :, :hidden_dim], gh_new, out=candidate)
        candidate += gx[:, :, 2 * hidden_dim:]
        np.tanh(candidate, out=candidate)
        new_h = h - candidate
        new_h *= rz[:, :, hidden_dim:]
        new_h += candidate
        if lane_mask is not None:
            new_h -= h
            new_h *= lane_mask[t]
            new_h += h
        lane_states[t] = new_h
        h = new_h
    states = np.empty((batch, seq_len, 2 * hidden_dim), dtype=dtype)
    states[:, :, :hidden_dim] = lane_states[:, 0].transpose(1, 0, 2)
    states[:, :, hidden_dim:] = lane_states[::-1, 1].transpose(1, 0, 2)
    if not recording:
        return _wrap(states)

    def backward(grad):
        lane_grad = np.empty((seq_len, 2, batch, hidden_dim), dtype=dtype)
        lane_grad[:, 0] = grad[:, :, :hidden_dim].transpose(1, 0, 2)
        lane_grad[:, 1] = grad[:, ::-1, hidden_dim:].transpose(1, 0, 2)
        resets = gate_rz[:, :, :, :hidden_dim]
        updates = gate_rz[:, :, :, hidden_dim:]
        pref_update = (prev_h - candidates) * updates * (1.0 - updates)
        pref_cand = (1.0 - updates) * (1.0 - candidates ** 2)
        pref_reset = gh_news * resets * (1.0 - resets)
        d_gates_h = np.zeros((seq_len, 2, batch, 3 * hidden_dim), dtype=dtype)
        d_cands = np.zeros((seq_len, 2, batch, hidden_dim), dtype=dtype)
        d_h = np.zeros((2, batch, hidden_dim), dtype=dtype)
        w_hh_t = np.swapaxes(w_hh, 1, 2)
        for t in range(seq_len - 1, -1, -1):
            g = lane_grad[t] + d_h
            if both_dead is not None and both_dead[t]:
                d_h = g
                continue
            if lane_mask is not None:
                m = lane_mask[t]
                g_active = g * m
                g_pass = g - g_active
            else:
                g_active, g_pass = g, None
            step = d_gates_h[t]
            d_candidate = d_cands[t]
            np.multiply(g_active, pref_cand[t], out=d_candidate)
            np.multiply(d_candidate, pref_reset[t], out=step[:, :, :hidden_dim])
            np.multiply(g_active, pref_update[t],
                        out=step[:, :, hidden_dim:2 * hidden_dim])
            np.multiply(d_candidate, resets[t], out=step[:, :, 2 * hidden_dim:])
            d_h = np.matmul(step, w_hh_t)
            d_h += g_active * updates[t]
            if g_pass is not None:
                d_h += g_pass
        # Back to (batch, time)-major real order, lanes side by side: (B, T, 6H).
        d_gx = np.empty((batch, seq_len, 6 * hidden_dim), dtype=dtype)
        d_gx[:, :, :2 * hidden_dim] = \
            d_gates_h[:, 0, :, :2 * hidden_dim].transpose(1, 0, 2)
        d_gx[:, :, 2 * hidden_dim:3 * hidden_dim] = d_cands[:, 0].transpose(1, 0, 2)
        d_gx[:, :, 3 * hidden_dim:5 * hidden_dim] = \
            d_gates_h[::-1, 1, :, :2 * hidden_dim].transpose(1, 0, 2)
        d_gx[:, :, 5 * hidden_dim:] = d_cands[::-1, 1].transpose(1, 0, 2)
        flat = d_gx.reshape(batch * seq_len, 6 * hidden_dim)
        if x.requires_grad:
            x._accumulate_grad((flat @ wih_cat.T).reshape(x.data.shape), owned=True)
        if wih_fwd.requires_grad or wih_bwd.requires_grad:
            d_wih = x.data.reshape(batch * seq_len, -1).T @ flat
            if wih_fwd.requires_grad:
                wih_fwd._accumulate_grad(
                    np.ascontiguousarray(d_wih[:, :3 * hidden_dim]), owned=True)
            if wih_bwd.requires_grad:
                wih_bwd._accumulate_grad(
                    np.ascontiguousarray(d_wih[:, 3 * hidden_dim:]), owned=True)
        if bias_fwd.requires_grad or bias_bwd.requires_grad:
            d_bias = flat.sum(axis=0)
            if bias_fwd.requires_grad:
                bias_fwd._accumulate_grad(d_bias[:3 * hidden_dim].copy(), owned=True)
            if bias_bwd.requires_grad:
                bias_bwd._accumulate_grad(d_bias[3 * hidden_dim:].copy(), owned=True)
        for lane, weight in enumerate((whh_fwd, whh_bwd)):
            if weight.requires_grad:
                weight._accumulate_grad(
                    prev_h[:, lane].reshape(seq_len * batch, hidden_dim).T
                    @ d_gates_h[:, lane].reshape(seq_len * batch, 3 * hidden_dim),
                    owned=True)
        if h0_fwd.requires_grad:
            h0_fwd._accumulate_grad(d_h[0], owned=True)
        if h0_bwd.requires_grad:
            h0_bwd._accumulate_grad(d_h[1], owned=True)

    return _attach(states, parents, backward)


def lstm_bidir_scan(x: Tensor, h0_fwd: Tensor, c0_fwd: Tensor,
                    h0_bwd: Tensor, c0_bwd: Tensor,
                    wih_fwd: Tensor, whh_fwd: Tensor, bias_fwd: Tensor,
                    wih_bwd: Tensor, whh_bwd: Tensor, bias_bwd: Tensor,
                    mask=None) -> Tensor:
    """Fused bidirectional LSTM scan (see :func:`gru_bidir_scan` for the
    lane-batching scheme); returns hidden states ``(batch, seq, 2 * hidden)``.
    """
    batch, seq_len, _ = x.data.shape
    if seq_len == 0:
        raise ValueError("lstm_bidir_scan requires at least one time step")
    hidden_dim = h0_fwd.data.shape[-1]
    dtype = x.data.dtype
    wih_cat = np.concatenate([wih_fwd.data, wih_bwd.data], axis=1)  # (F, 8H)
    bias_cat = np.concatenate([bias_fwd.data, bias_bwd.data])
    gates_all = x.data.reshape(batch * seq_len, -1) @ wih_cat + bias_cat
    lanes = gates_all.reshape(batch, seq_len, 2, 4 * hidden_dim)
    gates_tm = np.empty((seq_len, 2, batch, 4 * hidden_dim), dtype=dtype)
    gates_tm[:, 0] = lanes[:, :, 0].transpose(1, 0, 2)
    gates_tm[:, 1] = lanes[:, ::-1, 1].transpose(1, 0, 2)
    mask_tm, alive = _prepare_scan_mask(mask, batch, seq_len, dtype)
    if mask_tm is not None:
        lane_mask = np.empty((seq_len, 2, batch, 1), dtype=dtype)
        lane_mask[:, 0] = mask_tm
        lane_mask[:, 1] = mask_tm[::-1]
        both_dead = ~alive & ~alive[::-1]
    else:
        lane_mask = None
        both_dead = None
    w_hh = np.stack([whh_fwd.data, whh_bwd.data])  # (2, H, 4H)
    parents = (x, h0_fwd, c0_fwd, h0_bwd, c0_bwd, wih_fwd, whh_fwd, bias_fwd,
               wih_bwd, whh_bwd, bias_bwd)
    recording = _recording(*parents)

    lane_states = np.empty((seq_len, 2, batch, hidden_dim), dtype=dtype)
    if recording:
        alloc = np.zeros if both_dead is not None and both_dead.any() else np.empty
        prev_h = alloc(lane_states.shape, dtype=dtype)
        prev_c = alloc(lane_states.shape, dtype=dtype)
        gate_if = alloc((seq_len, 2, batch, 2 * hidden_dim), dtype=dtype)
        cand_gates = alloc(lane_states.shape, dtype=dtype)
        out_gates = alloc(lane_states.shape, dtype=dtype)
        tanh_cells = alloc(lane_states.shape, dtype=dtype)
    h = np.stack([h0_fwd.data, h0_bwd.data])
    c = np.stack([c0_fwd.data, c0_bwd.data])
    lane_gates = np.empty((2, batch, 4 * hidden_dim), dtype=dtype)
    for t in range(seq_len):
        if both_dead is not None and both_dead[t]:
            lane_states[t] = h
            continue
        np.matmul(h, w_hh, out=lane_gates)
        lane_gates += gates_tm[t]
        if recording:
            prev_h[t] = h
            prev_c[t] = c
            in_forget = _sigmoid_into(lane_gates[:, :, :2 * hidden_dim],
                                      gate_if[t])
            candidate = np.tanh(lane_gates[:, :, 2 * hidden_dim:3 * hidden_dim],
                                out=cand_gates[t])
            output_gate = _sigmoid_into(lane_gates[:, :, 3 * hidden_dim:],
                                        out_gates[t])
            tanh_cell = tanh_cells[t]
        else:
            in_forget = _sigmoid_into(lane_gates[:, :, :2 * hidden_dim],
                                      lane_gates[:, :, :2 * hidden_dim])
            candidate = np.tanh(lane_gates[:, :, 2 * hidden_dim:3 * hidden_dim])
            output_gate = _sigmoid_into(lane_gates[:, :, 3 * hidden_dim:],
                                        lane_gates[:, :, 3 * hidden_dim:])
            tanh_cell = np.empty((2, batch, hidden_dim), dtype=dtype)
        new_c = in_forget[:, :, hidden_dim:] * c
        new_c += in_forget[:, :, :hidden_dim] * candidate
        np.tanh(new_c, out=tanh_cell)
        new_h = output_gate * tanh_cell
        if lane_mask is not None:
            m = lane_mask[t]
            new_h -= h
            new_h *= m
            new_h += h
            new_c -= c
            new_c *= m
            new_c += c
        lane_states[t] = new_h
        h, c = new_h, new_c
    states = np.empty((batch, seq_len, 2 * hidden_dim), dtype=dtype)
    states[:, :, :hidden_dim] = lane_states[:, 0].transpose(1, 0, 2)
    states[:, :, hidden_dim:] = lane_states[::-1, 1].transpose(1, 0, 2)
    if not recording:
        return _wrap(states)

    def backward(grad):
        lane_grad = np.empty((seq_len, 2, batch, hidden_dim), dtype=dtype)
        lane_grad[:, 0] = grad[:, :, :hidden_dim].transpose(1, 0, 2)
        lane_grad[:, 1] = grad[:, ::-1, hidden_dim:].transpose(1, 0, 2)
        in_gates = gate_if[:, :, :, :hidden_dim]
        forget_gates = gate_if[:, :, :, hidden_dim:]
        pref_out = tanh_cells * out_gates * (1.0 - out_gates)
        pref_cell = out_gates * (1.0 - tanh_cells ** 2)
        pref_in = cand_gates * in_gates * (1.0 - in_gates)
        pref_forget = prev_c * forget_gates * (1.0 - forget_gates)
        pref_cand = in_gates * (1.0 - cand_gates ** 2)
        d_gates_all = np.zeros((seq_len, 2, batch, 4 * hidden_dim), dtype=dtype)
        d_h = np.zeros((2, batch, hidden_dim), dtype=dtype)
        d_c = np.zeros((2, batch, hidden_dim), dtype=dtype)
        w_hh_t = np.swapaxes(w_hh, 1, 2)
        for t in range(seq_len - 1, -1, -1):
            g_h = lane_grad[t] + d_h
            if both_dead is not None and both_dead[t]:
                d_h = g_h
                continue
            if lane_mask is not None:
                m = lane_mask[t]
                gh_active = g_h * m
                gh_pass = g_h - gh_active
                dc_active = d_c * m
                dc_pass = d_c - dc_active
            else:
                gh_active, gh_pass = g_h, None
                dc_active, dc_pass = d_c, None
            d_cell = dc_active + gh_active * pref_cell[t]
            step_dg = d_gates_all[t]
            np.multiply(d_cell, pref_in[t], out=step_dg[:, :, :hidden_dim])
            np.multiply(d_cell, pref_forget[t],
                        out=step_dg[:, :, hidden_dim:2 * hidden_dim])
            np.multiply(d_cell, pref_cand[t],
                        out=step_dg[:, :, 2 * hidden_dim:3 * hidden_dim])
            np.multiply(gh_active, pref_out[t],
                        out=step_dg[:, :, 3 * hidden_dim:])
            d_h = np.matmul(step_dg, w_hh_t)
            if gh_pass is not None:
                d_h += gh_pass
            d_c = d_cell * forget_gates[t]
            if dc_pass is not None:
                d_c += dc_pass
        d_gx = np.empty((batch, seq_len, 8 * hidden_dim), dtype=dtype)
        d_gx[:, :, :4 * hidden_dim] = d_gates_all[:, 0].transpose(1, 0, 2)
        d_gx[:, :, 4 * hidden_dim:] = d_gates_all[::-1, 1].transpose(1, 0, 2)
        flat = d_gx.reshape(batch * seq_len, 8 * hidden_dim)
        if x.requires_grad:
            x._accumulate_grad((flat @ wih_cat.T).reshape(x.data.shape), owned=True)
        if wih_fwd.requires_grad or wih_bwd.requires_grad:
            d_wih = x.data.reshape(batch * seq_len, -1).T @ flat
            if wih_fwd.requires_grad:
                wih_fwd._accumulate_grad(
                    np.ascontiguousarray(d_wih[:, :4 * hidden_dim]), owned=True)
            if wih_bwd.requires_grad:
                wih_bwd._accumulate_grad(
                    np.ascontiguousarray(d_wih[:, 4 * hidden_dim:]), owned=True)
        if bias_fwd.requires_grad or bias_bwd.requires_grad:
            d_bias = flat.sum(axis=0)
            if bias_fwd.requires_grad:
                bias_fwd._accumulate_grad(d_bias[:4 * hidden_dim].copy(), owned=True)
            if bias_bwd.requires_grad:
                bias_bwd._accumulate_grad(d_bias[4 * hidden_dim:].copy(), owned=True)
        for lane, weight in enumerate((whh_fwd, whh_bwd)):
            if weight.requires_grad:
                weight._accumulate_grad(
                    prev_h[:, lane].reshape(seq_len * batch, hidden_dim).T
                    @ d_gates_all[:, lane].reshape(seq_len * batch, 4 * hidden_dim),
                    owned=True)
        if h0_fwd.requires_grad:
            h0_fwd._accumulate_grad(d_h[0], owned=True)
        if h0_bwd.requires_grad:
            h0_bwd._accumulate_grad(d_h[1], owned=True)
        if c0_fwd.requires_grad:
            c0_fwd._accumulate_grad(d_c[0], owned=True)
        if c0_bwd.requires_grad:
            c0_bwd._accumulate_grad(d_c[1], owned=True)

    return _attach(states, parents, backward)


# --------------------------------------------------------------------------- #
# Attention pooling                                                            #
# --------------------------------------------------------------------------- #
#: Additive score penalty for masked positions.  Large enough that the masked
#: exponentials underflow to exactly zero after the softmax shift, yet safely
#: representable in float32 (unlike float64-only magnitudes such as -1e300).
ATTENTION_MASK_VALUE = -1e9


def attention_mask_penalty(mask, dtype) -> np.ndarray:
    """``(1 - mask) * ATTENTION_MASK_VALUE`` in the kernel's compute ``dtype``.

    Computing the penalty directly in the compute dtype keeps a float32 model
    in float32 (a float64 penalty array would silently upcast the scores and
    everything downstream).  Fully-masked rows degrade gracefully: every score
    receives the same offset, so (up to the offset's rounding) the softmax
    falls back to the softmax of the raw scores instead of producing NaNs.
    """
    mask_arr = np.asarray(mask)
    return (1.0 - mask_arr.astype(dtype, copy=False)) \
        * np.asarray(ATTENTION_MASK_VALUE, dtype=dtype)


def attention_pooling(x: Tensor, scores: Tensor, mask=None) -> Tensor:
    """Fused masked-softmax attention pooling.

    ``x`` is ``(batch, seq, features)``, ``scores`` ``(batch, seq)`` (already
    produced by the score MLP, whose nodes stay outside this kernel).  The
    score -> masked-softmax -> weighted-sum chain collapses into one node; the
    weighted sum runs as a batched GEMM.
    """
    score_data = scores.data
    if mask is not None:
        score_data = score_data + attention_mask_penalty(mask, score_data.dtype)
    weights = _softmax_data(score_data, axis=1)  # (batch, seq)
    data = (weights[:, None, :] @ x.data)[:, 0, :]
    parents = (x, scores)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(weights[:, :, None] * grad[:, None, :], owned=True)
        if scores.requires_grad:
            d_weights = (x.data @ grad[:, :, None])[:, :, 0]
            inner = (d_weights * weights).sum(axis=1, keepdims=True)
            scores._accumulate_grad(weights * (d_weights - inner), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Layer normalisation                                                          #
# --------------------------------------------------------------------------- #
def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Fused layer normalisation over the last axis with learnable affine."""
    mean = x.data.mean(axis=-1, keepdims=True)
    centred = x.data - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalised = centred * inv_std
    data = normalised * weight.data + bias.data
    parents = (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            d_norm = grad * weight.data
            mean_d = d_norm.mean(axis=-1, keepdims=True)
            mean_dn = (d_norm * normalised).mean(axis=-1, keepdims=True)
            x._accumulate_grad(inv_std * (d_norm - mean_d - normalised * mean_dn),
                               owned=True)
        reduce_axes = tuple(range(grad.ndim - 1))
        if weight.requires_grad:
            weight._accumulate_grad((grad * normalised).sum(axis=reduce_axes),
                                    owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(grad.sum(axis=reduce_axes), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling                                                                      #
# --------------------------------------------------------------------------- #
def max_pool1d(x: Tensor) -> Tensor:
    """Fused global max over the time axis of ``(batch, seq, channels)``.

    Backward scatters the gradient to the argmax position (first winner on
    exact ties), avoiding the composed path's equality-mask construction and
    tie normalisation.
    """
    if not _recording(x):
        return _wrap(x.data.max(axis=1))
    # One scan: the argmax both selects the forward value and is reused by the
    # backward scatter.
    winners = x.data.argmax(axis=1)[:, None, :]  # (batch, 1, channels)
    data = np.take_along_axis(x.data, winners, axis=1)[:, 0, :]

    def backward(grad):
        full = np.zeros_like(x.data)
        np.put_along_axis(full, winners, grad[:, None, :], axis=1)
        x._accumulate_grad(full, owned=True)

    return _attach(data, (x,), backward)


# --------------------------------------------------------------------------- #
# Convolution                                                                  #
# --------------------------------------------------------------------------- #
def conv1d(x: Tensor, weight: Tensor, bias: Tensor, kernel_size: int) -> Tensor:
    """Fused valid 1-D convolution over ``(batch, seq, channels)``.

    The unfold is a zero-copy ``as_strided`` view (instead of materialising a
    window copy per kernel offset); a single reshape materialises the
    ``(batch, out_len, k * channels)`` matrix that feeds one matmul.
    """
    batch, seq_len, channels = x.data.shape
    out_len = seq_len - kernel_size + 1
    if out_len <= 0:
        raise ValueError(
            f"sequence length {seq_len} shorter than kernel size {kernel_size}")
    if kernel_size == 1:
        # A width-1 convolution is exactly a per-position linear projection.
        return linear(x, weight, bias)
    # Zero-copy strided unfold in (offset-major, channel-minor) order, i.e.
    # windows[b, o, j, c] == x[b, o + j, c]; the single reshape below is the
    # only materialisation.
    s0, s1, s2 = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data, shape=(batch, out_len, kernel_size, channels),
        strides=(s0, s1, s1, s2))
    unfolded = windows.reshape(batch, out_len, kernel_size * channels)
    data = unfolded @ weight.data + bias.data
    parents = (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            d_unfolded = (grad @ weight.data.T).reshape(
                batch, out_len, kernel_size, channels)
            d_x = np.zeros_like(x.data)
            for offset in range(kernel_size):
                d_x[:, offset:offset + out_len, :] += d_unfolded[:, :, offset, :]
            x._accumulate_grad(d_x, owned=True)
        if weight.requires_grad:
            flat_u = unfolded.reshape(-1, kernel_size * channels)
            flat_g = grad.reshape(-1, grad.shape[-1])
            weight._accumulate_grad(flat_u.T @ flat_g, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0),
                                  owned=True)

    return _attach(data, parents, backward)
