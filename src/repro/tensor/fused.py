"""Fused autograd kernels: one graph node per composite operation.

The composed implementations in :mod:`repro.tensor.functional` build long
chains of primitive nodes (a single softmax cross-entropy spawns ~8 nodes,
one GRU step ~15).  Each kernel here computes the same forward value with
plain NumPy and registers a *single* node whose backward closure applies the
analytic gradient, which removes almost all graph/closure overhead from the
hot training loops.

Kernel inventory
----------------
``linear``            ``x @ W + b`` with N-d ``x``
``softmax``           stable softmax along an axis
``log_softmax``       stable log-softmax along an axis
``cross_entropy``     softmax cross-entropy on integer targets (opt. weights)
``distillation_kl``   temperature-scaled ``tau^2 KL(teacher || student)``
``gru_step``          one fused GRU cell step
``lstm_step``         one fused LSTM cell step (two-node pair ``h``/``c``)
``conv1d``            valid 1-D convolution via an ``as_strided`` unfold

Every kernel is verified against its composed-primitive counterpart by
numerical-gradient parity tests in ``tests/tensor/test_fused.py`` (both
float64 and float32).

The module-level switch :func:`set_fused_enabled` /
:func:`fused_kernels` lets callers (and the perf benchmarks) fall back to the
composed implementations, which is how the before/after numbers in
``PERFORMANCE.md`` are measured.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor.tensor import (
    Tensor,
    _attach,
    _stable_sigmoid,
    _wrap,
    is_grad_enabled,
)

_FUSED_ENABLED = True


def is_fused_enabled() -> bool:
    """Return whether the fused fast path is active."""
    return _FUSED_ENABLED


def set_fused_enabled(enabled: bool) -> bool:
    """Globally enable/disable fused kernels; returns the previous setting."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager that temporarily toggles the fused fast path."""
    previous = set_fused_enabled(enabled)
    try:
        yield
    finally:
        set_fused_enabled(previous)


def _recording(*tensors: Tensor) -> bool:
    if not is_grad_enabled():
        return False
    for tensor in tensors:
        if tensor.requires_grad:
            return True
    return False


# --------------------------------------------------------------------------- #
# Dense projection                                                             #
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight + bias`` for ``x`` of shape ``(..., in_features)``."""
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(grad @ weight.data.T, owned=True)
        if weight.requires_grad:
            if x.data.ndim == 2:
                weight._accumulate_grad(x.data.T @ grad, owned=True)
            else:
                flat_x = x.data.reshape(-1, x.data.shape[-1])
                flat_g = grad.reshape(-1, grad.shape[-1])
                weight._accumulate_grad(flat_x.T @ flat_g, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Softmax family                                                               #
# --------------------------------------------------------------------------- #
def _softmax_data(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def _log_softmax_data(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as a single graph node."""
    data = _softmax_data(x.data, axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate_grad(data * (grad - inner), owned=True)

    return _attach(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` as a single graph node."""
    data = _log_softmax_data(x.data, axis=axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        probs = np.exp(data)
        x._accumulate_grad(grad - probs * grad.sum(axis=axis, keepdims=True), owned=True)

    return _attach(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Fused softmax cross-entropy on integer ``targets``.

    Matches ``functional.cross_entropy_reference``: the mean (or
    weight-normalised sum) of per-sample negative log-likelihoods.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D integer array")
    num_classes = logits.data.shape[-1]
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("label outside [0, num_classes)")
    rows = np.arange(targets.shape[0])

    log_probs = _log_softmax_data(logits.data, axis=-1)
    picked = log_probs[rows, targets]
    if weights is not None:
        sample_weights = np.asarray(weights, dtype=logits.data.dtype)
        coeff = sample_weights / float(np.sum(sample_weights))
        value = -(picked * coeff).sum()
    else:
        coeff = None
        value = -picked.mean()
    data = np.asarray(value, dtype=logits.data.dtype)
    if not _recording(logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d logits = (softmax - onehot) * per-sample coefficient
        d_logits = np.exp(log_probs)
        d_logits[rows, targets] -= 1.0
        if coeff is not None:
            d_logits *= coeff[:, None]
        else:
            d_logits /= targets.shape[0]
        d_logits *= grad  # grad is scalar-shaped
        logits._accumulate_grad(d_logits, owned=True)

    return _attach(data, (logits,), backward)


def distillation_kl(student_logits: Tensor, teacher_logits: Tensor,
                    temperature: float = 1.0) -> Tensor:
    """Fused ``tau^2 * KL(teacher || student)`` at temperature ``tau``.

    The teacher branch is treated as a constant (matching the composed
    implementation, which detaches the teacher), so gradients only flow into
    the student logits.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    tau = float(temperature)
    student_log = _log_softmax_data(student_logits.data / tau)
    teacher_prob = _softmax_data(teacher_logits.data / tau, axis=-1)
    q = np.clip(teacher_prob, 1e-12, None)
    batch = student_logits.data.shape[0] if student_logits.data.ndim > 0 else 1
    value = (tau ** 2) * float((q * (np.log(q) - student_log)).sum()) / float(batch)
    data = np.asarray(value, dtype=student_logits.data.dtype)
    if not _recording(student_logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d student = tau/B * (softmax(student/tau) * sum_j q_j - q)
        student_prob = np.exp(student_log)
        row_mass = q.sum(axis=-1, keepdims=True)
        d_student = (tau / batch) * (student_prob * row_mass - q)
        d_student *= grad
        student_logits._accumulate_grad(d_student, owned=True)

    return _attach(data, (student_logits,), backward)


# --------------------------------------------------------------------------- #
# Recurrent cell steps                                                         #
# --------------------------------------------------------------------------- #
def gru_step(x: Tensor, hidden: Tensor, weight_ih: Tensor, weight_hh: Tensor,
             bias: Tensor) -> Tensor:
    """One fused GRU step; mirrors ``GRUCell`` layout ``[reset, update, new]``."""
    h = hidden.data.shape[-1]
    gates_x = x.data @ weight_ih.data + bias.data
    gates_h = hidden.data @ weight_hh.data
    reset = _stable_sigmoid(gates_x[:, :h] + gates_h[:, :h])
    update = _stable_sigmoid(gates_x[:, h:2 * h] + gates_h[:, h:2 * h])
    gh_new = gates_h[:, 2 * h:]
    candidate = np.tanh(gates_x[:, 2 * h:] + reset * gh_new)
    data = update * hidden.data + (1.0 - update) * candidate
    parents = (x, hidden, weight_ih, weight_hh, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        d_update = grad * (hidden.data - candidate) * update * (1.0 - update)
        d_candidate = grad * (1.0 - update) * (1.0 - candidate ** 2)
        d_reset = d_candidate * gh_new * reset * (1.0 - reset)
        d_gates_x = np.concatenate([d_reset, d_update, d_candidate], axis=1)
        d_gates_h = np.concatenate([d_reset, d_update, d_candidate * reset], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates_x @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(grad * update + d_gates_h @ weight_hh.data.T,
                                    owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates_x, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates_h, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates_x.sum(axis=0), owned=True)

    return _attach(data, parents, backward)


def lstm_step(x: Tensor, hidden: Tensor, cell: Tensor, weight_ih: Tensor,
              weight_hh: Tensor, bias: Tensor) -> tuple[Tensor, Tensor]:
    """One fused LSTM step; gate layout ``[input, forget, candidate, output]``.

    Returns ``(new_hidden, new_cell)`` as a pair of graph nodes: ``new_cell``
    owns the gradient flow into the gates that write the cell state, and
    ``new_hidden`` (whose parents include ``new_cell``) owns the output-gate
    path plus the ``tanh`` read-out of the new cell state.
    """
    h = hidden.data.shape[-1]
    gates = x.data @ weight_ih.data + hidden.data @ weight_hh.data + bias.data
    input_gate = _stable_sigmoid(gates[:, :h])
    forget_gate = _stable_sigmoid(gates[:, h:2 * h])
    candidate = np.tanh(gates[:, 2 * h:3 * h])
    output_gate = _stable_sigmoid(gates[:, 3 * h:])
    new_cell_data = forget_gate * cell.data + input_gate * candidate
    tanh_cell = np.tanh(new_cell_data)
    new_hidden_data = output_gate * tanh_cell

    cell_parents = (x, hidden, cell, weight_ih, weight_hh, bias)
    if not _recording(*cell_parents):
        return _wrap(new_hidden_data), _wrap(new_cell_data)

    # The output-gate gradient is produced by the ``new_hidden`` node but the
    # matmuls into x / hidden / the weights are done exactly once, by the
    # ``new_cell`` node (topologically guaranteed to run after ``new_hidden``),
    # so the fused step performs the same number of matmuls as the composed
    # chain while collapsing ~15 graph nodes into 2.
    pending_output = [None]

    def cell_backward(grad_cell):
        d_input = grad_cell * candidate * input_gate * (1.0 - input_gate)
        d_forget = grad_cell * cell.data * forget_gate * (1.0 - forget_gate)
        d_candidate = grad_cell * input_gate * (1.0 - candidate ** 2)
        d_output = pending_output[0]
        pending_output[0] = None
        if d_output is None:
            d_output = np.zeros_like(d_input)
        d_gates = np.concatenate([d_input, d_forget, d_candidate, d_output], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(d_gates @ weight_hh.data.T, owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates.sum(axis=0), owned=True)
        if cell.requires_grad:
            cell._accumulate_grad(grad_cell * forget_gate, owned=True)

    new_cell = _attach(new_cell_data, cell_parents, cell_backward)

    def hidden_backward(grad_hidden):
        d_output = grad_hidden * tanh_cell * output_gate * (1.0 - output_gate)
        if pending_output[0] is None:
            pending_output[0] = d_output
        else:
            pending_output[0] += d_output
        new_cell._accumulate_grad(grad_hidden * output_gate * (1.0 - tanh_cell ** 2),
                                  owned=True)

    new_hidden = _attach(new_hidden_data, (new_cell,), hidden_backward)
    return new_hidden, new_cell


# --------------------------------------------------------------------------- #
# Pooling                                                                      #
# --------------------------------------------------------------------------- #
def max_pool1d(x: Tensor) -> Tensor:
    """Fused global max over the time axis of ``(batch, seq, channels)``.

    Backward scatters the gradient to the argmax position (first winner on
    exact ties), avoiding the composed path's equality-mask construction and
    tie normalisation.
    """
    if not _recording(x):
        return _wrap(x.data.max(axis=1))
    # One scan: the argmax both selects the forward value and is reused by the
    # backward scatter.
    winners = x.data.argmax(axis=1)[:, None, :]  # (batch, 1, channels)
    data = np.take_along_axis(x.data, winners, axis=1)[:, 0, :]

    def backward(grad):
        full = np.zeros_like(x.data)
        np.put_along_axis(full, winners, grad[:, None, :], axis=1)
        x._accumulate_grad(full, owned=True)

    return _attach(data, (x,), backward)


# --------------------------------------------------------------------------- #
# Convolution                                                                  #
# --------------------------------------------------------------------------- #
def conv1d(x: Tensor, weight: Tensor, bias: Tensor, kernel_size: int) -> Tensor:
    """Fused valid 1-D convolution over ``(batch, seq, channels)``.

    The unfold is a zero-copy ``as_strided`` view (instead of materialising a
    window copy per kernel offset); a single reshape materialises the
    ``(batch, out_len, k * channels)`` matrix that feeds one matmul.
    """
    batch, seq_len, channels = x.data.shape
    out_len = seq_len - kernel_size + 1
    if out_len <= 0:
        raise ValueError(
            f"sequence length {seq_len} shorter than kernel size {kernel_size}")
    if kernel_size == 1:
        # A width-1 convolution is exactly a per-position linear projection.
        return linear(x, weight, bias)
    # Zero-copy strided unfold in (offset-major, channel-minor) order, i.e.
    # windows[b, o, j, c] == x[b, o + j, c]; the single reshape below is the
    # only materialisation.
    s0, s1, s2 = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data, shape=(batch, out_len, kernel_size, channels),
        strides=(s0, s1, s1, s2))
    unfolded = windows.reshape(batch, out_len, kernel_size * channels)
    data = unfolded @ weight.data + bias.data
    parents = (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            d_unfolded = (grad @ weight.data.T).reshape(
                batch, out_len, kernel_size, channels)
            d_x = np.zeros_like(x.data)
            for offset in range(kernel_size):
                d_x[:, offset:offset + out_len, :] += d_unfolded[:, :, offset, :]
            x._accumulate_grad(d_x, owned=True)
        if weight.requires_grad:
            flat_u = unfolded.reshape(-1, kernel_size * channels)
            flat_g = grad.reshape(-1, grad.shape[-1])
            weight._accumulate_grad(flat_u.T @ flat_g, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0),
                                  owned=True)

    return _attach(data, parents, backward)
