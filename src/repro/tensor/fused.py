"""Fused autograd kernels: one graph node per composite operation.

The composed implementations in :mod:`repro.tensor.functional` build long
chains of primitive nodes (a single softmax cross-entropy spawns ~8 nodes,
one GRU step ~15).  Each kernel here computes the same forward value with
plain NumPy and registers a *single* node whose backward closure applies the
analytic gradient, which removes almost all graph/closure overhead from the
hot training loops.

Kernel inventory
----------------
``linear``            ``x @ W + b`` with N-d ``x``
``softmax``           stable softmax along an axis
``log_softmax``       stable log-softmax along an axis
``cross_entropy``     softmax cross-entropy on integer targets (opt. weights)
``distillation_kl``   temperature-scaled ``tau^2 KL(teacher || student)``
``add_loss``          the whole ADD loss (Eq. 5–6): normalise -> pairwise
                      distances -> row softmax -> temperature KL in one node
``embedding``         table lookup: gather forward, ``np.add.at`` scatter back
``gru_step``          one fused GRU cell step
``lstm_step``         one fused LSTM cell step (two-node pair ``h``/``c``)
``lane_scan``         the N-lane whole-sequence recurrent scan core
``gru_scan``          whole-sequence GRU scan (single-lane ``lane_scan``)
``lstm_scan``         whole-sequence LSTM scan (single-lane ``lane_scan``)
``attention_pooling`` score -> masked softmax -> weighted sum over time
``masked_mean``       mask-weighted mean over the time axis
``mix_experts``       gate-weighted mixture of stacked expert features
``layer_norm``        layer normalisation over the last axis
``conv1d``            valid 1-D convolution via an ``as_strided`` unfold

All whole-sequence recurrence routes through :func:`lane_scan` — the single
backward-through-time implementation in the engine.  It consumes
``(batch, seq, features)`` plus per-lane initial states and weight sets,
precomputes the input-side gate projections for every lane in one GEMM, and
runs a single per-step loop over lane-stacked ``(lanes, batch, ·)`` arrays
inside one graph node; the backward pass is one reverse loop over per-step
gate activations stashed during the forward.  An optional 0/1 ``mask``
carries the previous state through padded positions (and skips steps that are
dead for the whole batch).  ``gru_scan`` / ``lstm_scan`` are one-lane
wrappers (their ``reverse=True`` flag scans right-to-left and is exercised by
the parity tests); ``gru_bidir_scan`` / ``lstm_bidir_scan`` run
(forward, backward) lanes; MoSE's mixture of sequential experts runs all N
expert lanes in one scan via ``repro.nn.recurrent.lstm_expert_scan``.

Every kernel is verified against its composed-primitive counterpart by
numerical-gradient parity tests in ``tests/tensor/test_fused.py`` and — for
the scan/attention/layer-norm kernels — ``tests/tensor/test_fused_scan.py``
(both float64 and float32).

The module-level switch :func:`set_fused_enabled` /
:func:`fused_kernels` lets callers (and the perf benchmarks) fall back to the
composed implementations, which is how the before/after numbers in
``PERFORMANCE.md`` are measured.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.tensor.tensor import (
    Tensor,
    _attach,
    _stable_sigmoid,
    _wrap,
    is_grad_enabled,
)

_FUSED_ENABLED = True


def is_fused_enabled() -> bool:
    """Return whether the fused fast path is active."""
    return _FUSED_ENABLED


def set_fused_enabled(enabled: bool) -> bool:
    """Globally enable/disable fused kernels; returns the previous setting."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager that temporarily toggles the fused fast path."""
    previous = set_fused_enabled(enabled)
    try:
        yield
    finally:
        set_fused_enabled(previous)


def _recording(*tensors: Tensor) -> bool:
    if not is_grad_enabled():
        return False
    for tensor in tensors:
        if tensor.requires_grad:
            return True
    return False


# --------------------------------------------------------------------------- #
# Dense projection                                                             #
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight + bias`` for ``x`` of shape ``(..., in_features)``."""
    data = x.data @ weight.data
    if bias is not None:
        data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(grad @ weight.data.T, owned=True)
        if weight.requires_grad:
            if x.data.ndim == 2:
                weight._accumulate_grad(x.data.T @ grad, owned=True)
            else:
                flat_x = x.data.reshape(-1, x.data.shape[-1])
                flat_g = grad.reshape(-1, grad.shape[-1])
                weight._accumulate_grad(flat_x.T @ flat_g, owned=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Softmax family                                                               #
# --------------------------------------------------------------------------- #
def _softmax_data(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def _log_softmax_data(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as a single graph node."""
    data = _softmax_data(x.data, axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate_grad(data * (grad - inner), owned=True)

    return _attach(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis`` as a single graph node."""
    data = _log_softmax_data(x.data, axis=axis)
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        probs = np.exp(data)
        x._accumulate_grad(grad - probs * grad.sum(axis=axis, keepdims=True), owned=True)

    return _attach(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Fused softmax cross-entropy on integer ``targets``.

    Matches ``functional.cross_entropy_reference``: the mean (or
    weight-normalised sum) of per-sample negative log-likelihoods.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D integer array")
    num_classes = logits.data.shape[-1]
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("label outside [0, num_classes)")
    rows = np.arange(targets.shape[0])

    log_probs = _log_softmax_data(logits.data, axis=-1)
    picked = log_probs[rows, targets]
    if weights is not None:
        sample_weights = np.asarray(weights, dtype=logits.data.dtype)
        coeff = sample_weights / float(np.sum(sample_weights))
        value = -(picked * coeff).sum()
    else:
        coeff = None
        value = -picked.mean()
    data = np.asarray(value, dtype=logits.data.dtype)
    if not _recording(logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d logits = (softmax - onehot) * per-sample coefficient
        d_logits = np.exp(log_probs)
        d_logits[rows, targets] -= 1.0
        if coeff is not None:
            d_logits *= coeff[:, None]
        else:
            d_logits /= targets.shape[0]
        d_logits *= grad  # grad is scalar-shaped
        logits._accumulate_grad(d_logits, owned=True)

    return _attach(data, (logits,), backward)


def distillation_kl(student_logits: Tensor, teacher_logits: Tensor,
                    temperature: float = 1.0) -> Tensor:
    """Fused ``tau^2 * KL(teacher || student)`` at temperature ``tau``.

    The teacher branch is treated as a constant (matching the composed
    implementation, which detaches the teacher), so gradients only flow into
    the student logits.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    tau = float(temperature)
    student_log = _log_softmax_data(student_logits.data / tau)
    teacher_prob = _softmax_data(teacher_logits.data / tau, axis=-1)
    q = np.clip(teacher_prob, 1e-12, None)
    batch = student_logits.data.shape[0] if student_logits.data.ndim > 0 else 1
    value = (tau ** 2) * float((q * (np.log(q) - student_log)).sum()) / float(batch)
    data = np.asarray(value, dtype=student_logits.data.dtype)
    if not _recording(student_logits):
        return _wrap(data)

    def backward(grad):
        # d loss / d student = tau/B * (softmax(student/tau) * sum_j q_j - q)
        student_prob = np.exp(student_log)
        row_mass = q.sum(axis=-1, keepdims=True)
        d_student = (tau / batch) * (student_prob * row_mass - q)
        d_student *= grad
        student_logits._accumulate_grad(d_student, owned=True)

    return _attach(data, (student_logits,), backward)


def _neg_correlation(features: np.ndarray, normalize: bool):
    """Negated sample-correlation matrix ``-relu(||n_i - n_j||^2)`` (Eq. 5).

    Returns ``(matrix, raw, normed, radii)`` where ``raw`` is the un-clamped
    distance matrix (its sign drives the relu subgradient in the backward) and
    ``normed`` / ``radii`` are the L2-normalised features and their norms
    (``radii`` is ``None`` when ``normalize`` is off).
    """
    if normalize:
        radii = np.sqrt((features * features).sum(axis=-1, keepdims=True))
        normed = features / (radii + 1e-12)
    else:
        radii = None
        normed = features
    squared = (normed * normed).sum(axis=1, keepdims=True)
    raw = squared + squared.T - 2.0 * (normed @ normed.T)
    return -np.maximum(raw, 0.0), raw, normed, radii


def add_loss(student_features: Tensor, teacher_features: Tensor,
             temperature: float = 1.0, normalize: bool = True) -> Tensor:
    """Fused adversarial de-biasing distillation loss (Eq. 5–6) in one node.

    Collapses the composed chain — L2-normalise both feature sets, build the
    pairwise squared-distance matrices, soften the negated rows at
    ``temperature`` and match them with the ``tau^2``-scaled KL — whose
    primitive form spawns ~25 graph nodes of ``(batch, batch)`` intermediates
    per call.  ``teacher_features`` is a constant (the composed path detaches
    it), so the single analytic backward only flows into the student
    features.  The relu clamp on numerical-noise negatives is preserved,
    including its subgradient (zero where the raw distance is non-positive).
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    tau = float(temperature)
    student = student_features.data
    batch = student.shape[0]
    student_matrix, raw, normed, radii = _neg_correlation(student, normalize)
    teacher_matrix, _, _, _ = _neg_correlation(teacher_features.data, normalize)
    student_log = _log_softmax_data(student_matrix / tau)
    q = np.clip(_softmax_data(teacher_matrix / tau, axis=-1), 1e-12, None)
    value = (tau ** 2) * float((q * (np.log(q) - student_log)).sum()) / float(batch)
    data = np.asarray(value, dtype=student.dtype)
    if not _recording(student_features):
        return _wrap(data)

    def backward(grad):
        # KL -> student matrix (same rule as the fused distillation_kl)...
        probs = np.exp(student_log)
        row_mass = q.sum(axis=-1, keepdims=True)
        d_matrix = (tau / batch) * (probs * row_mass - q)
        d_matrix *= grad
        # ... -> distances (negation + relu subgradient) ...
        np.negative(d_matrix, out=d_matrix)
        d_matrix *= raw > 0.0
        # ... -> normalised features: D_ij = |n_i|^2 + |n_j|^2 - 2 n_i.n_j.
        sym = d_matrix + d_matrix.T
        d_normed = 2.0 * (sym.sum(axis=1, keepdims=True) * normed - sym @ normed)
        if normalize:
            # n = f / (r + eps) with r = |f|: the correction term routes the
            # gradient of the norm back through the raw features.
            scale = 1.0 / (radii + 1e-12)
            inner = (d_normed * student).sum(axis=1, keepdims=True)
            d_features = d_normed * scale - student * (inner * scale * scale / radii)
        else:
            d_features = d_normed
        student_features._accumulate_grad(d_features, owned=True)

    return _attach(data, (student_features,), backward)


# --------------------------------------------------------------------------- #
# Embedding lookup                                                             #
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Fused table lookup: rows of ``weight`` for integer ``indices`` (any shape).

    The forward is the plain NumPy gather; the backward scatters the incoming
    gradient back into a zeroed table with a single flat ``np.add.at`` call
    (duplicate indices accumulate), instead of routing through the generic
    ``Tensor.__getitem__`` advanced-indexing node.
    """
    indices = np.asarray(indices, dtype=np.int64)
    data = weight.data[indices]
    if not _recording(weight):
        return _wrap(data)
    flat = indices.reshape(-1)

    def backward(grad):
        full = np.zeros_like(weight.data)
        np.add.at(full, flat, grad.reshape(flat.shape[0], *weight.data.shape[1:]))
        weight._accumulate_grad(full, owned=True)

    return _attach(data, (weight,), backward)


# --------------------------------------------------------------------------- #
# Recurrent cell steps                                                         #
# --------------------------------------------------------------------------- #
def gru_step(x: Tensor, hidden: Tensor, weight_ih: Tensor, weight_hh: Tensor,
             bias: Tensor) -> Tensor:
    """One fused GRU step; mirrors ``GRUCell`` layout ``[reset, update, new]``."""
    h = hidden.data.shape[-1]
    gates_x = x.data @ weight_ih.data + bias.data
    gates_h = hidden.data @ weight_hh.data
    reset = _stable_sigmoid(gates_x[:, :h] + gates_h[:, :h])
    update = _stable_sigmoid(gates_x[:, h:2 * h] + gates_h[:, h:2 * h])
    gh_new = gates_h[:, 2 * h:]
    candidate = np.tanh(gates_x[:, 2 * h:] + reset * gh_new)
    data = update * hidden.data + (1.0 - update) * candidate
    parents = (x, hidden, weight_ih, weight_hh, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        d_update = grad * (hidden.data - candidate) * update * (1.0 - update)
        d_candidate = grad * (1.0 - update) * (1.0 - candidate ** 2)
        d_reset = d_candidate * gh_new * reset * (1.0 - reset)
        d_gates_x = np.concatenate([d_reset, d_update, d_candidate], axis=1)
        d_gates_h = np.concatenate([d_reset, d_update, d_candidate * reset], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates_x @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(grad * update + d_gates_h @ weight_hh.data.T,
                                    owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates_x, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates_h, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates_x.sum(axis=0), owned=True)

    return _attach(data, parents, backward)


def lstm_step(x: Tensor, hidden: Tensor, cell: Tensor, weight_ih: Tensor,
              weight_hh: Tensor, bias: Tensor) -> tuple[Tensor, Tensor]:
    """One fused LSTM step; gate layout ``[input, forget, candidate, output]``.

    Returns ``(new_hidden, new_cell)`` as a pair of graph nodes: ``new_cell``
    owns the gradient flow into the gates that write the cell state, and
    ``new_hidden`` (whose parents include ``new_cell``) owns the output-gate
    path plus the ``tanh`` read-out of the new cell state.
    """
    h = hidden.data.shape[-1]
    gates = x.data @ weight_ih.data + hidden.data @ weight_hh.data + bias.data
    input_gate = _stable_sigmoid(gates[:, :h])
    forget_gate = _stable_sigmoid(gates[:, h:2 * h])
    candidate = np.tanh(gates[:, 2 * h:3 * h])
    output_gate = _stable_sigmoid(gates[:, 3 * h:])
    new_cell_data = forget_gate * cell.data + input_gate * candidate
    tanh_cell = np.tanh(new_cell_data)
    new_hidden_data = output_gate * tanh_cell

    cell_parents = (x, hidden, cell, weight_ih, weight_hh, bias)
    if not _recording(*cell_parents):
        return _wrap(new_hidden_data), _wrap(new_cell_data)

    # The output-gate gradient is produced by the ``new_hidden`` node but the
    # matmuls into x / hidden / the weights are done exactly once, by the
    # ``new_cell`` node (topologically guaranteed to run after ``new_hidden``),
    # so the fused step performs the same number of matmuls as the composed
    # chain while collapsing ~15 graph nodes into 2.
    pending_output = [None]

    def cell_backward(grad_cell):
        d_input = grad_cell * candidate * input_gate * (1.0 - input_gate)
        d_forget = grad_cell * cell.data * forget_gate * (1.0 - forget_gate)
        d_candidate = grad_cell * input_gate * (1.0 - candidate ** 2)
        d_output = pending_output[0]
        pending_output[0] = None
        if d_output is None:
            d_output = np.zeros_like(d_input)
        d_gates = np.concatenate([d_input, d_forget, d_candidate, d_output], axis=1)
        if x.requires_grad:
            x._accumulate_grad(d_gates @ weight_ih.data.T, owned=True)
        if hidden.requires_grad:
            hidden._accumulate_grad(d_gates @ weight_hh.data.T, owned=True)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(x.data.T @ d_gates, owned=True)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(hidden.data.T @ d_gates, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates.sum(axis=0), owned=True)
        if cell.requires_grad:
            cell._accumulate_grad(grad_cell * forget_gate, owned=True)

    new_cell = _attach(new_cell_data, cell_parents, cell_backward)

    def hidden_backward(grad_hidden):
        d_output = grad_hidden * tanh_cell * output_gate * (1.0 - output_gate)
        if pending_output[0] is None:
            pending_output[0] = d_output
        else:
            pending_output[0] += d_output
        new_cell._accumulate_grad(grad_hidden * output_gate * (1.0 - tanh_cell ** 2),
                                  owned=True)

    new_hidden = _attach(new_hidden_data, (new_cell,), hidden_backward)
    return new_hidden, new_cell


# --------------------------------------------------------------------------- #
# Whole-sequence recurrent scans: the N-lane core                              #
# --------------------------------------------------------------------------- #
# There is exactly ONE backward-through-time implementation in this module:
# :func:`lane_scan`.  It runs a single time loop over lane-stacked
# ``(lanes, batch, ·)`` arrays, parameterised by cell type (GRU or LSTM gate
# math share the stash layout, mask carry, dead-step skip and the analytic
# backward).  A *lane* is one independent recurrence reading the same input
# sequence with its own weight set:
#
# * one lane                 -> ``gru_scan`` / ``lstm_scan``
# * (forward, backward) lanes -> ``gru_bidir_scan`` / ``lstm_bidir_scan``
#   (the backward lane consumes time right-to-left via pre-flipped inputs)
# * (expert_0 .. expert_{N-1}) lanes -> MoSE's mixture of sequential experts,
#   all N experts advancing inside one loop instead of N sequential scans.
#
# The four public scan kernels below are thin wrappers that adapt their
# historical signatures onto the core; MoSE dispatches through
# ``repro.nn.recurrent.lstm_expert_scan``.
#
# Implementation notes:
#
# * All sequence-shaped internals are *time-major* — stash arrays are indexed
#   ``stash[t]`` so every per-step read/write touches a contiguous block.  The
#   (batch, seq, ...) public layout is produced/consumed via one bulk
#   transpose at the node boundary.  (With batch-major stashes every per-step
#   ufunc ran on a strided view, which profiling showed cost ~2x.)
# * Reversed lanes flip their inputs once up front and their outputs once at
#   the end, so the loop itself always runs ``t = 0..T-1`` over contiguous
#   memory.
# * Gate activations are computed straight into the backward stash (or into
#   scratch when not recording) with in-place ufuncs — the loops are
#   Python-call-bound at the paper's layer sizes, so call count and
#   contiguity, not FLOPs, dominate.  Lane-stacking exists for the same
#   reason: per step, all lanes share one batched ``(N, B, H) @ (N, H, G*H)``
#   matmul and one ufunc call per gate, so the Python overhead is O(T), not
#   O(T * lanes).


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Overflow-free logistic via ``0.5 * tanh(x / 2) + 0.5``, written into ``out``.

    ``tanh`` saturates instead of overflowing, so this matches
    :func:`_stable_sigmoid` to a couple of ulps while costing four in-place
    ufunc calls and zero temporaries.
    """
    np.multiply(x, 0.5, out=out)
    np.tanh(out, out=out)
    out *= 0.5
    out += 0.5
    return out


def _prepare_scan_mask(mask, batch: int, seq_len: int, dtype):
    """Normalise an optional 0/1 mask to time-major ``(mask_tm, alive)``.

    ``mask_tm`` is ``(seq, batch, 1)`` in the compute dtype (for blending the
    carried state), ``alive[t]`` is False when step ``t`` is padding for the
    *entire* batch, in which case the scan skips its recurrence GEMM outright.
    """
    if mask is None:
        return None, None
    mask_arr = np.asarray(mask, dtype=dtype)
    if mask_arr.shape != (batch, seq_len):
        raise ValueError(
            f"mask shape {mask_arr.shape} does not match (batch, seq) = "
            f"({batch}, {seq_len})")
    mask_tm = np.ascontiguousarray(mask_arr.T)[..., None]
    return mask_tm, mask_arr.sum(axis=0) > 0


def lane_scan(cell: str, x: Tensor, h0, c0, weight_ih, weight_hh, bias,
              mask=None, lane_reverse=None) -> Tensor:
    """N-lane whole-sequence recurrent scan — the single BPTT core.

    ``cell`` is ``"gru"`` or ``"lstm"``.  ``x`` is the shared input
    ``(batch, seq, features)``; ``h0`` (and ``c0`` for LSTM) are per-lane
    initial states ``(batch, hidden)``; ``weight_ih`` / ``weight_hh`` /
    ``bias`` are per-lane weight sets with the cells' gate layouts
    (``[reset, update, new]`` for GRU, ``[input, forget, candidate, output]``
    for LSTM).  ``lane_reverse[n]`` scans lane ``n`` right-to-left (inputs are
    flipped once up front, outputs flipped back once at the end, so the loop
    itself always runs ``t = 0..T-1`` over contiguous memory).  ``mask``
    (0/1, ``(batch, seq)``) is shared by all lanes and carries the previous
    state through padded positions; steps that are padding for every row in
    *every* lane skip their recurrence GEMM outright.

    Returns one graph node of shape ``(batch, seq, num_lanes * hidden)`` with
    lane ``n`` occupying the feature block ``[n*H : (n+1)*H]``;
    ``states[:, t]`` holds each lane's state *after* consuming ``x[:, t]`` in
    that lane's scan order.  The input-side gate projections of all lanes run
    as one up-front GEMM against the lane-concatenated ``weight_ih``; per step
    the hidden-side projections are one batched ``(N, B, H) @ (N, H, G*H)``
    matmul.  The backward is the same loop in reverse over per-step gate
    activations stashed during the forward, with the weight gradients
    accumulated by whole-sequence GEMMs at the end.
    """
    if cell not in ("gru", "lstm"):
        raise ValueError(f"unknown cell type '{cell}' (use 'gru' or 'lstm')")
    is_lstm = cell == "lstm"
    num_gates = 4 if is_lstm else 3
    h0 = tuple(h0)
    c0 = tuple(c0) if is_lstm else ()
    weight_ih, weight_hh, bias = tuple(weight_ih), tuple(weight_hh), tuple(bias)
    num_lanes = len(weight_ih)
    if not (len(weight_hh) == len(bias) == len(h0) == num_lanes) or \
            (is_lstm and len(c0) != num_lanes):
        raise ValueError("per-lane argument lists must all have the same length")
    if lane_reverse is None:
        lane_reverse = (False,) * num_lanes
    lane_reverse = tuple(bool(r) for r in lane_reverse)
    if len(lane_reverse) != num_lanes:
        raise ValueError("lane_reverse must have one entry per lane")

    batch, seq_len, _ = x.data.shape
    if seq_len == 0:
        raise ValueError("lane_scan requires at least one time step")
    hidden_dim = h0[0].data.shape[-1]
    gw = num_gates * hidden_dim
    dtype = x.data.dtype

    # Input-side projections for every lane in one GEMM against the
    # lane-concatenated weights, then to time-major lane-stacked layout
    # (reversed lanes read time flipped so one loop advances all lanes).
    wih_cat = np.concatenate([w.data for w in weight_ih], axis=1)  # (F, N*G*H)
    bias_cat = np.concatenate([b.data for b in bias])
    gates_all = x.data.reshape(batch * seq_len, -1) @ wih_cat + bias_cat
    lanes_bm = gates_all.reshape(batch, seq_len, num_lanes, gw)
    gates_tm = np.empty((seq_len, num_lanes, batch, gw), dtype=dtype)
    for n, rev in enumerate(lane_reverse):
        src = lanes_bm[:, ::-1, n] if rev else lanes_bm[:, :, n]
        gates_tm[:, n] = src.transpose(1, 0, 2)

    mask_tm, alive = _prepare_scan_mask(mask, batch, seq_len, dtype)
    if mask_tm is not None:
        if any(lane_reverse):
            lane_mask = np.empty((seq_len, num_lanes, batch, 1), dtype=dtype)
            alive_ln = np.empty((seq_len, num_lanes), dtype=bool)
            for n, rev in enumerate(lane_reverse):
                lane_mask[:, n] = mask_tm[::-1] if rev else mask_tm
                alive_ln[:, n] = alive[::-1] if rev else alive
            # Skip a step only when it is padding for every row in every lane.
            all_dead = ~alive_ln.any(axis=1)
        else:
            lane_mask = mask_tm[:, None]  # broadcast view over the lane axis
            all_dead = ~alive
    else:
        lane_mask = None
        all_dead = None

    w_hh = np.stack([w.data for w in weight_hh])  # (N, H, G*H)
    parents = (x, *h0, *c0, *weight_ih, *weight_hh, *bias)
    recording = _recording(*parents)

    lane_states = np.empty((seq_len, num_lanes, batch, hidden_dim), dtype=dtype)
    if recording:
        # Zero-filled when some steps are dead across the whole batch: those
        # steps never write their stash slots, and zeros keep the vectorised
        # backward prefactors and the whole-sequence weight GEMMs garbage-free.
        alloc = np.zeros if all_dead is not None and all_dead.any() else np.empty
        prev_h = alloc(lane_states.shape, dtype=dtype)
        if is_lstm:
            prev_c = alloc(lane_states.shape, dtype=dtype)
            gate_if = alloc((seq_len, num_lanes, batch, 2 * hidden_dim), dtype=dtype)
            cand_gates = alloc(lane_states.shape, dtype=dtype)
            out_gates = alloc(lane_states.shape, dtype=dtype)
            tanh_cells = alloc(lane_states.shape, dtype=dtype)
        else:
            gate_rz = alloc((seq_len, num_lanes, batch, 2 * hidden_dim), dtype=dtype)
            candidates = alloc(lane_states.shape, dtype=dtype)
            gh_news = alloc(lane_states.shape, dtype=dtype)

    h = np.stack([t.data for t in h0])  # (N, B, H)
    c = np.stack([t.data for t in c0]) if is_lstm else None
    gh = np.empty((num_lanes, batch, gw), dtype=dtype)
    # The ONE forward time loop: every op below touches all lanes at once.
    for t in range(seq_len):
        if all_dead is not None and all_dead[t]:
            lane_states[t] = h
            continue
        gx = gates_tm[t]
        np.matmul(h, w_hh, out=gh)  # (N, B, G*H)
        if is_lstm:
            gh += gx
            # One sigmoid call covers the adjacent [input, forget] blocks; all
            # activations land straight in the backward stash when recording.
            if recording:
                prev_h[t] = h
                prev_c[t] = c
                in_forget = _sigmoid_into(gh[:, :, :2 * hidden_dim], gate_if[t])
                candidate = np.tanh(gh[:, :, 2 * hidden_dim:3 * hidden_dim],
                                    out=cand_gates[t])
                output_gate = _sigmoid_into(gh[:, :, 3 * hidden_dim:], out_gates[t])
                tanh_cell = tanh_cells[t]
            else:
                in_forget = _sigmoid_into(gh[:, :, :2 * hidden_dim],
                                          gh[:, :, :2 * hidden_dim])
                candidate = np.tanh(gh[:, :, 2 * hidden_dim:3 * hidden_dim])
                output_gate = _sigmoid_into(gh[:, :, 3 * hidden_dim:],
                                            gh[:, :, 3 * hidden_dim:])
                tanh_cell = np.empty((num_lanes, batch, hidden_dim), dtype=dtype)
            new_c = in_forget[:, :, hidden_dim:] * c
            new_c += in_forget[:, :, :hidden_dim] * candidate
            np.tanh(new_c, out=tanh_cell)
            new_h = output_gate * tanh_cell
        else:
            # One sigmoid call covers the adjacent [reset, update] blocks; the
            # candidate's hidden-side projection stays un-added (it is scaled
            # by the reset gate before joining the input side).
            rz_pre = gh[:, :, :2 * hidden_dim]
            rz_pre += gx[:, :, :2 * hidden_dim]
            if recording:
                prev_h[t] = h
                rz = _sigmoid_into(rz_pre, gate_rz[t])
                gh_new = gh_news[t]
                gh_new[...] = gh[:, :, 2 * hidden_dim:]
                candidate = candidates[t]
            else:
                rz = _sigmoid_into(rz_pre, rz_pre)
                gh_new = gh[:, :, 2 * hidden_dim:]
                candidate = np.empty((num_lanes, batch, hidden_dim), dtype=dtype)
            np.multiply(rz[:, :, :hidden_dim], gh_new, out=candidate)
            candidate += gx[:, :, 2 * hidden_dim:]
            np.tanh(candidate, out=candidate)
            new_h = h - candidate
            new_h *= rz[:, :, hidden_dim:]
            new_h += candidate
        if lane_mask is not None:
            # h + m * (new_h - h), composed in place on the fresh arrays.
            m = lane_mask[t]
            new_h -= h
            new_h *= m
            new_h += h
            if is_lstm:
                new_c -= c
                new_c *= m
                new_c += c
        lane_states[t] = new_h
        h = new_h
        if is_lstm:
            c = new_c

    states = np.empty((batch, seq_len, num_lanes * hidden_dim), dtype=dtype)
    for n, rev in enumerate(lane_reverse):
        src = lane_states[::-1, n] if rev else lane_states[:, n]
        states[:, :, n * hidden_dim:(n + 1) * hidden_dim] = src.transpose(1, 0, 2)
    if not recording:
        return _wrap(states)

    def backward(grad):
        lane_grad = np.empty((seq_len, num_lanes, batch, hidden_dim), dtype=dtype)
        for n, rev in enumerate(lane_reverse):
            time = slice(None, None, -1) if rev else slice(None)
            block = grad[:, time, n * hidden_dim:(n + 1) * hidden_dim]
            lane_grad[:, n] = block.transpose(1, 0, 2)
        # Gate-derivative prefactors, vectorised over the whole sequence so
        # the sequential loop below is down to a handful of ufunc calls plus
        # one batched GEMM per step.
        if is_lstm:
            in_gates = gate_if[:, :, :, :hidden_dim]
            forget_gates = gate_if[:, :, :, hidden_dim:]
            pref_out = tanh_cells * out_gates * (1.0 - out_gates)
            pref_cell = out_gates * (1.0 - tanh_cells ** 2)
            pref_in = cand_gates * in_gates * (1.0 - in_gates)
            pref_forget = prev_c * forget_gates * (1.0 - forget_gates)
            pref_cand = in_gates * (1.0 - cand_gates ** 2)
        else:
            resets = gate_rz[:, :, :, :hidden_dim]
            updates = gate_rz[:, :, :, hidden_dim:]
            pref_update = (prev_h - candidates) * updates * (1.0 - updates)
            pref_cand = (1.0 - updates) * (1.0 - candidates ** 2)
            pref_reset = gh_news * resets * (1.0 - resets)
            # gates_h and gates_x share the [reset, update] gradient blocks;
            # only the candidate block differs (extra * reset, hidden side).
            d_cands = np.zeros((seq_len, num_lanes, batch, hidden_dim), dtype=dtype)
        d_gates = np.zeros((seq_len, num_lanes, batch, gw), dtype=dtype)
        d_h = np.zeros((num_lanes, batch, hidden_dim), dtype=dtype)
        d_c = np.zeros_like(d_h) if is_lstm else None
        w_hh_t = np.swapaxes(w_hh, 1, 2)
        # The ONE backward time loop (BPTT), shared by every kernel above.
        for t in range(seq_len - 1, -1, -1):
            g = lane_grad[t] + d_h
            if all_dead is not None and all_dead[t]:
                d_h = g  # dead step: pure passthrough to the previous state
                continue
            if lane_mask is not None:
                m = lane_mask[t]
                g_active = g * m
                g_pass = g - g_active
                if is_lstm:
                    dc_active = d_c * m
                    dc_pass = d_c - dc_active
            else:
                g_active, g_pass = g, None
                if is_lstm:
                    dc_active, dc_pass = d_c, None
            step = d_gates[t]
            if is_lstm:
                d_cell = dc_active + g_active * pref_cell[t]
                np.multiply(d_cell, pref_in[t], out=step[:, :, :hidden_dim])
                np.multiply(d_cell, pref_forget[t],
                            out=step[:, :, hidden_dim:2 * hidden_dim])
                np.multiply(d_cell, pref_cand[t],
                            out=step[:, :, 2 * hidden_dim:3 * hidden_dim])
                np.multiply(g_active, pref_out[t], out=step[:, :, 3 * hidden_dim:])
                d_h = np.matmul(step, w_hh_t)
                if g_pass is not None:
                    d_h += g_pass
                d_c = d_cell * forget_gates[t]
                if lane_mask is not None and dc_pass is not None:
                    d_c += dc_pass
            else:
                d_candidate = d_cands[t]
                np.multiply(g_active, pref_cand[t], out=d_candidate)
                np.multiply(d_candidate, pref_reset[t], out=step[:, :, :hidden_dim])
                np.multiply(g_active, pref_update[t],
                            out=step[:, :, hidden_dim:2 * hidden_dim])
                np.multiply(d_candidate, resets[t], out=step[:, :, 2 * hidden_dim:])
                d_h = np.matmul(step, w_hh_t)
                d_h += g_active * updates[t]
                if g_pass is not None:
                    d_h += g_pass
        # Back to (batch, time)-major real order, lanes side by side.
        d_gx = np.empty((batch, seq_len, num_lanes * gw), dtype=dtype)
        for n, rev in enumerate(lane_reverse):
            time = slice(None, None, -1) if rev else slice(None)
            lane_block = d_gx[:, :, n * gw:(n + 1) * gw]
            if is_lstm:
                lane_block[...] = d_gates[time, n].transpose(1, 0, 2)
            else:
                lane_block[:, :, :2 * hidden_dim] = \
                    d_gates[time, n, :, :2 * hidden_dim].transpose(1, 0, 2)
                lane_block[:, :, 2 * hidden_dim:] = d_cands[time, n].transpose(1, 0, 2)
        flat = d_gx.reshape(batch * seq_len, num_lanes * gw)
        if x.requires_grad:
            x._accumulate_grad((flat @ wih_cat.T).reshape(x.data.shape), owned=True)
        if any(w.requires_grad for w in weight_ih):
            d_wih = x.data.reshape(batch * seq_len, -1).T @ flat
            for n, w in enumerate(weight_ih):
                if w.requires_grad:
                    w._accumulate_grad(
                        np.ascontiguousarray(d_wih[:, n * gw:(n + 1) * gw]),
                        owned=True)
        if any(b.requires_grad for b in bias):
            d_bias = flat.sum(axis=0)
            for n, b in enumerate(bias):
                if b.requires_grad:
                    b._accumulate_grad(d_bias[n * gw:(n + 1) * gw].copy(), owned=True)
        for n, w in enumerate(weight_hh):
            if w.requires_grad:
                # One GEMM over all steps (dead steps contribute exact zeros;
                # the scan-order/real-order distinction washes out in the sum).
                w._accumulate_grad(
                    prev_h[:, n].reshape(seq_len * batch, hidden_dim).T
                    @ d_gates[:, n].reshape(seq_len * batch, gw), owned=True)
        for n, t0 in enumerate(h0):
            if t0.requires_grad:
                t0._accumulate_grad(d_h[n].copy(), owned=True)
        for n, t0 in enumerate(c0):
            if t0.requires_grad:
                t0._accumulate_grad(d_c[n].copy(), owned=True)

    return _attach(states, parents, backward)


# --------------------------------------------------------------------------- #
# Thin wrappers over the N-lane core (historical public signatures)            #
# --------------------------------------------------------------------------- #
def gru_scan(x: Tensor, h0: Tensor, weight_ih: Tensor, weight_hh: Tensor,
             bias: Tensor, mask=None, reverse: bool = False) -> Tensor:
    """Fused whole-sequence GRU: ``(batch, seq, features) -> (batch, seq, hidden)``.

    Single-lane :func:`lane_scan`; ``reverse=True`` scans right-to-left, with
    ``states[:, t]`` holding the state *after* consuming ``x[:, t]`` in scan
    order either way.
    """
    return lane_scan("gru", x, (h0,), None, (weight_ih,), (weight_hh,), (bias,),
                     mask=mask, lane_reverse=(reverse,))


def lstm_scan(x: Tensor, h0: Tensor, c0: Tensor, weight_ih: Tensor,
              weight_hh: Tensor, bias: Tensor, mask=None,
              reverse: bool = False) -> Tensor:
    """Fused whole-sequence LSTM returning the hidden states ``(batch, seq, hidden)``.

    Single-lane :func:`lane_scan`; the cell state threads through the scan
    internally, so gradients enter via the hidden states only — matching a
    per-step chain whose loss reads the hidden trajectory.
    """
    return lane_scan("lstm", x, (h0,), (c0,), (weight_ih,), (weight_hh,), (bias,),
                     mask=mask, lane_reverse=(reverse,))


def gru_bidir_scan(x: Tensor, h0_fwd: Tensor, h0_bwd: Tensor,
                   wih_fwd: Tensor, whh_fwd: Tensor, bias_fwd: Tensor,
                   wih_bwd: Tensor, whh_bwd: Tensor, bias_bwd: Tensor,
                   mask=None) -> Tensor:
    """Fused bidirectional GRU scan: one node for ``(batch, seq, 2 * hidden)``.

    A two-lane :func:`lane_scan` — (forward, backward) — so both directions
    advance inside a single time loop with one batched hidden-side matmul per
    step.  Output layout: ``[:, :, :H]`` forward states, ``[:, :, H:]``
    backward states.
    """
    return lane_scan("gru", x, (h0_fwd, h0_bwd), None,
                     (wih_fwd, wih_bwd), (whh_fwd, whh_bwd), (bias_fwd, bias_bwd),
                     mask=mask, lane_reverse=(False, True))


def lstm_bidir_scan(x: Tensor, h0_fwd: Tensor, c0_fwd: Tensor,
                    h0_bwd: Tensor, c0_bwd: Tensor,
                    wih_fwd: Tensor, whh_fwd: Tensor, bias_fwd: Tensor,
                    wih_bwd: Tensor, whh_bwd: Tensor, bias_bwd: Tensor,
                    mask=None) -> Tensor:
    """Fused bidirectional LSTM scan (two-lane :func:`lane_scan`); returns
    hidden states ``(batch, seq, 2 * hidden)``.
    """
    return lane_scan("lstm", x, (h0_fwd, h0_bwd), (c0_fwd, c0_bwd),
                     (wih_fwd, wih_bwd), (whh_fwd, whh_bwd), (bias_fwd, bias_bwd),
                     mask=mask, lane_reverse=(False, True))


# --------------------------------------------------------------------------- #
# Attention pooling                                                            #
# --------------------------------------------------------------------------- #
#: Additive score penalty for masked positions.  Large enough that the masked
#: exponentials underflow to exactly zero after the softmax shift, yet safely
#: representable in float32 (unlike float64-only magnitudes such as -1e300).
ATTENTION_MASK_VALUE = -1e9


def attention_mask_penalty(mask, dtype) -> np.ndarray:
    """``(1 - mask) * ATTENTION_MASK_VALUE`` in the kernel's compute ``dtype``.

    Computing the penalty directly in the compute dtype keeps a float32 model
    in float32 (a float64 penalty array would silently upcast the scores and
    everything downstream).  Fully-masked rows degrade gracefully: every score
    receives the same offset, so (up to the offset's rounding) the softmax
    falls back to the softmax of the raw scores instead of producing NaNs.
    """
    mask_arr = np.asarray(mask)
    return (1.0 - mask_arr.astype(dtype, copy=False)) \
        * np.asarray(ATTENTION_MASK_VALUE, dtype=dtype)


def attention_pooling(x: Tensor, scores: Tensor, mask=None) -> Tensor:
    """Fused masked-softmax attention pooling.

    ``x`` is ``(batch, seq, features)``, ``scores`` ``(batch, seq)`` (already
    produced by the score MLP, whose nodes stay outside this kernel).  The
    score -> masked-softmax -> weighted-sum chain collapses into one node; the
    weighted sum runs as a batched GEMM.
    """
    score_data = scores.data
    if mask is not None:
        score_data = score_data + attention_mask_penalty(mask, score_data.dtype)
    weights = _softmax_data(score_data, axis=1)  # (batch, seq)
    data = (weights[:, None, :] @ x.data)[:, 0, :]
    parents = (x, scores)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(weights[:, :, None] * grad[:, None, :], owned=True)
        if scores.requires_grad:
            d_weights = (x.data @ grad[:, :, None])[:, :, 0]
            inner = (d_weights * weights).sum(axis=1, keepdims=True)
            scores._accumulate_grad(weights * (d_weights - inner), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Masked mean pooling                                                          #
# --------------------------------------------------------------------------- #
def masked_mean(x: Tensor, mask) -> Tensor:
    """Fused masked mean over time: ``(batch, seq, feat) -> (batch, feat)``.

    Replaces the composed 4-node expand/multiply/sum/scale chain that runs on
    every pooled summary: the masked sum is one batched ``(1, T) @ (T, F)``
    GEMM and the count normalisation folds into the same node.  Rows whose
    mask is all zero divide by 1 (mean of nothing is zero), matching
    ``functional.masked_mean_reference``.
    """
    mask_arr = np.asarray(mask, dtype=x.data.dtype)
    if mask_arr.shape != x.data.shape[:2]:
        raise ValueError(
            f"mask shape {mask_arr.shape} does not match (batch, seq) = "
            f"{x.data.shape[:2]}")
    inv_counts = 1.0 / np.maximum(mask_arr.sum(axis=1), 1.0)  # (batch,)
    data = (mask_arr[:, None, :] @ x.data)[:, 0, :]
    data *= inv_counts[:, None]
    if not _recording(x):
        return _wrap(data)

    def backward(grad):
        scaled = grad * inv_counts[:, None]          # (batch, feat)
        x._accumulate_grad(mask_arr[:, :, None] * scaled[:, None, :], owned=True)

    return _attach(data, (x,), backward)


# --------------------------------------------------------------------------- #
# Mixture-of-experts gate mixing                                               #
# --------------------------------------------------------------------------- #
def mix_experts(stacked: Tensor, gate_weights: Tensor) -> Tensor:
    """Fused gate-weighted expert mixture: ``(B, N, D), (B, N) -> (B, D)``.

    Collapses the composed stack → broadcast-multiply → sum chain used by the
    mixture-of-experts detectors into one node whose forward is a single
    batched ``(1, N) @ (N, D)`` GEMM per row.
    """
    data = (gate_weights.data[:, None, :] @ stacked.data)[:, 0, :]
    parents = (stacked, gate_weights)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if stacked.requires_grad:
            stacked._accumulate_grad(
                gate_weights.data[:, :, None] * grad[:, None, :], owned=True)
        if gate_weights.requires_grad:
            gate_weights._accumulate_grad(
                (stacked.data @ grad[:, :, None])[:, :, 0], owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Layer normalisation                                                          #
# --------------------------------------------------------------------------- #
def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Fused layer normalisation over the last axis with learnable affine."""
    mean = x.data.mean(axis=-1, keepdims=True)
    centred = x.data - mean
    variance = (centred * centred).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalised = centred * inv_std
    data = normalised * weight.data + bias.data
    parents = (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            d_norm = grad * weight.data
            mean_d = d_norm.mean(axis=-1, keepdims=True)
            mean_dn = (d_norm * normalised).mean(axis=-1, keepdims=True)
            x._accumulate_grad(inv_std * (d_norm - mean_d - normalised * mean_dn),
                               owned=True)
        reduce_axes = tuple(range(grad.ndim - 1))
        if weight.requires_grad:
            weight._accumulate_grad((grad * normalised).sum(axis=reduce_axes),
                                    owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(grad.sum(axis=reduce_axes), owned=True)

    return _attach(data, parents, backward)


# --------------------------------------------------------------------------- #
# Pooling                                                                      #
# --------------------------------------------------------------------------- #
def max_pool1d(x: Tensor) -> Tensor:
    """Fused global max over the time axis of ``(batch, seq, channels)``.

    Backward scatters the gradient to the argmax position (first winner on
    exact ties), avoiding the composed path's equality-mask construction and
    tie normalisation.
    """
    if not _recording(x):
        return _wrap(x.data.max(axis=1))
    # One scan: the argmax both selects the forward value and is reused by the
    # backward scatter.
    winners = x.data.argmax(axis=1)[:, None, :]  # (batch, 1, channels)
    data = np.take_along_axis(x.data, winners, axis=1)[:, 0, :]

    def backward(grad):
        full = np.zeros_like(x.data)
        np.put_along_axis(full, winners, grad[:, None, :], axis=1)
        x._accumulate_grad(full, owned=True)

    return _attach(data, (x,), backward)


# --------------------------------------------------------------------------- #
# Convolution                                                                  #
# --------------------------------------------------------------------------- #
def conv1d(x: Tensor, weight: Tensor, bias: Tensor, kernel_size: int) -> Tensor:
    """Fused valid 1-D convolution over ``(batch, seq, channels)``.

    The unfold is a zero-copy ``as_strided`` view (instead of materialising a
    window copy per kernel offset); a single reshape materialises the
    ``(batch, out_len, k * channels)`` matrix that feeds one matmul.
    """
    batch, seq_len, channels = x.data.shape
    out_len = seq_len - kernel_size + 1
    if out_len <= 0:
        raise ValueError(
            f"sequence length {seq_len} shorter than kernel size {kernel_size}")
    if kernel_size == 1:
        # A width-1 convolution is exactly a per-position linear projection.
        return linear(x, weight, bias)
    # Zero-copy strided unfold in (offset-major, channel-minor) order, i.e.
    # windows[b, o, j, c] == x[b, o + j, c]; the single reshape below is the
    # only materialisation.
    s0, s1, s2 = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data, shape=(batch, out_len, kernel_size, channels),
        strides=(s0, s1, s1, s2))
    unfolded = windows.reshape(batch, out_len, kernel_size * channels)
    data = unfolded @ weight.data + bias.data
    parents = (x, weight, bias)
    if not _recording(*parents):
        return _wrap(data)

    def backward(grad):
        if x.requires_grad:
            d_unfolded = (grad @ weight.data.T).reshape(
                batch, out_len, kernel_size, channels)
            d_x = np.zeros_like(x.data)
            for offset in range(kernel_size):
                d_x[:, offset:offset + out_len, :] += d_unfolded[:, :, offset, :]
            x._accumulate_grad(d_x, owned=True)
        if weight.requires_grad:
            flat_u = unfolded.reshape(-1, kernel_size * channels)
            flat_g = grad.reshape(-1, grad.shape[-1])
            weight._accumulate_grad(flat_u.T @ flat_g, owned=True)
        if bias.requires_grad:
            bias._accumulate_grad(grad.reshape(-1, grad.shape[-1]).sum(axis=0),
                                  owned=True)

    return _attach(data, parents, backward)
