"""Core autograd :class:`Tensor`.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it so that gradients can be computed with reverse-mode automatic
differentiation.  The design follows the familiar define-by-run style of
PyTorch: every operation returns a new tensor whose ``_backward`` closure knows
how to propagate gradients to its parents.

Only the operations required by the DTDBD reproduction are implemented, but
they are implemented fully (broadcasting, N-d matmul, advanced indexing for
embeddings, stable log-softmax, concatenation, max-pooling, ...) and each
backward rule is covered by numerical-gradient tests in
``tests/tensor/test_autograd.py``.

Performance notes
-----------------
* Floating dtype is governed by the global policy in
  :mod:`repro.tensor.dtype` (``float64`` by default, switchable to
  ``float32`` for roughly 2x faster training).
* Under :func:`no_grad` every operation takes an early-return fast path that
  performs only the NumPy computation: no backward closure is created, no
  graph node is recorded and no parent bookkeeping happens.  The module-level
  counter :func:`graph_nodes_created` makes this observable for tests.
* Gradient accumulation avoids defensive copies whenever the incoming array
  is already exclusively owned (freshly allocated by a backward rule or by
  un-broadcasting).
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Sequence

import numpy as np

from repro.tensor.dtype import get_default_dtype

_GRAD_ENABLED = True

#: Total number of graph nodes recorded since process start (monotonic).
_GRAPH_NODES = 0


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


def graph_nodes_created() -> int:
    """Monotonic count of autograd graph nodes recorded so far.

    Snapshot it around a region to count how many nodes that region built;
    under :func:`no_grad` the difference must be zero.
    """
    return _GRAPH_NODES


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if dtype is None:
        dtype = get_default_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _wrap(data) -> "Tensor":
    """Fast constructor for op results: wrap without dtype coercion."""
    out = Tensor.__new__(Tensor)
    out.data = data if isinstance(data, np.ndarray) else np.asarray(data)
    out.requires_grad = False
    out.grad = None
    out._backward = None
    out._prev = ()
    out.name = ""
    return out


def _attach(data, parents: tuple["Tensor", ...], backward) -> "Tensor":
    """Record a graph node: wrap ``data`` and hook up the backward closure."""
    global _GRAPH_NODES
    out = _wrap(data)
    out.requires_grad = True
    out._prev = tuple(p for p in parents if p.requires_grad or p._prev)
    out._backward = backward
    _GRAPH_NODES += 1
    return out


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic: ``exp`` is only ever applied to ``-|x|``."""
    t = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + t), t / (1.0 + t))


class Tensor:
    """An N-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors                                                        #
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(tuple(shape), value, dtype=get_default_dtype()),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        from repro.utils import fallback_rng

        rng = rng if rng is not None else fallback_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def uniform(shape: Sequence[int], low: float = -1.0, high: float = 1.0,
                rng: np.random.Generator | None = None,
                requires_grad: bool = False) -> "Tensor":
        from repro.utils import fallback_rng

        rng = rng if rng is not None else fallback_rng()
        return Tensor(rng.uniform(low, high, size=tuple(shape)), requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Basic properties                                                    #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype`` (no gradient flow)."""
        return Tensor(self.data.astype(np.dtype(dtype)), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd driver                                                     #
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")
            # Own the seed gradient so in-place accumulation can never touch
            # a caller-provided array.
            grad = grad.copy()

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate_grad(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad``.

        ``owned=True`` promises that ``grad`` is a freshly allocated array that
        no one else references, so it can be stored without a defensive copy.
        Un-broadcasting always allocates, so a shape mismatch upgrades the
        gradient to owned automatically.
        """
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
            owned = True
        if self.grad is None:
            self.grad = grad if owned else grad.copy()
        else:
            self.grad += grad

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        if not _GRAD_ENABLED or not any(p.requires_grad for p in parents):
            return _wrap(data)
        return _attach(data, parents, backward)

    # ------------------------------------------------------------------ #
    # Arithmetic                                                          #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other.requires_grad:
                other._accumulate_grad(grad)

        return _attach(data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * other.data, owned=True)
            if other.requires_grad:
                other._accumulate_grad(grad * self.data, owned=True)

        return _attach(data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        data = -self.data
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(-grad, owned=True)

        return _attach(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other.requires_grad:
                other._accumulate_grad(-grad, owned=True)

        return _attach(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = other.data - self.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(-grad, owned=True)
            if other.requires_grad:
                other._accumulate_grad(grad)

        return _attach(data, (self, other), backward)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad / other.data, owned=True)
            if other.requires_grad:
                other._accumulate_grad(-grad * data / other.data, owned=True)

        return _attach(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = other.data / self.data
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(-grad * data / self.data, owned=True)
            if other.requires_grad:
                other._accumulate_grad(grad / self.data, owned=True)

        return _attach(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * exponent * self.data ** (exponent - 1.0), owned=True)

        return _attach(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = np.matmul(self.data, other.data)
        if not _GRAD_ENABLED or not (self.requires_grad or other.requires_grad):
            return _wrap(data)

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.multiply.outer(grad, other.data) if self.data.ndim > 1 \
                        else grad * other.data
                else:
                    grad_self = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate_grad(grad_self, owned=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.multiply.outer(self.data, grad)
                else:
                    grad_other = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate_grad(grad_other, owned=True)

        return _attach(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions                                                          #
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                grad_local = grad
                if not keepdims:
                    grad_local = np.expand_dims(grad_local, axis=axis)
                expanded = np.broadcast_to(grad_local, self.data.shape)
            self._accumulate_grad(expanded)

        return _attach(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        data = self.data.mean(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)
        scale = 1.0 / count

        def backward(grad):
            grad_local = grad
            if axis is not None and not keepdims:
                grad_local = np.expand_dims(grad_local, axis=axis)
            self._accumulate_grad(np.broadcast_to(grad_local, self.data.shape) * scale,
                                  owned=True)

        return _attach(data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate_grad(mask * grad, owned=True)
                return
            grad_local = grad
            max_local = data
            if not keepdims:
                grad_local = np.expand_dims(grad_local, axis=axis)
                max_local = np.expand_dims(max_local, axis=axis)
            mask = (self.data == max_local).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate_grad(mask * grad_local, owned=True)

        return _attach(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities                                        #
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * data, owned=True)

        return _attach(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad / self.data, owned=True)

        return _attach(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * (1.0 - data ** 2), owned=True)

        return _attach(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = _stable_sigmoid(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * data * (1.0 - data), owned=True)

        return _attach(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * (self.data > 0.0), owned=True)

        return _attach(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad * np.sign(self.data), owned=True)

        return _attach(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
            self._accumulate_grad(grad * mask, owned=True)

        return _attach(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation                                                  #
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            self._accumulate_grad(grad.reshape(self.data.shape))

        return _attach(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate_grad(grad.transpose(inverse))

        return _attach(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        new_shape = list(self.data.shape)
        if axis is None:
            new_shape = [s for s in new_shape if s != 1]
        else:
            if new_shape[axis] != 1:
                raise ValueError("cannot squeeze a dimension that is not 1")
            new_shape.pop(axis)
        return self.reshape(tuple(new_shape))

    def unsqueeze(self, axis: int) -> "Tensor":
        new_shape = list(self.data.shape)
        axis = axis if axis >= 0 else axis + self.data.ndim + 1
        new_shape.insert(axis, 1)
        return self.reshape(tuple(new_shape))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        if not _GRAD_ENABLED or not self.requires_grad:
            return _wrap(data)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate_grad(full, owned=True)

        return _attach(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Combination helpers                                                 #
    # ------------------------------------------------------------------ #
    @staticmethod
    def cat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        if not _GRAD_ENABLED or not any(t.requires_grad for t in tensors):
            return _wrap(data)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate_grad(grad[tuple(slicer)])

        return _attach(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return Tensor.cat([t.unsqueeze(axis) for t in tensors], axis=axis)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a = Tensor._coerce(a)
        b = Tensor._coerce(b)
        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, a.data, b.data)
        if not _GRAD_ENABLED or not (a.requires_grad or b.requires_grad):
            return _wrap(data)

        def backward(grad):
            if a.requires_grad:
                a._accumulate_grad(grad * cond, owned=True)
            if b.requires_grad:
                b._accumulate_grad(grad * (~cond), owned=True)

        return _attach(data, (a, b), backward)

    # ------------------------------------------------------------------ #
    # Comparison helpers (no gradient, returned as numpy arrays)          #
    # ------------------------------------------------------------------ #
    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Functional alias for :meth:`Tensor.cat`."""
    return Tensor.cat(list(tensors), axis=axis)
