"""Core autograd :class:`Tensor`.

A :class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it so that gradients can be computed with reverse-mode automatic
differentiation.  The design follows the familiar define-by-run style of
PyTorch: every operation returns a new tensor whose ``_backward`` closure knows
how to propagate gradients to its parents.

Only the operations required by the DTDBD reproduction are implemented, but
they are implemented fully (broadcasting, N-d matmul, advanced indexing for
embeddings, stable log-softmax, concatenation, max-pooling, ...) and each
backward rule is covered by numerical-gradient tests in
``tests/tensor/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype and np.issubdtype(value.dtype, np.floating):
            return value.astype(dtype)
        if not np.issubdtype(value.dtype, np.floating):
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """An N-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors                                                        #
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(tuple(shape), value, dtype=np.float64), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def uniform(shape: Sequence[int], low: float = -1.0, high: float = 1.0,
                rng: np.random.Generator | None = None,
                requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.uniform(low, high, size=tuple(shape)), requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Basic properties                                                    #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd driver                                                     #
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad or p._prev)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic                                                          #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other.requires_grad:
                other._accumulate_grad(grad)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * other.data)
            if other.requires_grad:
                other._accumulate_grad(grad * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1.0))

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = np.matmul(self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.multiply.outer(grad, other.data) if self.data.ndim > 1 \
                        else grad * other.data
                else:
                    grad_self = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate_grad(grad_self)
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.multiply.outer(self.data, grad)
                else:
                    grad_other = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate_grad(grad_other)

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions                                                          #
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                grad_local = grad
                if not keepdims:
                    grad_local = np.expand_dims(grad_local, axis=axis)
                expanded = np.broadcast_to(grad_local, self.data.shape)
            self._accumulate_grad(expanded)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate_grad(mask * grad)
                return
            grad_local = grad
            max_local = data
            if not keepdims:
                grad_local = np.expand_dims(grad_local, axis=axis)
                max_local = np.expand_dims(max_local, axis=axis)
            mask = (self.data == max_local).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate_grad(mask * grad_local)

        return self._make(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities                                        #
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = np.where(self.data >= 0,
                        1.0 / (1.0 + np.exp(-self.data)),
                        np.exp(self.data) / (1.0 + np.exp(self.data)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * (self.data > 0.0))

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad * np.sign(self.data))

        return self._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad):
            if self.requires_grad:
                mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
                self._accumulate_grad(grad * mask)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation                                                  #
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad.reshape(self.data.shape))

        return self._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate_grad(grad.transpose(inverse))

        return self._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        new_shape = list(self.data.shape)
        if axis is None:
            new_shape = [s for s in new_shape if s != 1]
        else:
            if new_shape[axis] != 1:
                raise ValueError("cannot squeeze a dimension that is not 1")
            new_shape.pop(axis)
        return self.reshape(tuple(new_shape))

    def unsqueeze(self, axis: int) -> "Tensor":
        new_shape = list(self.data.shape)
        axis = axis if axis >= 0 else axis + self.data.ndim + 1
        new_shape.insert(axis, 1)
        return self.reshape(tuple(new_shape))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate_grad(full)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Combination helpers                                                 #
    # ------------------------------------------------------------------ #
    @staticmethod
    def cat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate_grad(grad[tuple(slicer)])

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(tensors)
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return Tensor.cat([t.unsqueeze(axis) for t in tensors], axis=axis)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a = Tensor._coerce(a)
        b = Tensor._coerce(b)
        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, a.data, b.data)

        def backward(grad):
            if a.requires_grad:
                a._accumulate_grad(grad * cond)
            if b.requires_grad:
                b._accumulate_grad(grad * (~cond))

        return a._make(data, (a, b), backward)

    # ------------------------------------------------------------------ #
    # Comparison helpers (no gradient, returned as numpy arrays)          #
    # ------------------------------------------------------------------ #
    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Functional alias for :meth:`Tensor.cat`."""
    return Tensor.cat(list(tensors), axis=axis)
