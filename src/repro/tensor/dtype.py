"""Global floating-point dtype policy for the autograd engine.

The seed engine was hard-coded to ``float64``.  Training and inference can now
run end-to-end in ``float32`` (roughly 2x less memory traffic, and measurably
faster matmuls on CPU) by setting the default dtype once::

    from repro.tensor import set_default_dtype
    set_default_dtype("float32")

or scoped with the context manager::

    with default_dtype("float32"):
        model = TextCNNStudent(config)   # parameters created in float32
        trainer.fit(loader)

Every constructor in :class:`repro.tensor.Tensor`, every initialiser in
:mod:`repro.tensor.init` and every array coercion in
:mod:`repro.tensor.functional` consults this policy, so a model built under a
policy stays in that dtype throughout its life (checkpoint loading casts to
the parameter's stored dtype, see :meth:`repro.nn.Module.load_state_dict`).
"""

from __future__ import annotations

import contextlib

import numpy as np

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """Return the dtype new floating-point tensors are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the global default floating dtype; returns the previous one.

    Only ``float32`` and ``float64`` are supported compute dtypes.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"unsupported default dtype {resolved}; expected float32 or float64")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager that temporarily switches the default floating dtype."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
