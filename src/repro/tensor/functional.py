"""Composite differentiable functions built on :class:`repro.tensor.Tensor`.

These mirror ``torch.nn.functional`` for the subset of operations that the
DTDBD reproduction needs: stable softmax / log-softmax, classification losses,
the temperature-scaled KL divergence used by both distillation losses,
embedding lookup, dropout and pairwise squared Euclidean distances (the
sample-correlation matrix of Eq. 5 in the paper).

The hot functions (``softmax``, ``log_softmax``, ``cross_entropy``,
``distillation_kl``, ``embedding``, ``masked_mean``) dispatch to the
single-node fused kernels in
:mod:`repro.tensor.fused` when fusion is enabled (the default).  The original
composed-primitive implementations are kept under ``*_reference`` names: they
are the ground truth for the fused kernels' gradient-parity tests and the
baseline for the perf benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import fused
from repro.tensor.dtype import get_default_dtype
from repro.tensor.tensor import Tensor, _GRAD_ENABLED, _wrap  # noqa: F401
from repro.utils import fallback_rng


# --------------------------------------------------------------------------- #
# Activations                                                                  #
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if fused.is_fused_enabled():
        return fused.softmax(x, axis=axis)
    return softmax_reference(x, axis=axis)


def softmax_reference(x: Tensor, axis: int = -1) -> Tensor:
    """Composed-primitive softmax (ground truth for the fused kernel)."""
    # _wrap keeps the shift constant in x's own dtype; Tensor() would coerce
    # it to the default policy and upcast a float32 input under float64.
    shifted = x - _wrap(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    if fused.is_fused_enabled():
        return fused.log_softmax(x, axis=axis)
    return log_softmax_reference(x, axis=axis)


def log_softmax_reference(x: Tensor, axis: int = -1) -> Tensor:
    """Composed-primitive log-softmax (ground truth for the fused kernel)."""
    shifted = x - _wrap(x.data.max(axis=axis, keepdims=True))
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


# --------------------------------------------------------------------------- #
# Losses                                                                       #
# --------------------------------------------------------------------------- #
def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(n, num_classes)`` one-hot float array for integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label outside [0, num_classes)")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=get_default_dtype())
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, targets: np.ndarray, weights: np.ndarray | None = None) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    mask = one_hot(targets, log_probs.shape[-1])
    picked = (log_probs * Tensor(mask)).sum(axis=-1)
    if weights is not None:
        picked = picked * Tensor(np.asarray(weights))
        return -picked.sum() / float(np.sum(weights))
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``targets``."""
    if fused.is_fused_enabled():
        return fused.cross_entropy(logits, targets, weights=weights)
    return cross_entropy_reference(logits, targets, weights=weights)


def cross_entropy_reference(logits: Tensor, targets: np.ndarray,
                            weights: np.ndarray | None = None) -> Tensor:
    """Composed-primitive cross-entropy (ground truth for the fused kernel)."""
    return nll_loss(log_softmax_reference(logits, axis=-1), targets, weights=weights)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    targets_t = Tensor(np.asarray(targets))
    # log(1 + exp(-|x|)) + max(x, 0) - x * y
    max_part = logits.relu()
    abs_part = logits.abs()
    loss = max_part - logits * targets_t + (1.0 + (-abs_part).exp()).log()
    return loss.mean()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def kl_divergence(log_p: Tensor, q: Tensor) -> Tensor:
    """KL(q || p) given ``log_p`` (log-probabilities) and ``q`` (probabilities).

    This matches ``torch.nn.KLDivLoss(reduction="batchmean")`` semantics used by
    the paper's distillation losses: the *input* is a log-distribution (from the
    student), the *target* is a distribution (from the teacher), and the result
    is averaged over the batch dimension.
    """
    q_data = np.clip(q.data, 1e-12, None)
    elementwise = Tensor(q_data) * (Tensor(np.log(q_data)) - log_p)
    batch = log_p.shape[0] if log_p.ndim > 0 else 1
    return elementwise.sum() / float(batch)


def distillation_kl(student_logits: Tensor, teacher_logits: Tensor,
                    temperature: float = 1.0) -> Tensor:
    """Temperature-scaled distillation loss ``tau^2 * KL(teacher || student)``.

    Implements the common form used in Eq. 6 and Eq. 12 of the paper: the
    student produces a log-softmax at temperature ``tau``, the (frozen) teacher
    produces a softmax at temperature ``tau``, and the KL divergence is scaled
    by ``tau^2`` to keep gradient magnitudes comparable across temperatures.
    """
    if fused.is_fused_enabled():
        return fused.distillation_kl(student_logits, teacher_logits,
                                     temperature=temperature)
    return distillation_kl_reference(student_logits, teacher_logits,
                                     temperature=temperature)


def distillation_kl_reference(student_logits: Tensor, teacher_logits: Tensor,
                              temperature: float = 1.0) -> Tensor:
    """Composed-primitive distillation loss (ground truth for the fused kernel)."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    student_log = log_softmax_reference(student_logits * (1.0 / temperature), axis=-1)
    teacher_prob = softmax_reference(teacher_logits.detach() * (1.0 / temperature), axis=-1)
    return (temperature ** 2) * kl_divergence(student_log, teacher_prob)


def entropy(probabilities: Tensor, axis: int = -1) -> Tensor:
    """Shannon entropy of a probability distribution along ``axis``."""
    clipped = probabilities.clip(1e-12, 1.0)
    return -(probabilities * clipped.log()).sum(axis=axis)


def information_entropy_loss(domain_probs: Tensor) -> Tensor:
    """Information-entropy loss of Eq. 10: ``G_d(f) . log(G_d(f)^T)``.

    The paper maximises prediction uncertainty of the domain classifier so the
    encoder is pushed toward features shared by *all* relevant domains rather
    than only the single most related one.  Minimising this quantity (the
    negative entropy averaged over the batch) implements that objective.
    """
    clipped = domain_probs.clip(1e-12, 1.0)
    per_sample = (domain_probs * clipped.log()).sum(axis=-1)
    return per_sample.mean()


# --------------------------------------------------------------------------- #
# Structured helpers                                                           #
# --------------------------------------------------------------------------- #
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (any shape).

    On the fused fast path this is the single-node
    :func:`repro.tensor.fused.embedding` kernel (gather forward, one flat
    ``np.add.at`` scatter backward); the composed path routes through the
    generic advanced-indexing node and is the parity ground truth.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if fused.is_fused_enabled():
        return fused.embedding(weight, indices)
    return embedding_reference(weight, indices)


def embedding_reference(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Composed-primitive embedding lookup (ground truth for the fused kernel)."""
    return weight[np.asarray(indices, dtype=np.int64)]


def dropout(x: Tensor, p: float, training: bool,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else fallback_rng()
    # Draw uniforms directly in the compute dtype when it is float32: halves
    # the RNG work and avoids a cast on the fast path.
    draw_dtype = np.float32 if x.data.dtype == np.float32 else np.float64
    mask = (rng.random(x.shape, dtype=draw_dtype) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def pairwise_squared_distances(features: Tensor) -> Tensor:
    """Pairwise squared Euclidean distance matrix ``M_ij = ||f_i - f_j||^2``.

    This is the sample-correlation matrix of Eq. 5 that the adversarial
    de-biasing distillation treats as transferable knowledge.  Computed as
    ``||a||^2 + ||b||^2 - 2 a.b`` so the whole matrix stays differentiable.
    """
    if features.ndim != 2:
        raise ValueError("expected a (batch, features) matrix")
    squared_norms = (features * features).sum(axis=1, keepdims=True)
    gram = features @ features.transpose(1, 0)
    distances = squared_norms + squared_norms.transpose(1, 0) - 2.0 * gram
    # Numerical noise can make tiny negatives; clamp at zero.
    return distances.relu()


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2-normalise ``x`` along ``axis``."""
    norms = (x * x).sum(axis=axis, keepdims=True) ** 0.5
    return x / (norms + eps)


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean over ``axis`` counting only positions where ``mask`` is 1.

    ``x`` is typically ``(batch, seq, features)`` and ``mask`` ``(batch, seq)``;
    that hot case runs as the single-node :func:`repro.tensor.fused.masked_mean`
    kernel when fusion is enabled.
    """
    mask = np.asarray(mask)
    if (fused.is_fused_enabled() and axis == 1 and x.ndim == 3
            and mask.ndim == 2):
        return fused.masked_mean(x, mask)
    return masked_mean_reference(x, mask, axis=axis)


def masked_mean_reference(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Composed-primitive masked mean (ground truth for the fused kernel)."""
    mask = np.asarray(mask, dtype=x.data.dtype)
    expanded = Tensor(mask[..., None]) if x.ndim == mask.ndim + 1 else Tensor(mask)
    total = (x * expanded).sum(axis=axis)
    counts = np.maximum(mask.sum(axis=axis, keepdims=False), 1.0)
    if x.ndim == mask.ndim + 1:
        counts = counts[..., None]
    return total * Tensor(1.0 / counts)
