"""NumPy-backed reverse-mode automatic differentiation engine.

This subpackage is the deep-learning substrate for the DTDBD reproduction.
The original paper uses PyTorch; this environment has no GPU frameworks, so
``repro.tensor`` provides the minimal but complete tensor/autograd machinery
that the neural-network layers in :mod:`repro.nn` are built on.

Public API
----------
``Tensor``
    N-dimensional array with reverse-mode autograd.
``functional``
    Composite differentiable functions (softmax, cross-entropy, KL, ...).
``init``
    Weight initialisation schemes (Xavier/Glorot, Kaiming/He, uniform).
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor import init

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "init"]
