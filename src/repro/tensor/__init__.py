"""NumPy-backed reverse-mode automatic differentiation engine.

This subpackage is the deep-learning substrate for the DTDBD reproduction.
The original paper uses PyTorch; this environment has no GPU frameworks, so
``repro.tensor`` provides the minimal but complete tensor/autograd machinery
that the neural-network layers in :mod:`repro.nn` are built on.

Public API
----------
``Tensor``
    N-dimensional array with reverse-mode autograd.
``functional``
    Composite differentiable functions (softmax, cross-entropy, KL, ...).
``fused``
    Single-node fused kernels with analytic backwards (the fast path).
``init``
    Weight initialisation schemes (Xavier/Glorot, Kaiming/He, uniform).
``set_default_dtype`` / ``get_default_dtype`` / ``default_dtype``
    Global float32/float64 compute policy.
"""

from repro.tensor.dtype import default_dtype, get_default_dtype, set_default_dtype
from repro.tensor.tensor import (
    Tensor,
    graph_nodes_created,
    is_grad_enabled,
    no_grad,
)
from repro.tensor import fused
from repro.tensor import functional
from repro.tensor import init
from repro.tensor.fused import fused_kernels, is_fused_enabled, set_fused_enabled

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "graph_nodes_created",
    "functional", "fused", "init",
    "default_dtype", "get_default_dtype", "set_default_dtype",
    "fused_kernels", "is_fused_enabled", "set_fused_enabled",
]
