"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is exactly repeatable from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dtype import get_default_dtype
from repro.tensor.tensor import Tensor
from repro.utils import fallback_rng


def _rng(rng: np.random.Generator | None) -> np.random.Generator:
    # The experiment-wide fallback stream keeps unseeded construction
    # reproducible run-to-run (see repro.utils.set_global_seed).
    return rng if rng is not None else fallback_rng()


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None,
                   gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    rng = _rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=shape), requires_grad=True)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator | None = None,
                  gain: float = 1.0) -> Tensor:
    rng = _rng(rng)
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> Tensor:
    """He initialisation suited for ReLU networks."""
    rng = _rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return Tensor(rng.uniform(-limit, limit, size=shape), requires_grad=True)


def normal(shape: tuple[int, ...], std: float = 0.02,
           rng: np.random.Generator | None = None) -> Tensor:
    rng = _rng(rng)
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def zeros(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.zeros(shape, dtype=get_default_dtype()), requires_grad=True)


def ones(shape: tuple[int, ...]) -> Tensor:
    return Tensor(np.ones(shape, dtype=get_default_dtype()), requires_grad=True)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out
