"""Command-line interface for the DTDBD reproduction.

Usage (after ``pip install -e .``)::

    python -m repro.cli stats   --dataset chinese --scale 1.0
    python -m repro.cli audit   --scale 0.3 --epochs 8
    python -m repro.cli compare --dataset chinese --baselines textcnn m3fend --output out.json
    python -m repro.cli ablation --students textcnn_s --output ablation.json
    python -m repro.cli case-study --scale 0.25
    python -m repro.cli export  --out detector --dtdbd --scale 0.1 --epochs 4
    python -m repro.cli predict --pipeline detector --text "breaking dom3_topic17 ..."
    python -m repro.cli backends
    python -m repro.cli verify  --pipeline detector
    python -m repro.cli serve   --pipeline detector --workers 2 --port 8080
    python -m repro.cli sweep   --tables table4 table5 --jobs 2 --journal runs/j1
    python -m repro.cli sweep   --journal runs/j1 --resume

Every table subcommand prints the corresponding paper-layout table and
optionally writes the raw results as JSON (``--output``).  ``export`` trains a
detector (a baseline, or the full DTDBD student with ``--dtdbd``) and bundles
it into a ``repro.serve`` pipeline artifact; ``predict`` loads such an
artifact in a fresh process — no training-time state — and scores raw text.

Environment variables: ``REPRO_SCALE`` / ``REPRO_SCALE_EN`` (corpus scale),
``REPRO_EPOCHS`` (training epochs), ``REPRO_DTYPE`` (``float64`` default;
``float32`` runs the whole pipeline — loaders, models, training — on the
engine's fast path, see ``PERFORMANCE.md``) and ``REPRO_ENCODER_BACKEND``
(``local`` default; ``backends`` lists the registered kinds).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import TABLE3_MODELS, case_study_summary
from repro.data import dataset_statistics_table, imbalance_summary
from repro.experiments import (
    TABLE6_BASELINES,
    TABLE7_BASELINES,
    default_chinese_config,
    default_english_config,
    format_bias_audit,
    format_case_study,
    format_compact_table,
    format_comparison_table,
    format_dataset_statistics,
    prepare_data,
    run_comparison,
    run_figure3_case_study,
    run_table3,
    run_table8_ablation,
    run_table9_dat_comparison,
)
from repro.experiments.io import save_results


def _base_config(args):
    factory = default_chinese_config if args.dataset == "chinese" else default_english_config
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if getattr(args, "encoder_backend", None) is not None:
        overrides["encoder_backend"] = args.encoder_backend
    config = factory(**overrides)
    if args.epochs is not None:
        config.dat.epochs = args.epochs
        config.dtdbd.epochs = args.epochs
    return config


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("chinese", "english"), default="chinese")
    parser.add_argument("--scale", type=float, default=None,
                        help="fraction of the paper-sized corpus (default per dataset)")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--encoder-backend", type=str, default=None,
                        help="encoder backend kind for the plm channel "
                             "(see 'backends'; default: local, or "
                             "REPRO_ENCODER_BACKEND)")
    parser.add_argument("--output", type=str, default=None,
                        help="write raw results to this JSON file")


def _maybe_save(results, args) -> None:
    if args.output:
        save_results(results, args.output)
        print(f"\n[saved results to {args.output}]")


def cmd_stats(args) -> int:
    config = _base_config(args)
    bundle = prepare_data(config)
    table = dataset_statistics_table(bundle.dataset)
    print(format_dataset_statistics(table, title=f"{args.dataset} dataset statistics"))
    summary = imbalance_summary(bundle.dataset)
    print(f"\n%News spread: {summary['news_share_spread']:.1f} points, "
          f"%Fake spread: {summary['fake_ratio_spread']:.1f} points")
    _maybe_save({"statistics": table, "imbalance": summary}, args)
    return 0


def cmd_audit(args) -> int:
    config = _base_config(args)
    bundle = prepare_data(config)
    audit = run_table3(config, models=tuple(args.models), bundle=bundle)
    print(format_bias_audit(audit))
    _maybe_save({"table": audit.as_table(), "skew": audit.skew_summary()}, args)
    return 0


def cmd_compare(args) -> int:
    config = _base_config(args)
    bundle = prepare_data(config)
    if args.baselines:
        baselines = tuple(args.baselines)
    else:
        baselines = TABLE6_BASELINES if args.dataset == "chinese" else TABLE7_BASELINES
    reports = run_comparison(config, baselines=baselines,
                             include_dtdbd=not args.no_dtdbd, bundle=bundle)
    print(format_comparison_table(reports, bundle.dataset.domain_names,
                                  title=f"{args.dataset} comparison"))
    _maybe_save(reports, args)
    return 0


def cmd_ablation(args) -> int:
    config = _base_config(args)
    bundle = prepare_data(config)
    results = run_table8_ablation(config, student_names=tuple(args.students), bundle=bundle)
    for student, rows in results.items():
        print(format_compact_table(rows, title=f"Ablation ({student})"))
        print()
    dat = run_table9_dat_comparison(config, student_names=tuple(args.students), bundle=bundle)
    for student, rows in dat.items():
        print(format_compact_table(rows, title=f"DAT vs DAT-IE ({student})"))
        print()
    _maybe_save({"components": results, "dat": dat}, args)
    return 0


def cmd_case_study(args) -> int:
    config = _base_config(args)
    bundle = prepare_data(config)
    rows = run_figure3_case_study(config, bundle=bundle)
    print(format_case_study(rows))
    print("\nSummary:")
    for model, stats in case_study_summary(rows).items():
        print(f"  {model:10s} accuracy={stats['accuracy']:.2f} "
              f"confidence={stats['mean_confidence_true_label']:.3f}")
    _maybe_save([row.as_dict() for row in rows], args)
    return 0


def cmd_export(args) -> int:
    from repro.experiments import export_pipeline, train_baseline, train_dtdbd_student, train_unbiased

    config = _base_config(args)
    bundle = prepare_data(config)
    model_name = args.model or config.student_name
    if args.dtdbd:
        unbiased, _ = train_unbiased(bundle, student_name=model_name)
        clean, _ = train_baseline(args.teacher, bundle, seed_offset=300)
        model, report, _ = train_dtdbd_student(bundle, unbiased, clean,
                                               student_name=model_name)
        method = f"dtdbd({model_name}, teacher={args.teacher})"
    else:
        model, report = train_baseline(model_name, bundle)
        method = f"baseline({model_name})"
    path = export_pipeline(model, bundle, args.out,
                           metadata={"method": method, "test_f1": report.overall_f1})
    print(f"[exported {method} -> {path}]  test F1={report.overall_f1:.3f}")
    print(f"score raw text with: python -m repro.cli predict --pipeline {path} "
          f"--text \"...\"")
    _maybe_save({"path": path, "method": method, "report": report}, args)
    return 0


def cmd_predict(args) -> int:
    from repro.serve import PipelineError, load_pipeline

    texts = list(args.text or [])
    if args.input == "-":
        texts.extend(line.strip() for line in sys.stdin if line.strip())
    elif args.input:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                texts.extend(line.strip() for line in handle if line.strip())
        except (OSError, UnicodeDecodeError) as error:
            print(f"predict: cannot read --input file: {error}", file=sys.stderr)
            return 2
    if not texts:
        print("predict: no texts given (use --text and/or --input)", file=sys.stderr)
        return 2
    try:
        pipeline = load_pipeline(args.pipeline)
    except PipelineError as error:
        # One readable line, not a traceback: missing artifacts, corrupt or
        # checksum-failing files and format mismatches all land here.
        print(f"predict: {' '.join(str(error).split())}", file=sys.stderr)
        return 2
    domain = int(args.domain) if args.domain and args.domain.isdigit() else args.domain
    try:
        predictor = pipeline.predictor(default_domain=domain)
    except KeyError as error:
        print(f"predict: {error.args[0]}", file=sys.stderr)
        return 2
    print(f"[pipeline: {pipeline.model_name} ({pipeline.dtype}), "
          f"{len(pipeline.domain_names)} domains, vocab {len(pipeline.vocab)}]")
    predictions = list(predictor.predict_iter(texts, batch_size=args.max_batch))
    for text, prediction in zip(texts, predictions):
        preview = text if len(text) <= 48 else text[:45] + "..."
        print(f"  {prediction.label_name:4s}  p(fake)={prediction.probability_fake:.3f}  "
              f"domain={prediction.domain:12s}  {prediction.latency_ms:7.2f} ms  {preview}")
    _maybe_save([prediction.as_dict() for prediction in predictions], args)
    return 0


def cmd_backends(args) -> int:
    """List registered encoder backends and feature channels; one line each."""
    from repro.encoders import (
        available_encoder_backends,
        available_feature_channels,
    )
    from repro.encoders.backends import ENCODER_BACKENDS
    from repro.encoders.channels import FEATURE_CHANNELS

    for kind in available_encoder_backends():
        backend_cls = ENCODER_BACKENDS[kind]
        doc = (backend_cls.__doc__ or "").strip().splitlines()
        print(f"backend  {kind:10s} {backend_cls.__name__:16s} "
              f"{doc[0] if doc else ''}")
    for name in available_feature_channels():
        build_fn = FEATURE_CHANNELS[name]
        owner = getattr(build_fn, "__self__", None)
        label = (owner.__name__ if isinstance(owner, type)
                 else getattr(build_fn, "__qualname__", repr(build_fn)))
        print(f"channel  {name:10s} {label}")
    return 0


def _echo_backend_line(path: str) -> None:
    """Print the artifact's encoder-backend identity (kind + fingerprint)."""
    import json
    import os

    from repro.encoders.backends import spec_fingerprint
    from repro.serve import MANIFEST_FILE

    try:
        with open(os.path.join(path, MANIFEST_FILE), "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return  # the checksum pass already reported manifest damage
    spec = manifest.get("encoder_backend")
    if spec is None and "encoder" in manifest:
        spec = {"kind": "local", "encoder": manifest["encoder"]}
    if isinstance(spec, dict) and "kind" in spec:
        channels = manifest.get("feature_channels", [])
        print(f"verify: encoder backend kind={spec['kind']} "
              f"fingerprint={spec_fingerprint(spec)} "
              f"channels={','.join(channels)}")


def cmd_verify(args) -> int:
    """Check every recorded artifact checksum; one line per file, exit 0/2."""
    import json
    import os

    from repro.reliability.durable import sha256_file
    from repro.serve import CHECKSUMS_FILE

    path = args.pipeline
    checks_path = os.path.join(path, CHECKSUMS_FILE)
    if not os.path.isdir(path):
        print(f"verify: no pipeline artifact at '{path}'", file=sys.stderr)
        return 2
    if not os.path.exists(checks_path):
        print(f"verify: '{path}' records no checksums ({CHECKSUMS_FILE} missing) "
              "— a legacy artifact; re-export to add integrity checks")
        _echo_backend_line(path)
        return 0
    try:
        with open(checks_path, "r", encoding="utf-8") as handle:
            recorded = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"verify: cannot read {CHECKSUMS_FILE}: {error}", file=sys.stderr)
        return 2
    failures = 0
    for name, digest in sorted(recorded.items()):
        target = os.path.join(path, name)
        if not os.path.exists(target):
            print(f"  MISSING  {name}  expected sha256={digest[:12]}")
            failures += 1
            continue
        actual = sha256_file(target)
        if actual == digest:
            print(f"  ok       {name}  sha256={digest[:12]}")
        else:
            print(f"  CORRUPT  {name}  expected sha256={digest[:12]} "
                  f"actual={actual[:12]}")
            failures += 1
    if failures:
        print(f"verify: {failures} of {len(recorded)} files damaged in '{path}'",
              file=sys.stderr)
        return 2
    print(f"verify: all {len(recorded)} files intact in '{path}'")
    _echo_backend_line(path)
    return 0


def cmd_sweep(args) -> int:
    """Regenerate paper tables through the fault-tolerant parallel orchestrator."""
    import os

    from repro.experiments.journal import JournalError
    from repro.experiments.orchestrator import (
        TABLE_CELLS,
        OrchestratorConfig,
        SweepFailed,
        run_sweep,
        table_cell_specs,
    )
    from repro.reliability.durable import atomic_write_text
    from repro.reliability.retry import RetryPolicy

    if args.list:
        for name, entry in TABLE_CELLS.items():
            print(f"  {name:8s} -> benchmarks/results/{entry.output}.txt")
        return 0

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.encoder_backend is not None:
        overrides["encoder_backend"] = args.encoder_backend
    # Pin the effective dtype into every cell spec: the journal fingerprint
    # must distinguish a float32 sweep from a float64 one even when the
    # choice came from the environment.
    overrides["dtype"] = os.environ.get("REPRO_DTYPE", "float64")

    try:
        specs = table_cell_specs(args.tables, config=overrides)
    except ValueError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2

    retry = None
    if args.retries is not None:
        retry = RetryPolicy(attempts=max(1, args.retries + 1),
                            base_delay_s=0.05, max_delay_s=1.0,
                            retry_on=(Exception,))
    config = OrchestratorConfig(jobs=args.jobs, retry=retry,
                                cell_timeout_s=args.cell_timeout,
                                on_progress=lambda line: print(f"sweep: {line}"))
    try:
        sweep = run_sweep(specs, config=config, journal_dir=args.journal,
                          resume=args.resume)
    except (JournalError, SweepFailed) as error:
        print(f"sweep: {' '.join(str(error).split())}", file=sys.stderr)
        return 2

    if args.results_dir:
        os.makedirs(args.results_dir, exist_ok=True)
        for payload in sweep.results.values():
            if isinstance(payload, dict) and payload.get("text") and payload.get("output"):
                target = os.path.join(args.results_dir, f"{payload['output']}.txt")
                atomic_write_text(target, payload["text"] + "\n")
                print(f"sweep: wrote {target}")
    _maybe_save(sweep.results, args)
    for outcome in sweep.failures:
        print(f"sweep: {outcome.describe()}", file=sys.stderr)
    return 0 if sweep.ok else 2


def cmd_serve(args) -> int:
    """Serve an artifact over HTTP with the supervised worker pool."""
    import asyncio

    from repro.serve import HttpFrontend, PipelineError, Server, ServerConfig

    config = ServerConfig(workers=args.workers, max_batch=args.max_batch,
                          max_latency_ms=args.max_latency_ms,
                          queue_high_water=args.queue_high_water,
                          default_deadline_ms=args.deadline_ms)
    server = Server(args.pipeline, config)
    try:
        server.start()
    except PipelineError as error:
        print(f"serve: {' '.join(str(error).split())}", file=sys.stderr)
        return 2
    try:
        if not server.wait_ready(60.0):
            print("serve: workers did not become ready within 60s", file=sys.stderr)
            server.stop()
            return 2
    except RuntimeError as error:  # a worker reported a fatal startup error
        print(f"serve: {' '.join(str(error).split())}", file=sys.stderr)
        server.stop()
        return 2

    async def run() -> None:
        import signal as signal_module

        frontend = HttpFrontend(server, host=args.host, port=args.port)
        port = await frontend.start()
        print(f"[serving {server.model_name} ({server.dtype}) at "
              f"http://{args.host}:{port} — POST /predict, GET /health, "
              f"GET /stats; {args.workers} workers; Ctrl-C to stop]")
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        try:
            # SIGTERM (the deployment kill signal) drains like Ctrl-C does.
            loop.add_signal_handler(signal_module.SIGTERM, stopping.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        serve_task = asyncio.ensure_future(frontend.serve_forever())
        stop_task = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait({serve_task, stop_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await frontend.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\n[draining and shutting down]")
    finally:
        server.stop()
    return 0


def _stream_ring_loader(pipeline, events, buffer_size: int, seed: int):
    """A ring-buffer training loader prefilled from the schedule itself.

    Rows come from the schedule's labeled events for domains the pipeline
    already knows (in-distribution and in-vocab by construction), cycled to
    fill ``buffer_size`` rows; :class:`repro.data.StreamWindowBuffer` then
    overwrites them with live feedback during the run.
    """
    from repro.data.dataset import MultiDomainNewsDataset, NewsItem
    from repro.data.loader import DataLoader

    known = list(pipeline.domain_names)
    labeled = [event for event in events
               if event.label is not None and event.domain in known]
    if not labeled:
        raise ValueError("--adapt needs labeled events for known domains "
                         "in the schedule to seed the feedback buffer")
    items = [NewsItem(text=event.text, label=int(event.label),
                      domain=known.index(event.domain),
                      domain_name=event.domain, item_id=event.ordinal)
             for index, event in enumerate(labeled * buffer_size)
             if index < buffer_size]
    dataset = MultiDomainNewsDataset(items, domain_names=known,
                                     name="stream-buffer")
    return DataLoader(dataset, pipeline.vocab, max_length=pipeline.max_length,
                      batch_size=min(32, buffer_size), shuffle=True, seed=seed,
                      tokenizer=pipeline.tokenizer,
                      channels=pipeline.resolve_channels())


def cmd_stream(args) -> int:
    """Generate a domain-shift schedule, or replay one against a pipeline."""
    from repro.experiments.stream_schedule import (
        StreamScheduleConfig,
        generate_stream_schedule,
    )
    from repro.streaming import (
        AdapterConfig,
        DriftConfig,
        DriftMonitor,
        OnlineAdapter,
        StreamConfig,
        StreamRunner,
        load_schedule,
        save_schedule,
    )

    if args.make_schedule:
        config = StreamScheduleConfig(
            dataset=args.dataset, seed=args.seed,
            **({"scale": args.scale} if args.scale is not None else {}),
            drift_domain=args.drift_domain, novel_domain=args.novel_domain)
        events, metadata = generate_stream_schedule(config)
        save_schedule(events, args.make_schedule, metadata=metadata)
        labeled = sum(1 for event in events if event.label is not None)
        print(f"[wrote {len(events)} events ({labeled} labeled) to "
              f"{args.make_schedule}; drift={config.drift_domain} "
              f"novel={config.novel_domain}]")
        return 0

    if not args.pipeline or not args.schedule:
        print("stream: replay needs --pipeline and --schedule "
              "(or use --make-schedule)", file=sys.stderr)
        return 2
    from repro.serve import PipelineError, load_pipeline

    try:
        events, _ = load_schedule(args.schedule)
    except ValueError as error:
        print(f"stream: {' '.join(str(error).split())}", file=sys.stderr)
        return 2
    try:
        pipeline = load_pipeline(args.pipeline)
    except PipelineError as error:
        print(f"stream: {' '.join(str(error).split())}", file=sys.stderr)
        return 2

    monitor = DriftMonitor(pipeline.domain_names, DriftConfig(
        psi_threshold=args.psi_threshold, bias_threshold=args.bias_threshold))
    adapter = None
    if args.adapt:
        export_path = args.export_path or args.pipeline.rstrip("/") + "-stream"
        try:
            loader = _stream_ring_loader(pipeline, events, args.buffer,
                                         seed=args.seed)
        except ValueError as error:
            print(f"stream: {error}", file=sys.stderr)
            return 2
        adapter = OnlineAdapter(pipeline, loader, AdapterConfig(
            export_path=export_path, min_feedback=args.min_feedback))
    runner = StreamRunner(pipeline.predictor(), monitor, adapter,
                          StreamConfig(max_batch=args.max_batch))
    try:
        report = runner.run(events)
    except ValueError as error:
        print(f"stream: {' '.join(str(error).split())}", file=sys.stderr)
        return 2

    print(f"[streamed {report.events} events: {report.served} served, "
          f"{report.failed} failed, {report.skipped_unknown_domain} skipped "
          "(unknown domain)]")
    for entry in report.drift_events:
        print(f"  drift  @{entry['ordinal']:6d}  {entry['kind']:12s} "
              f"{entry['domain']:14s} value={entry['value']:.3f} "
              f"threshold={entry['threshold']:.2f}")
    for entry in report.adaptations:
        print(f"  adapt  @{entry['ordinal']:6d}  items={entry['items']:3d} "
              f"loss={entry['losses'][-1]:.4f} -> {entry['fingerprint']}  "
              f"({entry['reason']})")
    for entry in report.onboardings:
        print(f"  onboard@{entry['ordinal']:6d}  {entry['domain']} "
              f"(domain {entry['domain_index']}, donor {entry['donor']}) "
              f"-> {entry['fingerprint']}")
    if adapter is not None:
        print(f"[final artifact: {adapter.config.export_path} "
              f"fingerprint={report.final_fingerprint}]")
    _maybe_save(report.as_dict(), args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser("stats", help="dataset statistics (Tables I/IV/V)")
    _add_common(stats)
    stats.set_defaults(handler=cmd_stats)

    audit = subparsers.add_parser("audit", help="domain-bias audit (Table III)")
    _add_common(audit)
    audit.add_argument("--models", nargs="*", default=list(TABLE3_MODELS))
    audit.set_defaults(handler=cmd_audit)

    compare = subparsers.add_parser("compare", help="full comparison (Tables VI/VII)")
    _add_common(compare)
    compare.add_argument("--baselines", nargs="*", default=None)
    compare.add_argument("--no-dtdbd", action="store_true")
    compare.set_defaults(handler=cmd_compare)

    ablation = subparsers.add_parser("ablation", help="component ablation (Tables VIII/IX)")
    _add_common(ablation)
    ablation.add_argument("--students", nargs="*", default=["textcnn_s"])
    ablation.set_defaults(handler=cmd_ablation)

    case = subparsers.add_parser("case-study", help="case study (Figure 3)")
    _add_common(case)
    case.set_defaults(handler=cmd_case_study)

    export = subparsers.add_parser(
        "export", help="train a detector and bundle it as a servable pipeline")
    _add_common(export)
    export.add_argument("--out", type=str, default="pipeline",
                        help="artifact directory to write (default: ./pipeline)")
    export.add_argument("--model", type=str, default=None,
                        help="registry name to train (default: the config's student)")
    export.add_argument("--dtdbd", action="store_true",
                        help="run the full DTDBD distillation instead of plain training")
    export.add_argument("--teacher", type=str, default="mdfend",
                        help="clean-teacher architecture for --dtdbd (default: mdfend)")
    export.set_defaults(handler=cmd_export)

    predict = subparsers.add_parser(
        "predict", help="score raw news text with an exported pipeline")
    predict.add_argument("--pipeline", type=str, required=True,
                         help="artifact directory written by 'export'")
    predict.add_argument("--text", action="append", default=None,
                         help="news text to score (repeatable)")
    predict.add_argument("--input", type=str, default=None,
                         help="file with one text per line ('-' for stdin)")
    predict.add_argument("--domain", type=str, default=None,
                         help="domain name or index assumed for all texts")
    predict.add_argument("--max-batch", type=int, default=64,
                         help="micro-batch width for scoring (default: 64)")
    predict.add_argument("--output", type=str, default=None,
                         help="write raw predictions to this JSON file")
    predict.set_defaults(handler=cmd_predict)

    backends = subparsers.add_parser(
        "backends", help="list registered encoder backends and feature channels")
    backends.set_defaults(handler=cmd_backends)

    verify = subparsers.add_parser(
        "verify", help="check an exported pipeline's checksums (exit 0/2)")
    verify.add_argument("--pipeline", type=str, required=True,
                        help="artifact directory written by 'export'")
    verify.set_defaults(handler=cmd_verify)

    serve = subparsers.add_parser(
        "serve", help="serve an exported pipeline over HTTP (worker pool)")
    serve.add_argument("--pipeline", type=str, required=True,
                       help="artifact directory written by 'export'")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 picks a free one; default: 8080)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes (default: 2)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batch width (default: 32)")
    serve.add_argument("--max-latency-ms", type=float, default=5.0,
                       help="flush a partial batch after this wait (default: 5)")
    serve.add_argument("--queue-high-water", type=int, default=256,
                       help="shed submissions past this queue depth (default: 256)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="default per-request deadline (default: none)")
    serve.set_defaults(handler=cmd_serve)

    stream = subparsers.add_parser(
        "stream", help="replay a domain-shift event schedule against a "
                       "pipeline (drift monitoring, optional adaptation)")
    stream.add_argument("--pipeline", type=str, default=None,
                        help="artifact directory written by 'export'")
    stream.add_argument("--schedule", type=str, default=None,
                        help="schedule file written by --make-schedule")
    stream.add_argument("--make-schedule", type=str, default=None,
                        help="generate a synthetic schedule to this file and exit")
    stream.add_argument("--dataset", choices=("chinese", "english"),
                        default="chinese")
    stream.add_argument("--scale", type=float, default=None,
                        help="corpus scale for --make-schedule (match the "
                             "pipeline's training scale)")
    stream.add_argument("--seed", type=int, default=2024)
    stream.add_argument("--drift-domain", type=str, default="disaster",
                        help="domain drifting in phase B (default: disaster)")
    stream.add_argument("--novel-domain", type=str, default="crypto",
                        help="unseen domain arriving in phase C (default: crypto)")
    stream.add_argument("--adapt", action="store_true",
                        help="react to drift/onboarding with incremental "
                             "fine-tuning and hot reloads")
    stream.add_argument("--export-path", type=str, default=None,
                        help="artifact directory re-exports land in "
                             "(default: <pipeline>-stream)")
    stream.add_argument("--buffer", type=int, default=64,
                        help="feedback ring-buffer rows for --adapt (default: 64)")
    stream.add_argument("--min-feedback", type=int, default=8,
                        help="labeled items required per adaptation (default: 8)")
    stream.add_argument("--max-batch", type=int, default=16,
                        help="scoring micro-batch width (default: 16)")
    stream.add_argument("--psi-threshold", type=float, default=0.25)
    stream.add_argument("--bias-threshold", type=float, default=0.25)
    stream.add_argument("--output", type=str, default=None,
                        help="write the stream report to this JSON file")
    stream.set_defaults(handler=cmd_stream)

    sweep = subparsers.add_parser(
        "sweep", help="regenerate paper tables via the parallel orchestrator "
                      "(journaled, crash-resumable)")
    sweep.add_argument("--tables", nargs="*", default=None,
                       help="table cells to run (default: all; see --list)")
    sweep.add_argument("--jobs", type=int, default=2,
                       help="worker processes (0 = serial in-process; default: 2)")
    sweep.add_argument("--journal", type=str, default=None,
                       help="journal directory for crash-resume (default: none)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an existing journal, skipping completed cells")
    sweep.add_argument("--retries", type=int, default=None,
                       help="extra attempts per failing cell (default: 1)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell wall-clock budget in seconds (default: none)")
    sweep.add_argument("--results-dir", type=str, default=None,
                       help="write each table's text to <dir>/<table>.txt")
    sweep.add_argument("--list", action="store_true",
                       help="list available table cells and exit")
    sweep.add_argument("--scale", type=float, default=None,
                       help="fraction of the paper-sized corpus (default per dataset)")
    sweep.add_argument("--epochs", type=int, default=None)
    sweep.add_argument("--encoder-backend", type=str, default=None)
    sweep.add_argument("--output", type=str, default=None,
                       help="write all raw cell results to this JSON file")
    sweep.set_defaults(handler=cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
