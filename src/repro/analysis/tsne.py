"""Exact t-SNE (van der Maaten & Hinton, 2008) for the Figure-2 analysis.

The paper projects intermediate features of the test set into 2-D with t-SNE
and argues visually that DTDBD mixes domains more than the baselines.  This
module provides the projection plus a *quantitative* domain-mixing score so the
claim can be checked without plots: for every point we look at its k nearest
neighbours in the embedding and compute the entropy of their domain
distribution (normalised by the maximum possible entropy).  Higher = domains
more mixed in feature space.
"""

from __future__ import annotations

import numpy as np


def _pairwise_squared_distances(x: np.ndarray) -> np.ndarray:
    norms = (x * x).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _binary_search_perplexity(distances: np.ndarray, perplexity: float,
                              tolerance: float = 1e-5, max_iterations: int = 50) -> np.ndarray:
    """Find per-point precisions so every row of P has the requested perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n))
    for i in range(n):
        beta_min, beta_max = -np.inf, np.inf
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(max_iterations):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                probabilities = np.full_like(row, 1.0 / row.size)
                entropy = np.log(row.size)
            else:
                probabilities = exp_row / total
                entropy = -np.sum(probabilities * np.log(np.maximum(probabilities, 1e-12)))
            difference = entropy - target_entropy
            if abs(difference) < tolerance:
                break
            if difference > 0:
                beta_min = beta
                beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2.0
        conditional[i, np.arange(n) != i] = probabilities
    return conditional


def tsne(features: np.ndarray, n_components: int = 2, perplexity: float = 20.0,
         iterations: int = 300, learning_rate: float = 100.0, seed: int = 0,
         early_exaggeration: float = 4.0) -> np.ndarray:
    """Project ``features`` to ``n_components`` dimensions with exact t-SNE."""
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    distances = _pairwise_squared_distances(features)
    conditional = _binary_search_perplexity(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    rng = np.random.default_rng(seed)
    embedding = rng.standard_normal((n, n_components)) * 1e-2
    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)

    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < 50 else 1.0
        momentum = 0.5 if iteration < 100 else 0.8
        emb_distances = _pairwise_squared_distances(embedding)
        inverse = 1.0 / (1.0 + emb_distances)
        np.fill_diagonal(inverse, 0.0)
        q = np.maximum(inverse / inverse.sum(), 1e-12)
        difference = (exaggeration * joint - q) * inverse
        gradient = 4.0 * ((np.diag(difference.sum(axis=1)) - difference) @ embedding)
        gains = np.where(np.sign(gradient) != np.sign(velocity),
                         gains + 0.2, gains * 0.8)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding


def domain_mixing_score(embedding: np.ndarray, domains: np.ndarray, k: int = 10) -> float:
    """Average normalised entropy of domain labels among each point's k neighbours.

    1.0 means every neighbourhood contains all domains in equal proportion
    (fully mixed); 0.0 means neighbourhoods are single-domain (fully separated).
    This is the quantitative counterpart of the visual claim in Figure 2.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    domains = np.asarray(domains)
    n = embedding.shape[0]
    if n <= k:
        raise ValueError("need more points than neighbours")
    unique_domains = np.unique(domains)
    max_entropy = np.log(len(unique_domains)) if len(unique_domains) > 1 else 1.0
    distances = _pairwise_squared_distances(embedding)
    np.fill_diagonal(distances, np.inf)
    neighbour_indices = np.argsort(distances, axis=1)[:, :k]
    entropies = []
    for i in range(n):
        neighbour_domains = domains[neighbour_indices[i]]
        counts = np.array([(neighbour_domains == d).sum() for d in unique_domains], dtype=float)
        probabilities = counts / counts.sum()
        probabilities = probabilities[probabilities > 0]
        entropies.append(-np.sum(probabilities * np.log(probabilities)))
    return float(np.mean(entropies) / max_entropy)


def feature_domain_mixing(features: np.ndarray, domains: np.ndarray, k: int = 10,
                          max_points: int = 400, seed: int = 0,
                          tsne_iterations: int = 250) -> dict:
    """Full Figure-2 style analysis: t-SNE projection + mixing score.

    Returns the embedding (possibly subsampled), the matching domain labels and
    the mixing score.
    """
    features = np.asarray(features)
    domains = np.asarray(domains)
    if features.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(features.shape[0], size=max_points, replace=False)
        features = features[chosen]
        domains = domains[chosen]
    embedding = tsne(features, iterations=tsne_iterations, seed=seed)
    return {
        "embedding": embedding,
        "domains": domains,
        "mixing_score": domain_mixing_score(embedding, domains, k=k),
    }
