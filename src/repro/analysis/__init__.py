"""Analyses behind the paper's figures and the Table III audit."""

from repro.analysis.bias_analysis import (
    TABLE3_DOMAINS,
    TABLE3_MODELS,
    BiasAudit,
    DomainErrorRates,
    audit_models,
)
from repro.analysis.case_study import (
    CasePrediction,
    CaseStudyRow,
    case_study_summary,
    run_case_study,
)
from repro.analysis.tsne import domain_mixing_score, feature_domain_mixing, tsne

__all__ = [
    "tsne", "domain_mixing_score", "feature_domain_mixing",
    "run_case_study", "case_study_summary", "CaseStudyRow", "CasePrediction",
    "audit_models", "BiasAudit", "DomainErrorRates", "TABLE3_DOMAINS", "TABLE3_MODELS",
]
