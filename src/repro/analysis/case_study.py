"""Case study (Figure 3): prediction probabilities on probe news items.

The paper shows three news pieces — real entertainment news, real politics
news and real disaster news — and compares the probability of the correct
label under M3FEND, MDFEND and DTDBD, arguing that DTDBD is both more often
correct and more confident on items from prior-skewed domains.

:func:`run_case_study` feeds the probe items produced by
:func:`repro.data.make_case_study_probes` (ambiguous real items from skewed
domains, the same failure mode as the paper's examples) through any set of
trained models and tabulates the probability each model assigns to the true
label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import MultiDomainNewsDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import CaseStudyItem
from repro.data.vocab import Vocabulary
from repro.models.base import FakeNewsDetector


@dataclass
class CasePrediction:
    """One model's verdict on one probe item."""

    model: str
    probability_true_label: float
    predicted_label: int
    correct: bool


@dataclass
class CaseStudyRow:
    """All models' verdicts on one probe item."""

    description: str
    domain: str
    true_label: int
    expected_bias: str
    predictions: list[CasePrediction] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "description": self.description,
            "domain": self.domain,
            "true_label": self.true_label,
            "expected_bias": self.expected_bias,
            "predictions": {
                p.model: {"p_true": p.probability_true_label,
                          "prediction": p.predicted_label,
                          "correct": p.correct}
                for p in self.predictions
            },
        }


def run_case_study(probes: list[CaseStudyItem], models: dict[str, FakeNewsDetector],
                   vocab: Vocabulary, domain_names: list[str], max_length: int = 24,
                   feature_extractors=None) -> list[CaseStudyRow]:
    """Evaluate every model on every probe item and collect the probabilities."""
    dataset = MultiDomainNewsDataset([probe.item for probe in probes], domain_names,
                                     name="case-study")
    loader = DataLoader(dataset, vocab, max_length=max_length, batch_size=len(probes),
                        shuffle=False, feature_extractors=feature_extractors or {})
    batch = loader.full_batch()
    rows: list[CaseStudyRow] = []
    for index, probe in enumerate(probes):
        rows.append(CaseStudyRow(
            description=probe.description,
            domain=probe.item.domain_name,
            true_label=probe.item.label,
            expected_bias=probe.expected_bias,
        ))
    for name, model in models.items():
        probabilities = model.predict_proba(batch)
        predictions = probabilities.argmax(axis=1)
        for index, probe in enumerate(probes):
            true_label = probe.item.label
            rows[index].predictions.append(CasePrediction(
                model=name,
                probability_true_label=float(probabilities[index, true_label]),
                predicted_label=int(predictions[index]),
                correct=bool(predictions[index] == true_label),
            ))
    return rows


def case_study_summary(rows: list[CaseStudyRow]) -> dict[str, dict[str, float]]:
    """Per-model aggregate: how many probes correct, mean confidence on the truth."""
    summary: dict[str, dict[str, float]] = {}
    for row in rows:
        for prediction in row.predictions:
            entry = summary.setdefault(prediction.model,
                                       {"correct": 0.0, "confidence_sum": 0.0, "count": 0.0})
            entry["correct"] += 1.0 if prediction.correct else 0.0
            entry["confidence_sum"] += prediction.probability_true_label
            entry["count"] += 1.0
    return {
        model: {
            "accuracy": entry["correct"] / entry["count"],
            "mean_confidence_true_label": entry["confidence_sum"] / entry["count"],
        }
        for model, entry in summary.items()
    }
