"""Domain-bias audit of trained detectors (Table III of the paper).

Table III reports the FNR and FPR of EANN, EDDFN, MDFEND and M3FEND on the
four most imbalance-affected Weibo21 domains — disaster, politics (fake-heavy)
and finance, entertainment (real-heavy) — and observes that the fake-heavy
domains attract high FPR while the real-heavy domains attract high FNR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import evaluate_model
from repro.data.loader import DataLoader
from repro.models.base import FakeNewsDetector

#: the four disequilibrium domains analysed in Table III
TABLE3_DOMAINS: tuple[str, ...] = ("disaster", "politics", "finance", "entertainment")
#: the four advanced baselines analysed in Table III
TABLE3_MODELS: tuple[str, ...] = ("eann", "eddfn", "mdfend", "m3fend")


@dataclass
class DomainErrorRates:
    """FNR / FPR of one model on one domain."""

    model: str
    domain: str
    fnr: float
    fpr: float


@dataclass
class BiasAudit:
    """The full Table-III structure plus a shape check of the paper's claim."""

    rows: list[DomainErrorRates] = field(default_factory=list)

    def for_model(self, model: str) -> dict[str, DomainErrorRates]:
        return {row.domain: row for row in self.rows if row.model == model}

    def as_table(self, domains: tuple[str, ...] = TABLE3_DOMAINS) -> dict[str, dict[str, float]]:
        table: dict[str, dict[str, float]] = {}
        for row in self.rows:
            table.setdefault(row.model, {})
            table[row.model][f"{row.domain}_fnr"] = row.fnr
            table[row.model][f"{row.domain}_fpr"] = row.fpr
        return table

    def skew_summary(self, fake_heavy: tuple[str, ...] = ("disaster", "politics"),
                     real_heavy: tuple[str, ...] = ("finance", "entertainment")) -> dict[str, dict]:
        """The paper's qualitative claim, per model.

        Fake-heavy domains should show FPR above FNR (models over-call "fake"),
        real-heavy domains should show FNR above FPR (models over-call "real").
        """
        summary: dict[str, dict] = {}
        for model in {row.model for row in self.rows}:
            by_domain = self.for_model(model)
            fake_heavy_fpr = float(np.mean([by_domain[d].fpr for d in fake_heavy if d in by_domain]))
            fake_heavy_fnr = float(np.mean([by_domain[d].fnr for d in fake_heavy if d in by_domain]))
            real_heavy_fpr = float(np.mean([by_domain[d].fpr for d in real_heavy if d in by_domain]))
            real_heavy_fnr = float(np.mean([by_domain[d].fnr for d in real_heavy if d in by_domain]))
            summary[model] = {
                "fake_heavy_fpr": fake_heavy_fpr,
                "fake_heavy_fnr": fake_heavy_fnr,
                "real_heavy_fpr": real_heavy_fpr,
                "real_heavy_fnr": real_heavy_fnr,
                "fake_heavy_overcalls_fake": fake_heavy_fpr >= fake_heavy_fnr,
                "real_heavy_overcalls_real": real_heavy_fnr >= real_heavy_fpr,
            }
        return summary


def audit_models(models: dict[str, FakeNewsDetector], loader: DataLoader,
                 domains: tuple[str, ...] = TABLE3_DOMAINS) -> BiasAudit:
    """Compute per-domain FNR/FPR for every model on ``loader`` (Table III)."""
    audit = BiasAudit()
    domain_names = loader.dataset.domain_names
    selected = [d for d in domains if d in domain_names] or list(domain_names)
    for name, model in models.items():
        report = evaluate_model(model, loader, model_name=name)
        for domain in selected:
            audit.rows.append(DomainErrorRates(
                model=name,
                domain=domain,
                fnr=report.bias.fnr_per_domain.get(domain, 0.0),
                fpr=report.bias.fpr_per_domain.get(domain, 0.0),
            ))
    return audit
