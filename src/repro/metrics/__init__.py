"""Performance and domain-bias metrics."""

from repro.metrics.classification import (
    accuracy,
    confusion_matrix,
    f1_score,
    macro_f1,
    precision_recall_f1,
)
from repro.metrics.fairness import (
    DomainBiasReport,
    domain_bias_report,
    false_negative_rate,
    false_positive_rate,
    fned,
    fped,
    rolling_domain_bias,
    satisfies_disparate_mistreatment,
    total_equality_difference,
)
from repro.metrics.report import EvaluationReport, evaluate_predictions

__all__ = [
    "accuracy", "confusion_matrix", "f1_score", "macro_f1", "precision_recall_f1",
    "false_negative_rate", "false_positive_rate",
    "DomainBiasReport", "domain_bias_report", "rolling_domain_bias",
    "fned", "fped", "total_equality_difference", "satisfies_disparate_mistreatment",
    "EvaluationReport", "evaluate_predictions",
]
