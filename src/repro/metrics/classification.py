"""Binary classification metrics (accuracy, precision, recall, F1)."""

from __future__ import annotations

import numpy as np


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.ndim != 1:
        raise ValueError("labels must be 1-D")
    return y_true, y_pred


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = 2) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix ``C[i, j]``.

    ``C[i, j]`` counts samples with true class ``i`` predicted as class ``j``.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(y_true, y_pred):
        matrix[true, pred] += 1
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray,
                        positive_class: int = 1) -> tuple[float, float, float]:
    """Precision, recall and F1 for ``positive_class``."""
    y_true, y_pred = _validate(y_true, y_pred)
    true_positive = int(((y_pred == positive_class) & (y_true == positive_class)).sum())
    false_positive = int(((y_pred == positive_class) & (y_true != positive_class)).sum())
    false_negative = int(((y_pred != positive_class) & (y_true == positive_class)).sum())
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return precision, recall, f1


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive_class: int = 1) -> float:
    """Binary F1 for ``positive_class``."""
    return precision_recall_f1(y_true, y_pred, positive_class=positive_class)[2]


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = 2) -> float:
    """Unweighted mean of the per-class F1 scores (the paper's F1 metric)."""
    y_true, y_pred = _validate(y_true, y_pred)
    if y_true.size == 0:
        return 0.0
    scores = []
    for cls in range(num_classes):
        if np.any(y_true == cls) or np.any(y_pred == cls):
            scores.append(f1_score(y_true, y_pred, positive_class=cls))
    return float(np.mean(scores)) if scores else 0.0
