"""Combined evaluation report: per-domain F1 plus overall F1, FNED, FPED, Total.

This is the row format of Tables VI and VII (and the compact format of
Tables VIII and IX), produced directly from predictions so every benchmark and
example shares the same computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.classification import accuracy, macro_f1
from repro.metrics.fairness import DomainBiasReport, domain_bias_report


@dataclass
class EvaluationReport:
    """Everything the paper reports for one model on one dataset."""

    model: str
    overall_f1: float
    overall_accuracy: float
    per_domain_f1: dict[str, float]
    bias: DomainBiasReport
    extras: dict = field(default_factory=dict)

    @property
    def fned(self) -> float:
        return self.bias.fned

    @property
    def fped(self) -> float:
        return self.bias.fped

    @property
    def total(self) -> float:
        return self.bias.total

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "f1": self.overall_f1,
            "accuracy": self.overall_accuracy,
            "per_domain_f1": dict(self.per_domain_f1),
            "fned": self.fned,
            "fped": self.fped,
            "total": self.total,
            **self.extras,
        }

    def table_row(self, domain_order: list[str] | None = None) -> list[float]:
        """Numeric row ``[per-domain F1..., F1, FNED, FPED, Total]``."""
        order = domain_order or list(self.per_domain_f1)
        row = [self.per_domain_f1.get(name, float("nan")) for name in order]
        row.extend([self.overall_f1, self.fned, self.fped, self.total])
        return row


def evaluate_predictions(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
                         domain_names: list[str], model_name: str = "model",
                         extras: dict | None = None) -> EvaluationReport:
    """Build an :class:`EvaluationReport` from raw predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    domains = np.asarray(domains)
    per_domain_f1: dict[str, float] = {}
    for index, name in enumerate(domain_names):
        mask = domains == index
        per_domain_f1[name] = macro_f1(y_true[mask], y_pred[mask]) if np.any(mask) else 0.0
    return EvaluationReport(
        model=model_name,
        overall_f1=macro_f1(y_true, y_pred),
        overall_accuracy=accuracy(y_true, y_pred),
        per_domain_f1=per_domain_f1,
        bias=domain_bias_report(y_true, y_pred, domains, domain_names),
        extras=extras or {},
    )
