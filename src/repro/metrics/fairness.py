"""Domain-bias metrics: FNR/FPR per domain, FPED, FNED and Total.

These implement Section VI-A-3 of the paper:

* ``FPED = sum_d |FPR - FPR_d|`` (Eq. 16)
* ``FNED = sum_d |FNR - FNR_d|`` (Eq. 17)
* ``Total = FPED + FNED``

together with Definition 3 (domain disparate mistreatment), which holds when
every pair of domains has (approximately) equal FNR and FPR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import FAKE_LABEL, REAL_LABEL


def false_positive_rate(y_true: np.ndarray, y_pred: np.ndarray,
                        positive_class: int = FAKE_LABEL) -> float:
    """P(predict positive | actually negative); 0 when there are no negatives."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    negatives = y_true != positive_class
    if not np.any(negatives):
        return 0.0
    return float((y_pred[negatives] == positive_class).mean())


def false_negative_rate(y_true: np.ndarray, y_pred: np.ndarray,
                        positive_class: int = FAKE_LABEL) -> float:
    """P(predict negative | actually positive); 0 when there are no positives."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    positives = y_true == positive_class
    if not np.any(positives):
        return 0.0
    return float((y_pred[positives] != positive_class).mean())


@dataclass
class DomainBiasReport:
    """Per-domain error rates plus the aggregated equality differences."""

    domain_names: list[str]
    fnr_overall: float
    fpr_overall: float
    fnr_per_domain: dict[str, float]
    fpr_per_domain: dict[str, float]
    fned: float
    fped: float

    @property
    def total(self) -> float:
        return self.fned + self.fped

    def as_dict(self) -> dict:
        return {
            "fnr_overall": self.fnr_overall,
            "fpr_overall": self.fpr_overall,
            "fnr_per_domain": dict(self.fnr_per_domain),
            "fpr_per_domain": dict(self.fpr_per_domain),
            "fned": self.fned,
            "fped": self.fped,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DomainBiasReport":
        """Rebuild a report serialised by :meth:`as_dict`.

        The serialised form carries no explicit ``domain_names`` entry (the
        schema predates this constructor and stays unchanged); the names are
        recovered from the key order of ``fnr_per_domain``, which
        :func:`domain_bias_report` populates in domain order for *every*
        domain, including empty ones.
        """
        try:
            fnr_per_domain = dict(payload["fnr_per_domain"])
            fpr_per_domain = dict(payload["fpr_per_domain"])
            report = cls(
                domain_names=list(fnr_per_domain),
                fnr_overall=float(payload["fnr_overall"]),
                fpr_overall=float(payload["fpr_overall"]),
                fnr_per_domain={k: float(v) for k, v in fnr_per_domain.items()},
                fpr_per_domain={k: float(v) for k, v in fpr_per_domain.items()},
                fned=float(payload["fned"]),
                fped=float(payload["fped"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"not a serialised DomainBiasReport: {error}") from error
        if set(report.fpr_per_domain) != set(report.fnr_per_domain):
            raise ValueError(
                "not a serialised DomainBiasReport: fnr_per_domain and "
                "fpr_per_domain cover different domains")
        return report

    def deviation(self, domain: str) -> float:
        """Per-domain bias deviation ``|FNR_d - FNR| + |FPR_d - FPR|``.

        The per-domain contribution to ``total``; the streaming
        :class:`repro.streaming.DriftMonitor` thresholds this to decide which
        domain degraded.
        """
        if domain not in self.fnr_per_domain:
            raise KeyError(f"unknown domain '{domain}'; report covers "
                           f"{list(self.fnr_per_domain)}")
        return (abs(self.fnr_per_domain[domain] - self.fnr_overall)
                + abs(self.fpr_per_domain[domain] - self.fpr_overall))


def domain_bias_report(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
                       domain_names: list[str]) -> DomainBiasReport:
    """Compute FNR/FPR per domain and the FNED/FPED equality differences."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    domains = np.asarray(domains)
    if not (y_true.shape == y_pred.shape == domains.shape):
        raise ValueError("y_true, y_pred and domains must have identical shapes")

    fnr_overall = false_negative_rate(y_true, y_pred)
    fpr_overall = false_positive_rate(y_true, y_pred)
    fnr_per_domain: dict[str, float] = {}
    fpr_per_domain: dict[str, float] = {}
    fned = 0.0
    fped = 0.0
    for index, name in enumerate(domain_names):
        mask = domains == index
        if not np.any(mask):
            fnr_per_domain[name] = 0.0
            fpr_per_domain[name] = 0.0
            continue
        domain_fnr = false_negative_rate(y_true[mask], y_pred[mask])
        domain_fpr = false_positive_rate(y_true[mask], y_pred[mask])
        fnr_per_domain[name] = domain_fnr
        fpr_per_domain[name] = domain_fpr
        fned += abs(fnr_overall - domain_fnr)
        fped += abs(fpr_overall - domain_fpr)
    return DomainBiasReport(
        domain_names=list(domain_names),
        fnr_overall=fnr_overall,
        fpr_overall=fpr_overall,
        fnr_per_domain=fnr_per_domain,
        fpr_per_domain=fpr_per_domain,
        fned=fned,
        fped=fped,
    )


def fned(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
         num_domains: int) -> float:
    """False-negative equality difference (Eq. 17)."""
    names = [str(i) for i in range(num_domains)]
    return domain_bias_report(y_true, y_pred, domains, names).fned


def fped(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
         num_domains: int) -> float:
    """False-positive equality difference (Eq. 16)."""
    names = [str(i) for i in range(num_domains)]
    return domain_bias_report(y_true, y_pred, domains, names).fped


def total_equality_difference(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
                              num_domains: int) -> float:
    """``FNED + FPED`` — the "Total" column of Tables VI-IX."""
    names = [str(i) for i in range(num_domains)]
    report = domain_bias_report(y_true, y_pred, domains, names)
    return report.total


def rolling_domain_bias(y_true: np.ndarray, y_pred: np.ndarray, domains: np.ndarray,
                        domain_names: list[str], window: int) -> DomainBiasReport:
    """Windowed :func:`domain_bias_report` over the trailing ``window`` rows.

    The inputs are full event histories in arrival order; only the most recent
    ``window`` events contribute, which is what an online monitor wants — old
    traffic must stop influencing the bias signal once the stream moves on.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    domains = np.asarray(domains)
    if not (y_true.shape == y_pred.shape == domains.shape):
        raise ValueError("y_true, y_pred and domains must have identical shapes")
    start = max(0, y_true.shape[0] - window)
    return domain_bias_report(y_true[start:], y_pred[start:], domains[start:],
                              domain_names)


def satisfies_disparate_mistreatment(report: DomainBiasReport, tolerance: float = 0.05) -> bool:
    """Definition 3: every pair of domains has |FNR_i - FNR_j| and |FPR_i - FPR_j| <= tolerance."""
    fnr_values = list(report.fnr_per_domain.values())
    fpr_values = list(report.fpr_per_domain.values())
    fnr_spread = max(fnr_values) - min(fnr_values) if fnr_values else 0.0
    fpr_spread = max(fpr_values) - min(fpr_values) if fpr_values else 0.0
    return fnr_spread <= tolerance and fpr_spread <= tolerance


__all__ = [
    "false_positive_rate", "false_negative_rate",
    "DomainBiasReport", "domain_bias_report", "rolling_domain_bias",
    "fned", "fped", "total_equality_difference",
    "satisfies_disparate_mistreatment",
    "REAL_LABEL", "FAKE_LABEL",
]
