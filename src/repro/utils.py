"""Small shared utilities: seeding, timing and batching helpers."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy random generator; every experiment threads one of these."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed (for sub-modules)."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def batched_indices(n: int, batch_size: int, rng: np.random.Generator | None = None,
                    shuffle: bool = True, drop_last: bool = False) -> Iterator[np.ndarray]:
    """Yield index batches over ``range(n)``.

    The epoch's index order is materialised exactly once; each yielded batch
    is a zero-copy view into that array rather than a per-batch allocation.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        rng.shuffle(order)
    full_batches, remainder = divmod(n, batch_size)
    stop = full_batches * batch_size if (drop_last and remainder) else n
    if stop <= 0:
        return
    yield from np.split(order[:stop], range(batch_size, stop, batch_size))


@contextmanager
def timer():
    """Context manager yielding a callable that returns elapsed seconds."""
    start = time.perf_counter()
    elapsed = {"seconds": 0.0}

    def read() -> float:
        return elapsed["seconds"] if elapsed["seconds"] else time.perf_counter() - start

    try:
        yield read
    finally:
        elapsed["seconds"] = time.perf_counter() - start


def moving_average(values: Sequence[float], window: int = 3) -> list[float]:
    """Simple trailing moving average used by training-history smoothing."""
    if window <= 0:
        raise ValueError("window must be positive")
    output: list[float] = []
    for index in range(len(values)):
        start = max(0, index - window + 1)
        chunk = values[start:index + 1]
        output.append(float(np.mean(chunk)))
    return output
