"""Small shared utilities: seeding, timing and batching helpers."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy random generator; every experiment threads one of these."""
    return np.random.default_rng(seed)


# --------------------------------------------------------------------------- #
# Experiment-wide seed (the fallback for components built without an rng)      #
# --------------------------------------------------------------------------- #
# Modules that take an optional generator (Dropout, the initialisers, shuffle
# helpers) used to fall back to an *unseeded* ``np.random.default_rng()``,
# which silently broke run-to-run reproducibility for any model built without
# an explicit rng.  They now draw from one process-wide stream seeded here;
# ``repro.experiments.runner.prepare_data`` installs the experiment's seed, so
# two identical runs see identical fallback randomness.  Explicitly threaded
# generators are unaffected.
_GLOBAL_SEED: int = 0
_FALLBACK_RNG: np.random.Generator = np.random.default_rng(0)


def set_global_seed(seed: int) -> int:
    """Install ``seed`` as the experiment-wide seed; returns the previous one.

    Resets the shared fallback stream, so everything built afterwards without
    an explicit generator is reproducible given the same construction order.
    """
    global _GLOBAL_SEED, _FALLBACK_RNG
    previous = _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    _FALLBACK_RNG = np.random.default_rng(_GLOBAL_SEED)
    return previous


def get_global_seed() -> int:
    """Return the currently installed experiment-wide seed."""
    return _GLOBAL_SEED


def fallback_rng() -> np.random.Generator:
    """The shared deterministic stream used when no generator is passed."""
    return _FALLBACK_RNG


def get_rng_state() -> dict:
    """JSON-serialisable state of the fallback stream (for training snapshots)."""
    return _FALLBACK_RNG.bit_generator.state


def set_rng_state(state: dict) -> None:
    """Restore the fallback stream to a state from :func:`get_rng_state`.

    Mutates the existing generator in place, so components that captured the
    generator object (rather than calling :func:`fallback_rng` per draw) see
    the restored stream too.
    """
    _FALLBACK_RNG.bit_generator.state = state


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed (for sub-modules)."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def batched_indices(n: int, batch_size: int, rng: np.random.Generator | None = None,
                    shuffle: bool = True, drop_last: bool = False) -> Iterator[np.ndarray]:
    """Yield index batches over ``range(n)``.

    The epoch's index order is materialised exactly once; each yielded batch
    is a zero-copy view into that array rather than a per-batch allocation.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        rng = rng if rng is not None else fallback_rng()
        rng.shuffle(order)
    full_batches, remainder = divmod(n, batch_size)
    stop = full_batches * batch_size if (drop_last and remainder) else n
    if stop <= 0:
        return
    yield from np.split(order[:stop], range(batch_size, stop, batch_size))


@contextmanager
def timer():
    """Context manager yielding a callable that returns elapsed seconds."""
    start = time.perf_counter()
    elapsed = {"seconds": 0.0}

    def read() -> float:
        return elapsed["seconds"] if elapsed["seconds"] else time.perf_counter() - start

    try:
        yield read
    finally:
        elapsed["seconds"] = time.perf_counter() - start


def moving_average(values: Sequence[float], window: int = 3) -> list[float]:
    """Simple trailing moving average used by training-history smoothing."""
    if window <= 0:
        raise ValueError("window must be positive")
    output: list[float] = []
    for index in range(len(values)):
        start = max(0, index - window + 1)
        chunk = values[start:index + 1]
        output.append(float(np.mean(chunk)))
    return output
