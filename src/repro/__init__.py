"""DTDBD reproduction: Dual-Teacher De-biasing Distillation for multi-domain fake news detection.

The package is organised as a stack:

* :mod:`repro.tensor` / :mod:`repro.nn` — NumPy autograd engine and NN library
  (substitute for PyTorch in this offline environment).
* :mod:`repro.data` — synthetic multi-domain news corpora mirroring the
  Weibo21 and FakeNewsNet+COVID statistics, vocabularies and data loaders.
* :mod:`repro.encoders` — frozen pre-trained-encoder stand-in and handcrafted
  style / emotion features.
* :mod:`repro.models` — the baseline model zoo (TextCNN, BiGRU, EANN, EDDFN,
  MDFEND, M3FEND, ...) and the student networks.
* :mod:`repro.core` — the paper's contribution: adversarial de-biasing
  distillation, domain knowledge distillation, DAT-IE training and the
  momentum-based dynamic adjustment, wrapped in :class:`repro.core.DTDBDTrainer`.
* :mod:`repro.metrics` — F1 and the domain-bias metrics (FNED / FPED / Total).
* :mod:`repro.analysis` / :mod:`repro.experiments` — t-SNE, case studies and
  the table/figure reproduction harness.
* :mod:`repro.serve` — the consumer-facing inference layer: bundled pipeline
  artifacts (weights + vocab + tokenizer/encoder specs + config + dtype), a
  raw-text :class:`~repro.serve.Predictor` and dynamic micro-batching.
* :mod:`repro.reliability` — deterministic fault injection, seeded retries
  and atomic checksummed I/O backing crash-resumable training and
  graceful-degradation serving.
"""

from repro._version import __version__

__all__ = ["__version__"]
