"""Loss modules wrapping the functional losses."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, functional as F
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy on integer class labels, with optional class weights."""

    def __init__(self, class_weights: np.ndarray | None = None):
        super().__init__()
        self.class_weights = None if class_weights is None else np.asarray(class_weights, float)

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        sample_weights = None
        if self.class_weights is not None:
            sample_weights = self.class_weights[np.asarray(targets, dtype=np.int64)]
        return F.cross_entropy(logits, targets, weights=sample_weights)


class BCEWithLogitsLoss(Module):
    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets)


class MSELoss(Module):
    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target)


class KLDistillationLoss(Module):
    """Temperature-scaled KL distillation loss ``tau^2 KL(teacher || student)``.

    Shared by the domain knowledge distillation (Eq. 12) and, applied to
    sample-correlation matrices instead of logits, the adversarial de-biasing
    distillation (Eq. 6).
    """

    def __init__(self, temperature: float = 1.0):
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, student_logits: Tensor, teacher_logits: Tensor) -> Tensor:
        return F.distillation_kl(student_logits, teacher_logits, temperature=self.temperature)
