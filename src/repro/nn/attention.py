"""Attention pooling used by the multi-expert models (MDFEND / M3FEND)."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, functional as F, fused
from repro.tensor.tensor import _wrap
from repro.nn.layers import Linear
from repro.nn.module import Module


class AttentionPooling(Module):
    """Additive attention pooling over ``(batch, seq, features)``.

    Each time step is scored by a small MLP; a masked softmax turns the scores
    into weights and the output is the weighted sum of the step features.  The
    score -> masked-softmax -> weighted-sum chain runs as a single fused node
    (:func:`repro.tensor.fused.attention_pooling`) unless fusion is globally
    disabled; ``pool_composed`` is the ground truth for its parity tests.

    Masked positions receive a large-negative *additive* penalty computed in
    the scores' own dtype (float32-safe; see
    :func:`repro.tensor.fused.attention_mask_penalty`), so their weights
    underflow to exactly zero.  A fully-masked row degrades gracefully: every
    score gets the same offset, so the softmax reduces to the softmax of the
    raw (unmasked) scores instead of producing NaNs.
    """

    def __init__(self, input_dim: int, hidden_dim: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.score_hidden = Linear(input_dim, hidden_dim, rng=rng)
        self.score_out = Linear(hidden_dim, 1, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        scores = self.score_out(self.score_hidden(x).tanh())  # (batch, seq, 1)
        scores = scores.squeeze(2)
        if fused.is_fused_enabled():
            return fused.attention_pooling(x, scores, mask=mask)
        return self.pool_composed(x, scores, mask=mask)

    @staticmethod
    def pool_composed(x: Tensor, scores: Tensor,
                      mask: np.ndarray | None = None) -> Tensor:
        """Composed masked-softmax pooling (ground truth for the fused kernel)."""
        if mask is not None:
            penalty = fused.attention_mask_penalty(mask, scores.data.dtype)
            # _wrap keeps the penalty in the scores' dtype; Tensor() would
            # coerce it to the *default* dtype and upcast a float32 model.
            scores = scores + _wrap(penalty)
        weights = F.softmax(scores, axis=1).unsqueeze(2)
        return (x * weights).sum(axis=1)


class ExpertGate(Module):
    """Softmax gate producing mixture weights over ``num_experts`` experts.

    MDFEND feeds the domain embedding (and optionally a sentence summary) into
    the gate; MMoE/MoSE feed only the input summary.
    """

    def __init__(self, input_dim: int, num_experts: int, hidden_dim: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden = Linear(input_dim, hidden_dim, rng=rng)
        self.out = Linear(hidden_dim, num_experts, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(self.out(self.hidden(x).relu()), axis=-1)
