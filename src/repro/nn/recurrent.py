"""Recurrent layers: GRU / LSTM cells and (bi-)directional sequence encoders.

The BiGRU baseline, BiGRU-S student, StyleLSTM and MoSE expert networks in the
paper are built from these blocks.  Sequences are ``(batch, seq, features)``;
the encoders return both the per-step hidden states and the final state so
models can choose max/mean pooling or last-state readout.

On the fused fast path (the default) the encoders dispatch to the
whole-sequence scan kernels — thin wrappers over the N-lane core
:func:`repro.tensor.fused.lane_scan`: one graph node per encoder pass instead
of one fused node per time step, with the input-side gate projections batched
into a single GEMM.  :func:`lstm_expert_scan` exposes the expert-lane form
(N recurrences over the same input in one scan) used by MoSE.  The per-step cell loop remains as ``forward_composed`` —
it is the gradient-parity ground truth for the scan kernels and the baseline
for the perf benchmarks.  Both paths accept an optional 0/1 ``mask``
(``(batch, seq)``): masked positions carry the previous state through, so
padded steps contribute nothing to the states or the gradients, and the final
state of a trailing-padded row is the state at its last valid token.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, fused, get_default_dtype, init
from repro.nn.module import Module


class GRUCell(Module):
    """Single gated-recurrent-unit step.

    Runs as one fused graph node per step (see :func:`repro.tensor.fused.gru_step`)
    unless fusion is globally disabled, in which case the composed primitive
    chain below is used (it is the ground truth for the fused kernel's
    gradient-parity tests).
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_ih = init.xavier_uniform((input_dim, 3 * hidden_dim), rng=rng)
        self.weight_hh = init.xavier_uniform((hidden_dim, 3 * hidden_dim), rng=rng)
        self.bias = init.zeros((3 * hidden_dim,))

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        if fused.is_fused_enabled():
            return fused.gru_step(x, hidden, self.weight_ih, self.weight_hh, self.bias)
        return self.forward_composed(x, hidden)

    def forward_composed(self, x: Tensor, hidden: Tensor) -> Tensor:
        gates_x = x @ self.weight_ih + self.bias
        gates_h = hidden @ self.weight_hh
        h = self.hidden_dim
        reset = (gates_x[:, :h] + gates_h[:, :h]).sigmoid()
        update = (gates_x[:, h:2 * h] + gates_h[:, h:2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h:] + reset * gates_h[:, 2 * h:]).tanh()
        return update * hidden + (1.0 - update) * candidate


class LSTMCell(Module):
    """Single long short-term memory step.

    Fused into a two-node ``(hidden, cell)`` pair per step (see
    :func:`repro.tensor.fused.lstm_step`) unless fusion is globally disabled.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_ih = init.xavier_uniform((input_dim, 4 * hidden_dim), rng=rng)
        self.weight_hh = init.xavier_uniform((hidden_dim, 4 * hidden_dim), rng=rng)
        self.bias = init.zeros((4 * hidden_dim,))

    def forward(self, x: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        if fused.is_fused_enabled():
            return fused.lstm_step(x, hidden, cell, self.weight_ih, self.weight_hh,
                                   self.bias)
        return self.forward_composed(x, hidden, cell)

    def forward_composed(self, x: Tensor, hidden: Tensor, cell: Tensor) -> tuple[Tensor, Tensor]:
        gates = x @ self.weight_ih + hidden @ self.weight_hh + self.bias
        h = self.hidden_dim
        input_gate = gates[:, :h].sigmoid()
        forget_gate = gates[:, h:2 * h].sigmoid()
        candidate = gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[:, 3 * h:].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


def _zero_state(batch: int, hidden_dim: int, dtype=None) -> Tensor:
    if dtype is None:
        dtype = get_default_dtype()
    return Tensor(np.zeros((batch, hidden_dim), dtype=dtype))


def lstm_expert_scan(experts, x: Tensor, mask=None) -> Tensor:
    """Run N unidirectional LSTM experts over the same input in ONE scan node.

    ``experts`` is a sequence of unidirectional :class:`LSTM` encoders that
    all read ``x`` (``(batch, seq, features)``); each becomes one lane of
    :func:`repro.tensor.fused.lane_scan`, so the whole mixture advances in a
    single time loop (one batched ``(N, B, H) @ (N, H, 4H)`` matmul per step)
    instead of N sequential :func:`repro.tensor.fused.lstm_scan` calls.
    Returns the lane-concatenated states ``(batch, seq, N * hidden)`` with
    expert ``n`` in the feature block ``[n*H : (n+1)*H]``; with a ``mask``,
    ``states[:, -1]`` holds each expert's state at the row's last valid token
    (identical semantics to calling each expert separately).
    """
    experts = list(experts)
    if any(getattr(e, "bidirectional", False) for e in experts):
        raise ValueError("lstm_expert_scan requires unidirectional experts")
    cells = [e.forward_cell for e in experts]
    batch = x.shape[0]

    def zero_states():
        return [_zero_state(batch, cell.hidden_dim, dtype=cell.weight_ih.data.dtype)
                for cell in cells]

    return fused.lane_scan(
        "lstm", x, zero_states(), zero_states(),
        [cell.weight_ih for cell in cells], [cell.weight_hh for cell in cells],
        [cell.bias for cell in cells], mask=mask)


def _masked_step(new_state: Tensor, old_state: Tensor, mask, step: int) -> Tensor:
    """Carry ``old_state`` through positions where ``mask[:, step]`` is 0."""
    if mask is None:
        return new_state
    keep = np.asarray(mask)[:, step].astype(bool)
    return Tensor.where(keep[:, None], new_state, old_state)


class GRU(Module):
    """Uni- or bi-directional GRU sequence encoder.

    On the fused path each direction runs as one whole-sequence
    :func:`repro.tensor.fused.gru_scan` node (O(1) graph nodes in sequence
    length); ``forward_composed`` keeps the per-step cell loop as ground truth.
    """

    def __init__(self, input_dim: int, hidden_dim: int, bidirectional: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.bidirectional = bidirectional
        self.forward_cell = GRUCell(input_dim, hidden_dim, rng=rng)
        if bidirectional:
            self.backward_cell = GRUCell(input_dim, hidden_dim, rng=rng)

    @property
    def output_dim(self) -> int:
        return self.hidden_dim * (2 if self.bidirectional else 1)

    def forward(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        """Return ``(states, final)``: per-step states and the final state."""
        if fused.is_fused_enabled():
            return self.forward_scan(x, mask=mask)
        return self.forward_composed(x, mask=mask)

    def forward_scan(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        cell = self.forward_cell
        h0 = _zero_state(batch, self.hidden_dim, dtype=cell.weight_ih.data.dtype)
        if not self.bidirectional:
            states = fused.gru_scan(x, h0, cell.weight_ih, cell.weight_hh,
                                    cell.bias, mask=mask)
            return states, states[:, -1, :]
        back = self.backward_cell
        states = fused.gru_bidir_scan(
            x, h0, _zero_state(batch, self.hidden_dim,
                               dtype=back.weight_ih.data.dtype),
            cell.weight_ih, cell.weight_hh, cell.bias,
            back.weight_ih, back.weight_hh, back.bias, mask=mask)
        # Forward final: last step of the forward half; backward final: first
        # step of the backward half (mask carry makes both the last *valid*).
        final = Tensor.cat([states[:, -1, :self.hidden_dim],
                            states[:, 0, self.hidden_dim:]], axis=1)
        return states, final

    def forward_composed(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        forward_states = []
        state = _zero_state(batch, self.hidden_dim)
        for step in range(seq_len):
            state = _masked_step(self.forward_cell(x[:, step, :], state),
                                 state, mask, step)
            forward_states.append(state)
        if not self.bidirectional:
            stacked = Tensor.stack(forward_states, axis=1)
            return stacked, forward_states[-1]
        backward_states = []
        state = _zero_state(batch, self.hidden_dim)
        for step in reversed(range(seq_len)):
            state = _masked_step(self.backward_cell(x[:, step, :], state),
                                 state, mask, step)
            backward_states.append(state)
        backward_states.reverse()
        merged = [Tensor.cat([f, b], axis=1)
                  for f, b in zip(forward_states, backward_states)]
        stacked = Tensor.stack(merged, axis=1)
        final = Tensor.cat([forward_states[-1], backward_states[0]], axis=1)
        return stacked, final


class LSTM(Module):
    """Uni- or bi-directional LSTM sequence encoder.

    Same structure as :class:`GRU`: one :func:`repro.tensor.fused.lstm_scan`
    node per direction on the fused path, per-step cells as ground truth.
    """

    def __init__(self, input_dim: int, hidden_dim: int, bidirectional: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden_dim = hidden_dim
        self.bidirectional = bidirectional
        self.forward_cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        if bidirectional:
            self.backward_cell = LSTMCell(input_dim, hidden_dim, rng=rng)

    @property
    def output_dim(self) -> int:
        return self.hidden_dim * (2 if self.bidirectional else 1)

    def forward(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        if fused.is_fused_enabled():
            return self.forward_scan(x, mask=mask)
        return self.forward_composed(x, mask=mask)

    def forward_scan(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        cell = self.forward_cell
        dtype = cell.weight_ih.data.dtype
        if not self.bidirectional:
            states = fused.lstm_scan(
                x, _zero_state(batch, self.hidden_dim, dtype=dtype),
                _zero_state(batch, self.hidden_dim, dtype=dtype),
                cell.weight_ih, cell.weight_hh, cell.bias, mask=mask)
            return states, states[:, -1, :]
        back = self.backward_cell
        states = fused.lstm_bidir_scan(
            x, _zero_state(batch, self.hidden_dim, dtype=dtype),
            _zero_state(batch, self.hidden_dim, dtype=dtype),
            _zero_state(batch, self.hidden_dim, dtype=dtype),
            _zero_state(batch, self.hidden_dim, dtype=dtype),
            cell.weight_ih, cell.weight_hh, cell.bias,
            back.weight_ih, back.weight_hh, back.bias, mask=mask)
        final = Tensor.cat([states[:, -1, :self.hidden_dim],
                            states[:, 0, self.hidden_dim:]], axis=1)
        return states, final

    def forward_composed(self, x: Tensor, mask=None) -> tuple[Tensor, Tensor]:
        batch, seq_len, _ = x.shape
        forward_states = []
        hidden = _zero_state(batch, self.hidden_dim)
        cell = _zero_state(batch, self.hidden_dim)
        for step in range(seq_len):
            new_hidden, new_cell = self.forward_cell(x[:, step, :], hidden, cell)
            hidden = _masked_step(new_hidden, hidden, mask, step)
            cell = _masked_step(new_cell, cell, mask, step)
            forward_states.append(hidden)
        if not self.bidirectional:
            stacked = Tensor.stack(forward_states, axis=1)
            return stacked, forward_states[-1]
        backward_states = []
        hidden = _zero_state(batch, self.hidden_dim)
        cell = _zero_state(batch, self.hidden_dim)
        for step in reversed(range(seq_len)):
            new_hidden, new_cell = self.backward_cell(x[:, step, :], hidden, cell)
            hidden = _masked_step(new_hidden, hidden, mask, step)
            cell = _masked_step(new_cell, cell, mask, step)
            backward_states.append(hidden)
        backward_states.reverse()
        merged = [Tensor.cat([f, b], axis=1)
                  for f, b in zip(forward_states, backward_states)]
        stacked = Tensor.stack(merged, axis=1)
        final = Tensor.cat([forward_states[-1], backward_states[0]], axis=1)
        return stacked, final
