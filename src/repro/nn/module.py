"""Base :class:`Module` with parameter registration, modes and state dicts.

This is the PyTorch-style container abstraction that every layer and model in
the reproduction inherits from.  Parameters are plain :class:`repro.tensor.Tensor`
objects with ``requires_grad=True``; sub-modules and parameters assigned as
attributes are registered automatically, which gives us recursive
``parameters()``, ``train()/eval()``, ``state_dict()`` and ``load_state_dict()``
for free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration                                                        #
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif name in getattr(self, "_parameters", {}):
            del self._parameters[name]
        elif name in getattr(self, "_modules", {}):
            del self._modules[name]
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, tensor: Tensor) -> None:
        """Explicitly register ``tensor`` as a trainable parameter."""
        if not tensor.requires_grad:
            tensor.requires_grad = True
        self._parameters[name] = tensor
        object.__setattr__(self, name, tensor)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Store a non-trainable array on the module (e.g. frozen embeddings)."""
        object.__setattr__(self, name, np.asarray(value))

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Tensor]:
        """Return all trainable parameters of this module and its children."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, tensor in self._parameters.items():
            if tensor.requires_grad:
                yield (f"{prefix}{name}", tensor)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Modes and gradients                                                 #
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def freeze(self) -> "Module":
        """Stop gradient flow into every parameter (used for frozen teachers)."""
        for parameter in self.parameters():
            parameter.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for _, parameter in self._all_parameters_even_frozen():
            parameter.requires_grad = True
        return self

    def astype(self, dtype) -> "Module":
        """Cast every parameter (including frozen ones) to ``dtype`` in place.

        Together with :func:`repro.tensor.set_default_dtype` this moves an
        existing model between float64 and float32 compute.
        """
        resolved = np.dtype(dtype)
        for _, parameter in self._all_parameters_even_frozen():
            if parameter.data.dtype != resolved:
                parameter.data = parameter.data.astype(resolved)
            if parameter.grad is not None and parameter.grad.dtype != resolved:
                parameter.grad = parameter.grad.astype(resolved)
        return self

    def _all_parameters_even_frozen(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, tensor in self._parameters.items():
            yield (f"{prefix}{name}", tensor)
        for child_name, child in self._modules.items():
            yield from child._all_parameters_even_frozen(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # Serialisation                                                       #
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a flat name → array mapping of all parameters (copies)."""
        state = OrderedDict()
        for name, tensor in self._all_parameters_even_frozen():
            state[name] = tensor.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self._all_parameters_even_frozen())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, tensor in own.items():
            if name not in state:
                continue
            array = np.asarray(state[name], dtype=tensor.data.dtype)
            if array.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {tensor.data.shape}, got {array.shape}")
            tensor.data = array.copy()

    # ------------------------------------------------------------------ #
    # Calling                                                             #
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.add_module(name, module)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """List-like container that registers its entries as sub-modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._order: list[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        name = f"item{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self):
        return (self._modules[name] for name in self._order)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")
