"""Gradient reversal layer for domain adversarial training (Ganin, 2015).

During the forward pass the layer is the identity; during the backward pass it
multiplies the incoming gradient by ``-lambda``.  This is the mechanism behind
DANN, EANN's event discriminator, EDDFN's domain adversary, and the unbiased
teacher's DAT / DAT-IE training in the DTDBD paper.
"""

from __future__ import annotations

from repro.tensor import Tensor
from repro.nn.module import Module


def gradient_reversal(x: Tensor, coefficient: float = 1.0) -> Tensor:
    """Identity forward, ``-coefficient``-scaled gradient backward."""
    out = Tensor(x.data, requires_grad=x.requires_grad)

    def backward(grad):
        if x.requires_grad:
            x._accumulate_grad(-coefficient * grad)

    if out.requires_grad:
        out._prev = (x,)
        out._backward = backward
    return out


class GradientReversal(Module):
    """Module wrapper around :func:`gradient_reversal` with adjustable strength."""

    def __init__(self, coefficient: float = 1.0):
        super().__init__()
        self.coefficient = coefficient

    def set_coefficient(self, coefficient: float) -> None:
        self.coefficient = float(coefficient)

    def forward(self, x: Tensor) -> Tensor:
        return gradient_reversal(x, self.coefficient)
