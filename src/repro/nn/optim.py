"""Gradient-descent optimisers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


class Optimizer:
    """Base class: holds a parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            # In-place bias-corrected update: denom = sqrt(v / bias2) + eps
            denom = np.sqrt(v / bias2)
            denom += self.eps
            denom /= self.lr / bias1  # fold step size into the divisor
            parameter.data -= m / denom


class GradientClipper:
    """Clip the global L2 norm of gradients before an optimiser step."""

    def __init__(self, max_norm: float = 5.0):
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def clip(self, parameters: list[Tensor]) -> float:
        grads = [p.grad for p in parameters if p.grad is not None]
        if not grads:
            return 0.0
        total = float(np.sqrt(sum(float(np.dot(g.ravel(), g.ravel())) for g in grads)))
        if total > self.max_norm and total > 0:
            scale = self.max_norm / total
            for parameter in parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return total


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
