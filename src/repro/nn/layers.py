"""Dense, embedding and normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, functional as F, fused, init
from repro.nn.module import Module, Sequential


class Linear(Module):
    """Fully-connected layer ``y = x W + b``.

    Uses the fused single-node kernel from :mod:`repro.tensor.fused` unless
    fusion is globally disabled, in which case it falls back to the composed
    ``matmul`` + ``add`` primitive chain.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng=rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if fused.is_fused_enabled():
            return fused.linear(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Trainable token-embedding table.

    Lookups dispatch through :func:`repro.tensor.functional.embedding`, which
    routes to the single-node fused gather/scatter kernel when fusion is
    enabled (the default).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 padding_idx: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = init.normal((num_embeddings, embedding_dim), std=0.1, rng=rng)
        if padding_idx is not None:
            self.weight.data[padding_idx] = 0.0

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout with a module-local random generator.

    Without an explicit ``rng`` the layer draws from the experiment-wide
    fallback stream (see :func:`repro.utils.set_global_seed`) instead of an
    unseeded generator, so same-seed runs stay reproducible even for models
    built without threading a generator through.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    One fused graph node (:func:`repro.tensor.fused.layer_norm`) unless fusion
    is globally disabled; ``forward_composed`` keeps the primitive chain as the
    ground truth for the fused kernel's parity tests.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = init.ones((normalized_shape,))
        self.bias = init.zeros((normalized_shape,))

    def forward(self, x: Tensor) -> Tensor:
        if fused.is_fused_enabled():
            return fused.layer_norm(x, self.weight, self.bias, eps=self.eps)
        return self.forward_composed(x)

    def forward_composed(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * ((variance + self.eps) ** -0.5)
        return normalised * self.weight + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid, "gelu": GELU}


class MLP(Module):
    """Multi-layer perceptron used as classification head throughout the paper.

    ``dims`` includes the input dimension and every hidden dimension; the final
    projection to ``output_dim`` has no activation, matching the usual
    logits-producing head.
    """

    def __init__(self, dims: list[int], output_dim: int, dropout: float = 0.2,
                 activation: str = "relu", rng: np.random.Generator | None = None):
        super().__init__()
        if len(dims) < 1:
            raise ValueError("dims must contain at least the input dimension")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation '{activation}'")
        layers: list[Module] = []
        for in_dim, out_dim in zip(dims[:-1], dims[1:]):
            layers.append(Linear(in_dim, out_dim, rng=rng))
            layers.append(_ACTIVATIONS[activation]())
            layers.append(Dropout(dropout, rng=rng))
        layers.append(Linear(dims[-1], output_dim, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
