"""1-D convolution over token sequences and the TextCNN encoder block.

The paper's student (TextCNN-S / TextCNN-U) and the MDFEND expert networks all
use the classic Kim (2014) TextCNN: several parallel 1-D convolutions with
different kernel sizes, ReLU, and global max-pooling over time, concatenated
into a single feature vector.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, fused, init
from repro.nn.module import Module, ModuleList


class Conv1d(Module):
    """Valid 1-D convolution over the time axis of ``(batch, seq, channels)``.

    The fast path is a fused kernel whose unfold is a zero-copy ``as_strided``
    view (:func:`repro.tensor.fused.conv1d`); with fusion disabled it falls
    back to the composed unfold (one window copy per kernel offset followed by
    a concatenation) that the fused kernel is parity-tested against.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.weight = init.xavier_uniform((kernel_size * in_channels, out_channels), rng=rng)
        self.bias = init.zeros((out_channels,))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq_len, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {channels}")
        if seq_len < self.kernel_size:
            raise ValueError(
                f"sequence length {seq_len} shorter than kernel size {self.kernel_size}")
        if fused.is_fused_enabled():
            return fused.conv1d(x, self.weight, self.bias, self.kernel_size)
        out_len = seq_len - self.kernel_size + 1
        windows = [x[:, offset:offset + out_len, :] for offset in range(self.kernel_size)]
        unfolded = Tensor.cat(windows, axis=2)  # (batch, out_len, k * in_channels)
        return unfolded @ self.weight + self.bias


class GlobalMaxPool1d(Module):
    """Max over the time axis of ``(batch, seq, channels)``.

    The fused kernel routes the gradient to the argmax position (first winner
    on ties); the composed ``Tensor.max`` splits exact ties evenly.  On the
    continuous activations this pool sees, ties have probability zero.
    """

    def forward(self, x: Tensor) -> Tensor:
        if fused.is_fused_enabled():
            return fused.max_pool1d(x)
        return x.max(axis=1)


class GlobalMeanPool1d(Module):
    """Mean over the time axis of ``(batch, seq, channels)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=1)


class TextCNNEncoder(Module):
    """Parallel multi-kernel convolutional text encoder (Kim, 2014).

    Produces a fixed-size vector of ``len(kernel_sizes) * channels`` features
    from a ``(batch, seq, embed_dim)`` sequence of token representations.
    """

    def __init__(self, embed_dim: int, kernel_sizes: tuple[int, ...] = (1, 2, 3, 5),
                 channels: int = 64, rng: np.random.Generator | None = None):
        super().__init__()
        self.kernel_sizes = tuple(kernel_sizes)
        self.channels = channels
        self.convolutions = ModuleList(
            [Conv1d(embed_dim, channels, k, rng=rng) for k in self.kernel_sizes])
        self.pool = GlobalMaxPool1d()

    @property
    def output_dim(self) -> int:
        return len(self.kernel_sizes) * self.channels

    def forward(self, x: Tensor) -> Tensor:
        if fused.is_fused_enabled():
            # max and relu commute (both monotone, relu(0)=0), so pooling
            # before the relu yields identical values and gradients while
            # never materialising the (batch, out_len, channels) relu map.
            pooled = [fused.max_pool1d(conv(x)).relu() for conv in self.convolutions]
        else:
            pooled = [self.pool(conv(x).relu()) for conv in self.convolutions]
        return Tensor.cat(pooled, axis=1)
