"""Neural-network layers, losses and optimisers on the NumPy autograd engine."""

from repro.nn.module import Module, ModuleList, Sequential
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.conv import Conv1d, GlobalMaxPool1d, GlobalMeanPool1d, TextCNNEncoder
from repro.nn.recurrent import GRU, GRUCell, LSTM, LSTMCell, lstm_expert_scan
from repro.nn.attention import AttentionPooling, ExpertGate
from repro.nn.grl import GradientReversal, gradient_reversal
from repro.nn.losses import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    KLDistillationLoss,
    MSELoss,
)
from repro.nn.optim import SGD, Adam, GradientClipper, Optimizer, StepLR
from repro.nn.serialization import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_metadata,
    save_checkpoint,
)

__all__ = [
    "Module", "ModuleList", "Sequential",
    "Linear", "Embedding", "Dropout", "LayerNorm", "MLP",
    "ReLU", "Tanh", "Sigmoid", "GELU",
    "Conv1d", "GlobalMaxPool1d", "GlobalMeanPool1d", "TextCNNEncoder",
    "GRU", "GRUCell", "LSTM", "LSTMCell", "lstm_expert_scan",
    "AttentionPooling", "ExpertGate",
    "GradientReversal", "gradient_reversal",
    "CrossEntropyLoss", "BCEWithLogitsLoss", "MSELoss", "KLDistillationLoss",
    "Optimizer", "SGD", "Adam", "GradientClipper", "StepLR",
    "save_checkpoint", "load_checkpoint", "read_checkpoint_metadata",
    "CheckpointError", "CHECKPOINT_FORMAT_VERSION",
]
