"""Saving and loading model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Write a module's full state dict to ``path`` (``.npz`` format)."""
    state = module.state_dict()
    # npz keys cannot be empty; parameter names are always non-empty here.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str | os.PathLike, strict: bool = True) -> None:
    """Load a state dict saved by :func:`save_checkpoint` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state, strict=strict)
