"""Saving and loading model state dicts as ``.npz`` archives.

Checkpoints written since the serving PR carry a *versioned header* — a JSON
document stored under the reserved ``CHECKPOINT_META_KEY`` archive entry with
the format version, the dtype the parameters were saved in and every
parameter's shape.  Since the reliability PR the header also records a
per-parameter SHA-256 checksum, the archive is written atomically (temp file
+ fsync + ``os.replace`` via :mod:`repro.reliability.durable`) and loading
verifies every checksum — so a crash mid-save never leaves a truncated
checkpoint behind, and a corrupted one is refused with a readable
:class:`CheckpointError` naming the damaged parameters instead of a raw
``zipfile``/NumPy traceback.  Legacy archives (plain ``np.savez`` of the
state dict, as written by PR-1-era ``save_checkpoint``) have no header and
keep loading exactly as before.

Reads go through a short transient-error retry
(:func:`repro.reliability.default_read_policy`); corruption is *not* retried
— it is permanent, and the diagnostic should arrive immediately.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from repro._version import __version__
from repro.nn.module import Module
from repro.reliability.durable import atomic_writer, sha256_bytes
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, default_read_policy

#: Reserved archive key holding the JSON header; never a valid parameter name
#: (parameter names are dotted attribute paths).
CHECKPOINT_META_KEY = "__repro_checkpoint__"

#: Bump when the archive layout changes incompatibly.  Loaders accept every
#: version up to and including their own.  Version 1 archives may additionally
#: carry a ``checksums`` header field (added by the reliability PR; verified
#: when present, so pre-checksum version-1 archives still load).
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint cannot be loaded into the receiving module.

    Subclasses :class:`ValueError` so pre-header callers that caught the raw
    shape-mismatch ``ValueError`` keep working.
    """


def checkpoint_metadata(module: Module, state: dict | None = None) -> dict:
    """The header :func:`save_checkpoint` writes for ``module``.

    Pass the already-built ``state`` dict to avoid a second full parameter
    copy (``Module.state_dict`` copies every array).
    """
    if state is None:
        state = module.state_dict()
    dtypes = sorted({str(array.dtype) for array in state.values()})
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "repro_version": __version__,
        "dtype": dtypes[0] if len(dtypes) == 1 else dtypes,
        "parameters": {name: list(array.shape) for name, array in state.items()},
        "checksums": {name: sha256_bytes(np.ascontiguousarray(array).tobytes())
                      for name, array in state.items()},
    }


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Atomically write a module's state dict plus the versioned header.

    The archive lands via temp-file + fsync + ``os.replace``: a crash at any
    point leaves either the previous checkpoint or the complete new one.
    """
    state = module.state_dict()
    # npz keys cannot be empty; parameter names are always non-empty here.
    # The header is stored as a 0-d unicode array: loadable without pickle.
    meta = np.array(json.dumps(checkpoint_metadata(module, state)))
    with atomic_writer(path, "wb") as handle:
        np.savez(handle, **{CHECKPOINT_META_KEY: meta}, **state)


def _read_archive(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load every entry of the archive, translating low-level failures.

    ``np.load`` surfaces truncation and zip-structure damage as a zoo of
    ``zipfile.BadZipFile`` / ``ValueError`` / ``OSError`` / ``EOFError``
    exceptions; all become :class:`CheckpointError` with the path named.
    ``OSError`` (other than not-found) is left for the retry policy.
    """
    fault_point("io.read", path=os.fspath(path), kind="checkpoint")
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at '{os.fspath(path)}'") from None
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError) as error:
        raise CheckpointError(
            f"checkpoint '{os.fspath(path)}' is corrupt or truncated and cannot "
            f"be read ({type(error).__name__}: {error}); restore it from a "
            "backup or re-export the model") from error


def _load_entries(path: str | os.PathLike,
                  retry: RetryPolicy | None = None) -> dict[str, np.ndarray]:
    policy = retry if retry is not None else default_read_policy()
    return policy.call(_read_archive, path)


def read_checkpoint_metadata(path: str | os.PathLike,
                             retry: RetryPolicy | None = None) -> dict | None:
    """Return the header of the archive at ``path`` (``None`` for legacy files)."""
    entries = _load_entries(path, retry)
    if CHECKPOINT_META_KEY not in entries:
        return None
    return _parse_header(entries[CHECKPOINT_META_KEY], path)


def _parse_header(meta_entry: np.ndarray, path: str | os.PathLike) -> dict:
    try:
        return json.loads(str(meta_entry[()]))
    except ValueError as error:
        raise CheckpointError(
            f"checkpoint '{os.fspath(path)}' has an unreadable header "
            f"({error}); the archive is corrupt") from error


def _validate_header(meta: dict, module: Module, path: str) -> None:
    version = meta.get("format_version")
    if not isinstance(version, int) or version > CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint '{path}' has format version {version!r}, but this build "
            f"only understands versions <= {CHECKPOINT_FORMAT_VERSION}; "
            "upgrade the repro package to load it")
    saved_shapes = {name: tuple(shape)
                    for name, shape in meta.get("parameters", {}).items()}
    own_shapes = {name: tensor.data.shape
                  for name, tensor in module._all_parameters_even_frozen()}
    mismatched = [
        f"  {name}: checkpoint {saved_shapes[name]} vs model {own_shapes[name]}"
        for name in sorted(set(saved_shapes) & set(own_shapes))
        if saved_shapes[name] != own_shapes[name]
    ]
    if mismatched:
        raise CheckpointError(
            f"checkpoint '{path}' does not fit {type(module).__name__}: "
            "parameter shapes differ (was the model built with a different "
            "ModelConfig?)\n" + "\n".join(mismatched))


def _verify_checksums(meta: dict, state: dict[str, np.ndarray], path: str) -> None:
    recorded = meta.get("checksums")
    if not isinstance(recorded, dict):
        return  # pre-checksum version-1 archive
    damaged = [
        name for name, digest in recorded.items()
        if name in state
        and sha256_bytes(np.ascontiguousarray(state[name]).tobytes()) != digest
    ]
    if damaged:
        raise CheckpointError(
            f"checkpoint '{path}' failed checksum verification for "
            f"{len(damaged)} parameter(s): {sorted(damaged)}; the file is "
            "corrupt — restore it from a backup or re-export the model")


def load_checkpoint(module: Module, path: str | os.PathLike, strict: bool = True,
                    dtype=None, retry: RetryPolicy | None = None) -> None:
    """Load a state dict saved by :func:`save_checkpoint` into ``module``.

    Checkpoints are dtype-portable: arrays are cast to each parameter's
    current dtype on load, so a float64-trained checkpoint can be loaded into
    a float32 model (and vice versa).  Pass ``dtype`` to additionally cast the
    whole module first.

    Versioned archives are validated against the module before any parameter
    is touched: shape mismatches raise :class:`CheckpointError` naming every
    offending parameter, archives from a newer format version are refused,
    and recorded per-parameter SHA-256 checksums are verified — a single
    corrupted byte is detected and refused with a readable diagnostic.
    Legacy (header-less) archives load exactly as before.  Transient read
    errors are retried under ``retry`` (default:
    :func:`repro.reliability.default_read_policy`).

    Casting parameters alone does not move *compute* to that dtype: batch
    features, masks and zero states are created under the global policy, and
    NumPy promotes mixed inputs upward.  To actually serve a float64-trained
    model on the float32 fast path, also set the policy::

        set_default_dtype("float32")            # activations
        load_checkpoint(model, path, dtype="float32")   # parameters
    """
    if dtype is not None:
        module.astype(dtype)
    state = _load_entries(path, retry)
    meta_entry = state.pop(CHECKPOINT_META_KEY, None)
    if meta_entry is not None:
        meta = _parse_header(meta_entry, path)
        _validate_header(meta, module, os.fspath(path))
        _verify_checksums(meta, state, os.fspath(path))
    module.load_state_dict(state, strict=strict)
