"""Saving and loading model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Write a module's full state dict to ``path`` (``.npz`` format)."""
    state = module.state_dict()
    # npz keys cannot be empty; parameter names are always non-empty here.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str | os.PathLike, strict: bool = True,
                    dtype=None) -> None:
    """Load a state dict saved by :func:`save_checkpoint` into ``module``.

    Checkpoints are dtype-portable: arrays are cast to each parameter's
    current dtype on load, so a float64-trained checkpoint can be loaded into
    a float32 model (and vice versa).  Pass ``dtype`` to additionally cast the
    whole module first.

    Casting parameters alone does not move *compute* to that dtype: batch
    features, masks and zero states are created under the global policy, and
    NumPy promotes mixed inputs upward.  To actually serve a float64-trained
    model on the float32 fast path, also set the policy::

        set_default_dtype("float32")            # activations
        load_checkpoint(model, path, dtype="float32")   # parameters
    """
    if dtype is not None:
        module.astype(dtype)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state, strict=strict)
