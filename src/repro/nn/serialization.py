"""Saving and loading model state dicts as ``.npz`` archives.

Checkpoints written since the serving PR carry a *versioned header* — a JSON
document stored under the reserved ``CHECKPOINT_META_KEY`` archive entry with
the format version, the dtype the parameters were saved in and every
parameter's shape.  Loading validates the header against the receiving module
and raises :class:`CheckpointError` with a readable diff instead of letting
``load_state_dict`` fail with a raw NumPy broadcast error.  Legacy archives
(plain ``np.savez`` of the state dict, as written by PR-1-era
``save_checkpoint``) have no header and keep loading exactly as before.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro._version import __version__
from repro.nn.module import Module

#: Reserved archive key holding the JSON header; never a valid parameter name
#: (parameter names are dotted attribute paths).
CHECKPOINT_META_KEY = "__repro_checkpoint__"

#: Bump when the archive layout changes incompatibly.  Loaders accept every
#: version up to and including their own.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint cannot be loaded into the receiving module.

    Subclasses :class:`ValueError` so pre-header callers that caught the raw
    shape-mismatch ``ValueError`` keep working.
    """


def checkpoint_metadata(module: Module, state: dict | None = None) -> dict:
    """The header :func:`save_checkpoint` writes for ``module``.

    Pass the already-built ``state`` dict to avoid a second full parameter
    copy (``Module.state_dict`` copies every array).
    """
    if state is None:
        state = module.state_dict()
    dtypes = sorted({str(array.dtype) for array in state.values()})
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "repro_version": __version__,
        "dtype": dtypes[0] if len(dtypes) == 1 else dtypes,
        "parameters": {name: list(array.shape) for name, array in state.items()},
    }


def save_checkpoint(module: Module, path: str | os.PathLike) -> None:
    """Write a module's full state dict plus the versioned header to ``path``."""
    state = module.state_dict()
    # npz keys cannot be empty; parameter names are always non-empty here.
    # The header is stored as a 0-d unicode array: loadable without pickle.
    meta = np.array(json.dumps(checkpoint_metadata(module, state)))
    np.savez(path, **{CHECKPOINT_META_KEY: meta}, **state)


def read_checkpoint_metadata(path: str | os.PathLike) -> dict | None:
    """Return the header of the archive at ``path`` (``None`` for legacy files)."""
    with np.load(path) as archive:
        if CHECKPOINT_META_KEY not in archive.files:
            return None
        return json.loads(str(archive[CHECKPOINT_META_KEY][()]))


def _validate_header(meta: dict, module: Module, path: str) -> None:
    version = meta.get("format_version")
    if not isinstance(version, int) or version > CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint '{path}' has format version {version!r}, but this build "
            f"only understands versions <= {CHECKPOINT_FORMAT_VERSION}; "
            "upgrade the repro package to load it")
    saved_shapes = {name: tuple(shape)
                    for name, shape in meta.get("parameters", {}).items()}
    own_shapes = {name: tensor.data.shape
                  for name, tensor in module._all_parameters_even_frozen()}
    mismatched = [
        f"  {name}: checkpoint {saved_shapes[name]} vs model {own_shapes[name]}"
        for name in sorted(set(saved_shapes) & set(own_shapes))
        if saved_shapes[name] != own_shapes[name]
    ]
    if mismatched:
        raise CheckpointError(
            f"checkpoint '{path}' does not fit {type(module).__name__}: "
            "parameter shapes differ (was the model built with a different "
            "ModelConfig?)\n" + "\n".join(mismatched))


def load_checkpoint(module: Module, path: str | os.PathLike, strict: bool = True,
                    dtype=None) -> None:
    """Load a state dict saved by :func:`save_checkpoint` into ``module``.

    Checkpoints are dtype-portable: arrays are cast to each parameter's
    current dtype on load, so a float64-trained checkpoint can be loaded into
    a float32 model (and vice versa).  Pass ``dtype`` to additionally cast the
    whole module first.

    Versioned archives are validated against the module before any parameter
    is touched: shape mismatches raise :class:`CheckpointError` naming every
    offending parameter, and archives from a newer format version are refused.
    Legacy (header-less) archives load exactly as before.

    Casting parameters alone does not move *compute* to that dtype: batch
    features, masks and zero states are created under the global policy, and
    NumPy promotes mixed inputs upward.  To actually serve a float64-trained
    model on the float32 fast path, also set the policy::

        set_default_dtype("float32")            # activations
        load_checkpoint(model, path, dtype="float32")   # parameters
    """
    if dtype is not None:
        module.astype(dtype)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    meta_entry = state.pop(CHECKPOINT_META_KEY, None)
    if meta_entry is not None:
        _validate_header(json.loads(str(meta_entry[()])), module, os.fspath(path))
    module.load_state_dict(state, strict=strict)
