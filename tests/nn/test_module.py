"""Module registration, modes, freezing and state dicts."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module, ModuleList, Sequential
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=seeded_rng(0))
        self.second = Linear(8, 2, rng=seeded_rng(1))
        self.scale = Tensor(np.ones(1), requires_grad=True)

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_recursive(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert set(names) == {"scale", "first.weight", "first.bias",
                              "second.weight", "second.bias"}

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_named_modules(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "first" in names and "second" in names

    def test_register_buffer_not_a_parameter(self):
        model = TwoLayer()
        model.register_buffer("memory", np.zeros((3, 3)))
        assert "memory" not in dict(model.named_parameters())
        assert model.memory.shape == (3, 3)

    def test_reassigning_attribute_updates_registry(self):
        model = TwoLayer()
        model.first = Linear(4, 4, rng=seeded_rng(2))
        assert dict(model.named_parameters())["first.weight"].shape == (4, 4)


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(Linear(4, 4, rng=seeded_rng(0)), Dropout(0.5))
        model.eval()
        assert all(not child.training for _, child in model.named_modules())
        model.train()
        assert all(child.training for _, child in model.named_modules())

    def test_freeze_removes_from_parameters(self):
        model = TwoLayer()
        model.freeze()
        assert model.parameters() == []
        model.unfreeze()
        assert len(model.parameters()) == 5

    def test_zero_grad(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        source = TwoLayer()
        target = TwoLayer()
        target.load_state_dict(source.state_dict())
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"][0] = 123.0
        assert model.scale.numpy()[0] != 123.0

    def test_strict_mismatch_raises(self):
        model = TwoLayer()
        with pytest.raises(KeyError):
            model.load_state_dict({"unknown": np.zeros(1)})

    def test_non_strict_ignores_extras(self):
        model = TwoLayer()
        state = model.state_dict()
        state["extra"] = np.zeros(3)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["scale"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_frozen_parameters_still_serialised(self):
        model = TwoLayer()
        model.freeze()
        assert "first.weight" in model.state_dict()


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 3, rng=seeded_rng(0)), Linear(3, 2, rng=seeded_rng(1)))
        out = model(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 2

    def test_module_list_registers_children(self):
        layers = ModuleList([Linear(2, 2, rng=seeded_rng(i)) for i in range(3)])
        assert len(layers) == 3
        assert len(list(layers.named_parameters())) == 6
        assert layers[1].weight.shape == (2, 2)

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(None)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
