"""GRU / LSTM cells and sequence encoders."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, LSTM, LSTMCell
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TestCells:
    def test_gru_cell_shapes_and_range(self):
        cell = GRUCell(6, 4, rng=seeded_rng(0))
        h = cell(Tensor(np.random.default_rng(0).standard_normal((3, 6))),
                 Tensor(np.zeros((3, 4))))
        assert h.shape == (3, 4)
        assert np.abs(h.numpy()).max() <= 1.0 + 1e-9

    def test_lstm_cell_shapes(self):
        cell = LSTMCell(6, 4, rng=seeded_rng(0))
        h, c = cell(Tensor(np.ones((2, 6))), Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4))))
        assert h.shape == (2, 4) and c.shape == (2, 4)

    def test_gru_cell_gradients(self):
        cell = GRUCell(3, 2, rng=seeded_rng(0))
        h = cell(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 2))))
        h.sum().backward()
        assert cell.weight_ih.grad is not None
        assert cell.weight_hh.grad is not None


class TestGRU:
    def test_unidirectional_shapes(self):
        gru = GRU(5, 4, bidirectional=False, rng=seeded_rng(0))
        states, final = gru(Tensor(np.random.default_rng(0).standard_normal((2, 7, 5))))
        assert states.shape == (2, 7, 4)
        assert final.shape == (2, 4)
        assert gru.output_dim == 4

    def test_bidirectional_shapes(self):
        gru = GRU(5, 4, bidirectional=True, rng=seeded_rng(0))
        states, final = gru(Tensor(np.random.default_rng(0).standard_normal((2, 7, 5))))
        assert states.shape == (2, 7, 8)
        assert final.shape == (2, 8)
        assert gru.output_dim == 8

    def test_final_state_matches_last_step(self):
        gru = GRU(3, 2, bidirectional=False, rng=seeded_rng(0))
        states, final = gru(Tensor(np.random.default_rng(1).standard_normal((1, 5, 3))))
        np.testing.assert_allclose(states.numpy()[:, -1, :], final.numpy())

    def test_order_sensitivity(self):
        gru = GRU(3, 4, bidirectional=False, rng=seeded_rng(0))
        x = np.random.default_rng(2).standard_normal((1, 6, 3))
        _, forward_final = gru(Tensor(x))
        _, reversed_final = gru(Tensor(x[:, ::-1, :].copy()))
        assert not np.allclose(forward_final.numpy(), reversed_final.numpy())

    def test_gradients_flow_through_time(self):
        gru = GRU(3, 2, bidirectional=True, rng=seeded_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4, 3)), requires_grad=True)
        _, final = gru(x)
        final.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[:, 0, :]).sum() > 0  # earliest step received gradient


class TestMaskedEncoding:
    """Mask semantics shared by both paths (scan kernels and per-step cells)."""

    @pytest.mark.parametrize("encoder_cls", (GRU, LSTM))
    @pytest.mark.parametrize("fused_on", (True, False))
    def test_padded_rows_ignore_trailing_steps(self, encoder_cls, fused_on):
        from repro.tensor import fused_kernels

        encoder = encoder_cls(4, 3, bidirectional=True, rng=seeded_rng(0))
        x = np.random.default_rng(3).standard_normal((2, 6, 4))
        mask = np.array([[1.0] * 6, [1.0, 1.0, 1.0, 0.0, 0.0, 0.0]])
        with fused_kernels(fused_on):
            _, final_masked = encoder(Tensor(x), mask=mask)
            _, final_truncated = encoder(Tensor(x[1:2, :3]))
        np.testing.assert_allclose(final_masked.numpy()[1], final_truncated.numpy()[0],
                                   atol=1e-12)

    @pytest.mark.parametrize("encoder_cls", (GRU, LSTM))
    def test_mask_changes_padded_batch_encoding(self, encoder_cls):
        encoder = encoder_cls(4, 3, bidirectional=True, rng=seeded_rng(1))
        x = np.random.default_rng(4).standard_normal((2, 6, 4))
        mask = np.array([[1.0] * 6, [1.0, 1.0, 0.0, 0.0, 0.0, 0.0]])
        _, final_masked = encoder(Tensor(x), mask=mask)
        _, final_unmasked = encoder(Tensor(x))
        # The fully valid row is identical; the padded row is not.
        np.testing.assert_allclose(final_masked.numpy()[0], final_unmasked.numpy()[0])
        assert not np.allclose(final_masked.numpy()[1], final_unmasked.numpy()[1])

    def test_masked_gradients_skip_dead_steps(self):
        gru = GRU(3, 2, bidirectional=False, rng=seeded_rng(2))
        x = Tensor(np.random.default_rng(5).standard_normal((1, 5, 3)),
                   requires_grad=True)
        mask = np.array([[1.0, 1.0, 0.0, 0.0, 0.0]])
        _, final = gru(x, mask=mask)
        final.sum().backward()
        np.testing.assert_allclose(x.grad[:, 2:, :], 0.0)
        assert np.abs(x.grad[:, :2, :]).sum() > 0


class TestLSTM:
    def test_unidirectional_shapes(self):
        lstm = LSTM(5, 3, rng=seeded_rng(0))
        states, final = lstm(Tensor(np.random.default_rng(0).standard_normal((4, 6, 5))))
        assert states.shape == (4, 6, 3)
        assert final.shape == (4, 3)

    def test_bidirectional_output_dim(self):
        lstm = LSTM(5, 3, bidirectional=True, rng=seeded_rng(0))
        assert lstm.output_dim == 6
        states, final = lstm(Tensor(np.zeros((1, 4, 5))))
        assert states.shape == (1, 4, 6) and final.shape == (1, 6)

    def test_gradients(self):
        lstm = LSTM(3, 2, rng=seeded_rng(0))
        _, final = lstm(Tensor(np.random.default_rng(0).standard_normal((2, 5, 3))))
        final.sum().backward()
        assert lstm.forward_cell.weight_ih.grad is not None
