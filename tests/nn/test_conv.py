"""Conv1d, pooling layers and the TextCNN encoder."""

import numpy as np
import pytest

from repro.nn import Conv1d, GlobalMaxPool1d, GlobalMeanPool1d, TextCNNEncoder
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TestConv1d:
    def test_output_shape(self):
        conv = Conv1d(8, 16, kernel_size=3, rng=seeded_rng(0))
        out = conv(Tensor(np.random.default_rng(0).standard_normal((4, 10, 8))))
        assert out.shape == (4, 8, 16)

    def test_kernel_one_equals_linear(self):
        conv = Conv1d(5, 7, kernel_size=1, rng=seeded_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 6, 5))
        out = conv(Tensor(x)).numpy()
        manual = x @ conv.weight.numpy() + conv.bias.numpy()
        np.testing.assert_allclose(out, manual)

    def test_matches_manual_convolution(self):
        conv = Conv1d(2, 1, kernel_size=2, rng=seeded_rng(0))
        x = np.arange(12.0).reshape(1, 6, 2)
        out = conv(Tensor(x)).numpy()[0, :, 0]
        w = conv.weight.numpy()[:, 0]
        expected = [np.concatenate([x[0, i], x[0, i + 1]]) @ w + conv.bias.numpy()[0]
                    for i in range(5)]
        np.testing.assert_allclose(out, expected)

    def test_channel_mismatch_raises(self):
        conv = Conv1d(4, 2, kernel_size=2, rng=seeded_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 5, 3))))

    def test_sequence_shorter_than_kernel_raises(self):
        conv = Conv1d(4, 2, kernel_size=6, rng=seeded_rng(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 5, 4))))

    def test_invalid_kernel_size(self):
        with pytest.raises(ValueError):
            Conv1d(4, 2, kernel_size=0)

    def test_gradients(self):
        conv = Conv1d(3, 4, kernel_size=2, rng=seeded_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((2, 5, 3)), requires_grad=True)
        conv(x).sum().backward()
        assert conv.weight.grad is not None
        assert x.grad is not None and x.grad.shape == x.shape


class TestPooling:
    def test_max_pool(self):
        x = np.random.default_rng(0).standard_normal((3, 7, 4))
        out = GlobalMaxPool1d()(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x.max(axis=1))

    def test_mean_pool(self):
        x = np.random.default_rng(0).standard_normal((3, 7, 4))
        out = GlobalMeanPool1d()(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x.mean(axis=1))


class TestTextCNNEncoder:
    def test_output_dim_property(self):
        encoder = TextCNNEncoder(16, kernel_sizes=(1, 2, 3), channels=8, rng=seeded_rng(0))
        assert encoder.output_dim == 24

    def test_forward_shape(self):
        encoder = TextCNNEncoder(16, kernel_sizes=(1, 2, 3, 5), channels=8, rng=seeded_rng(0))
        out = encoder(Tensor(np.random.default_rng(0).standard_normal((6, 12, 16))))
        assert out.shape == (6, 32)

    def test_output_nonnegative_after_relu_maxpool(self):
        encoder = TextCNNEncoder(8, kernel_sizes=(2,), channels=4, rng=seeded_rng(0))
        out = encoder(Tensor(np.random.default_rng(1).standard_normal((3, 9, 8))))
        assert (out.numpy() >= 0).all()

    def test_gradients_reach_all_kernels(self):
        encoder = TextCNNEncoder(8, kernel_sizes=(1, 3), channels=4, rng=seeded_rng(0))
        encoder(Tensor(np.random.default_rng(0).standard_normal((2, 6, 8)))).sum().backward()
        for conv in encoder.convolutions:
            assert conv.weight.grad is not None
