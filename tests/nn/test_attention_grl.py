"""Attention pooling, expert gate and the gradient-reversal layer."""

import numpy as np
import pytest

from repro.nn import AttentionPooling, ExpertGate, GradientReversal, gradient_reversal
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TestAttentionPooling:
    def test_output_shape(self):
        pool = AttentionPooling(8, hidden_dim=4, rng=seeded_rng(0))
        out = pool(Tensor(np.random.default_rng(0).standard_normal((3, 6, 8))))
        assert out.shape == (3, 8)

    def test_mask_excludes_padded_positions(self):
        pool = AttentionPooling(4, rng=seeded_rng(0))
        x = np.zeros((1, 3, 4))
        x[0, 0] = 1.0
        x[0, 1] = 2.0
        x[0, 2] = 100.0  # padded position with huge values
        mask = np.array([[1.0, 1.0, 0.0]])
        out = pool(Tensor(x), mask=mask).numpy()
        assert out.max() <= 2.0 + 1e-6

    def test_weights_are_convex_combination(self):
        pool = AttentionPooling(2, rng=seeded_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 5, 2))
        out = pool(Tensor(x)).numpy()
        assert out.min() >= x.min() - 1e-9
        assert out.max() <= x.max() + 1e-9

    @pytest.mark.parametrize("fused_on", (True, False))
    def test_fully_masked_row_stays_finite(self, fused_on):
        """Regression: a row with no valid tokens must not produce NaNs.

        The additive penalty shifts every score equally, so the softmax
        degrades to the softmax of the raw scores instead of 0/0.
        """
        from repro.tensor import fused_kernels

        pool = AttentionPooling(4, rng=seeded_rng(0))
        x = Tensor(np.random.default_rng(2).standard_normal((3, 5, 4)),
                   requires_grad=True)
        mask = np.ones((3, 5))
        mask[1, :] = 0.0  # fully masked row
        with fused_kernels(fused_on):
            out = pool(x, mask=mask)
            out.sum().backward()
        assert np.isfinite(out.numpy()).all()
        assert np.isfinite(x.grad).all()

    @pytest.mark.parametrize("fused_on", (True, False))
    def test_mask_penalty_keeps_float32_compute_dtype(self, fused_on):
        """The additive mask must be built in the scores' dtype (float32-safe).

        A float64 penalty constant would silently upcast a float32 model's
        scores and everything downstream of the pooling.
        """
        from repro.tensor import default_dtype, fused_kernels

        with default_dtype("float32"):
            pool = AttentionPooling(4, rng=seeded_rng(0))
            x = Tensor(np.random.default_rng(3).standard_normal((2, 5, 4)))
            assert x.dtype == np.float32
        mask = np.array([[1.0, 1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 0.0, 0.0, 0.0]])
        # Outside the float32 scope the *default* policy is float64 again; the
        # pooling must still stay in the model's own dtype.
        with fused_kernels(fused_on):
            out = pool(x, mask=mask)
        assert out.dtype == np.float32
        assert np.isfinite(out.numpy()).all()


class TestExpertGate:
    def test_softmax_weights(self):
        gate = ExpertGate(6, num_experts=4, rng=seeded_rng(0))
        weights = gate(Tensor(np.random.default_rng(0).standard_normal((5, 6)))).numpy()
        assert weights.shape == (5, 4)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()


class TestGradientReversal:
    def test_forward_is_identity(self):
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)), requires_grad=True)
        out = gradient_reversal(x, 2.0)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_backward_negates_and_scales(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = gradient_reversal(x, 0.5)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, -1.5)

    def test_module_wrapper_and_set_coefficient(self):
        layer = GradientReversal(1.0)
        layer.set_coefficient(2.0)
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        layer(x).sum().backward()
        np.testing.assert_allclose(x.grad, -2.0)

    def test_no_grad_input_passthrough(self):
        x = Tensor(np.ones((2, 2)))
        out = gradient_reversal(x, 1.0)
        assert not out.requires_grad

    def test_minmax_behaviour_in_composite_loss(self):
        # The adversary (after GRL) pushes features to be less domain-predictive:
        # the gradient on the feature weights from the domain loss must have the
        # opposite sign compared to the same loss without GRL.
        from repro.tensor import functional as F

        rng = np.random.default_rng(0)
        features = Tensor(rng.standard_normal((8, 4)), requires_grad=True)
        head = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        domains = np.array([0, 1, 2, 0, 1, 2, 0, 1])

        loss_plain = F.cross_entropy(features @ head, domains)
        loss_plain.backward()
        grad_plain = features.grad.copy()
        features.zero_grad()

        loss_grl = F.cross_entropy(gradient_reversal(features, 1.0) @ head, domains)
        loss_grl.backward()
        np.testing.assert_allclose(features.grad, -grad_plain, atol=1e-10)
