"""Dense, embedding, normalisation layers and the MLP head."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.tensor import Tensor
from repro.utils import seeded_rng, set_global_seed


class TestLinear:
    def test_output_shape_and_value(self):
        layer = Linear(4, 3, rng=seeded_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 4))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.numpy(),
                                   x @ layer.weight.numpy() + layer.bias.numpy())

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=seeded_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=seeded_rng(0))
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_works_on_3d_input(self):
        layer = Linear(6, 2, rng=seeded_rng(0))
        out = layer(Tensor(np.ones((2, 5, 6))))
        assert out.shape == (2, 5, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(20, 8, rng=seeded_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 8)

    def test_padding_idx_is_zero_vector(self):
        emb = Embedding(10, 4, padding_idx=0, rng=seeded_rng(0))
        np.testing.assert_allclose(emb(np.array([0])).numpy(), np.zeros((1, 4)))

    def test_gradient_accumulates_per_row(self):
        emb = Embedding(5, 3, rng=seeded_rng(0))
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        assert emb.weight.grad[1].sum() == pytest.approx(6.0)  # used twice
        assert emb.weight.grad[3].sum() == pytest.approx(0.0)


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_eval_mode_identity(self):
        layer = Dropout(0.9, rng=seeded_rng(0))
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(layer(x).numpy(), 1.0)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=seeded_rng(0))
        out = layer(Tensor(np.ones((50, 50)))).numpy()
        assert set(np.round(np.unique(out), 6)).issubset({0.0, 2.0})

    def test_zero_probability_is_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.random.default_rng(0).standard_normal((5, 5)))
        np.testing.assert_allclose(layer(x).numpy(), x.numpy())

    def test_unseeded_dropout_follows_global_seed(self):
        """A Dropout built without an rng draws from the experiment seed."""
        x = Tensor(np.ones((16, 16)))
        set_global_seed(99)
        first = Dropout(0.5)(x).numpy()
        set_global_seed(99)
        second = Dropout(0.5)(x).numpy()
        np.testing.assert_array_equal(first, second)

    def test_same_seed_same_loss_trajectory_without_explicit_rngs(self):
        """Regression: models built without rngs must reproduce run-to-run.

        Before the experiment-wide fallback seed, an unseeded Dropout used a
        fresh ``np.random.default_rng()`` and two identical runs diverged.
        """
        from repro.nn import Adam
        from repro.tensor import functional as F

        data = np.random.default_rng(3).standard_normal((12, 6))
        labels = np.array([0, 1] * 6)

        def run():
            set_global_seed(2024)
            model = MLP([6, 8], output_dim=2, dropout=0.5)  # no rng anywhere
            model.train()
            optimizer = Adam(model.parameters(), lr=1e-2)
            losses = []
            for _ in range(4):
                optimizer.zero_grad()
                loss = F.cross_entropy(model(Tensor(data)), labels)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            return losses

        assert run() == run()


class TestLayerNorm:
    def test_normalises_last_axis(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)) * 7 + 3)
        out = layer(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learnable_affine(self):
        layer = LayerNorm(4)
        layer.weight.data = np.full(4, 2.0)
        layer.bias.data = np.full(4, 1.0)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        out = layer(x).numpy()
        assert abs(out.mean() - 1.0) < 0.2

    def test_fused_matches_composed(self):
        from repro.tensor import fused_kernels

        layer = LayerNorm(6)
        x = np.random.default_rng(1).standard_normal((4, 6)) * 3 + 2

        def run(fused_on):
            with fused_kernels(fused_on):
                layer.zero_grad()
                xt = Tensor(x.copy(), requires_grad=True)
                (layer(xt) ** 2).sum().backward()
                return xt.grad.copy(), [p.grad.copy() for p in layer.parameters()]

        fused_xg, fused_pg = run(True)
        composed_xg, composed_pg = run(False)
        np.testing.assert_allclose(fused_xg, composed_xg, atol=1e-9)
        for got, expected in zip(fused_pg, composed_pg):
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_single_node_on_fused_path(self):
        from repro.tensor import graph_nodes_created

        layer = LayerNorm(5)
        x = Tensor(np.random.default_rng(2).standard_normal((3, 5)),
                   requires_grad=True)
        before = graph_nodes_created()
        layer(x)
        assert graph_nodes_created() == before + 1


class TestMLP:
    def test_output_dim(self):
        mlp = MLP([10, 8, 6], output_dim=2, rng=seeded_rng(0))
        out = mlp(Tensor(np.ones((3, 10))))
        assert out.shape == (3, 2)

    def test_single_layer(self):
        mlp = MLP([5], output_dim=3, rng=seeded_rng(0))
        assert mlp(Tensor(np.ones((2, 5)))).shape == (2, 3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MLP([], output_dim=2)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 4], output_dim=2, activation="swish")

    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid", "gelu"])
    def test_activations_run(self, activation):
        mlp = MLP([6, 4], output_dim=2, activation=activation, rng=seeded_rng(0))
        out = mlp(Tensor(np.random.default_rng(0).standard_normal((3, 6))))
        assert np.isfinite(out.numpy()).all()

    def test_gradients_reach_all_layers(self):
        mlp = MLP([4, 4, 4], output_dim=2, dropout=0.0, rng=seeded_rng(0))
        mlp(Tensor(np.ones((2, 4)))).sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
