"""Loss modules, optimisers, gradient clipping, schedulers and checkpoints."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    GradientClipper,
    KLDistillationLoss,
    Linear,
    MSELoss,
    SGD,
    StepLR,
    load_checkpoint,
    save_checkpoint,
)
from repro.tensor import Tensor
from repro.utils import seeded_rng


class TestLossModules:
    def test_cross_entropy_module(self):
        loss = CrossEntropyLoss()
        logits = Tensor(np.array([[3.0, -3.0], [-3.0, 3.0]]))
        assert loss(logits, np.array([0, 1])).item() < 0.01

    def test_cross_entropy_class_weights_change_value(self):
        logits = Tensor(np.array([[0.0, 1.0], [1.0, 0.0]]))
        targets = np.array([1, 0])
        unweighted = CrossEntropyLoss()(logits, targets).item()
        weighted = CrossEntropyLoss(class_weights=np.array([1.0, 10.0]))(logits, targets).item()
        assert unweighted == pytest.approx(weighted, rel=0.3) or unweighted != weighted

    def test_bce_and_mse_modules(self):
        assert BCEWithLogitsLoss()(Tensor(np.array([10.0])), np.array([1.0])).item() < 1e-3
        assert MSELoss()(Tensor(np.array([2.0])), np.array([0.0])).item() == pytest.approx(4.0)

    def test_kl_distillation_module(self):
        loss = KLDistillationLoss(temperature=2.0)
        a = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        assert loss(a, a.copy()).item() == pytest.approx(0.0, abs=1e-10)
        with pytest.raises(ValueError):
            KLDistillationLoss(temperature=-1.0)


def _quadratic_problem():
    """Parameters that should converge to the target under any sane optimiser."""
    target = np.array([1.0, -2.0, 3.0])
    parameter = Tensor(np.zeros(3), requires_grad=True)

    def loss_fn():
        diff = parameter - Tensor(target)
        return (diff * diff).sum()

    return parameter, target, loss_fn


class TestOptimisers:
    def test_sgd_converges(self):
        parameter, target, loss_fn = _quadratic_problem()
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.numpy(), target, atol=1e-3)

    def test_sgd_momentum_accelerates_on_shallow_slope(self):
        def run(momentum):
            parameter, _, loss_fn = _quadratic_problem()
            optimizer = SGD([parameter], lr=0.01, momentum=momentum)
            for _ in range(20):
                optimizer.zero_grad()
                loss_fn().backward()
                optimizer.step()
            return loss_fn().item()

        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        parameter, target, loss_fn = _quadratic_problem()
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            loss_fn().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.numpy(), target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor(np.full(4, 5.0), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (parameter * 0.0).sum().backward()
            optimizer.step()
        assert np.abs(parameter.numpy()).max() < 1.0

    def test_skips_parameters_without_grad(self):
        parameter = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()  # no backward happened; should not raise
        np.testing.assert_allclose(parameter.numpy(), 1.0)

    def test_requires_trainable_parameters(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(2))], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(2), requires_grad=True)], lr=0.0)

    def test_frozen_parameters_excluded(self):
        trainable = Tensor(np.ones(2), requires_grad=True)
        frozen = Tensor(np.ones(2), requires_grad=False)
        optimizer = SGD([trainable, frozen], lr=0.1)
        assert len(optimizer.parameters) == 1


class TestClipperAndScheduler:
    def test_clipper_limits_norm(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.full(4, 10.0)
        clipper = GradientClipper(max_norm=1.0)
        clipper.clip([parameter])
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_clipper_leaves_small_gradients(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.full(4, 0.01)
        GradientClipper(max_norm=5.0).clip([parameter])
        np.testing.assert_allclose(parameter.grad, 0.01)

    def test_clipper_invalid_norm(self):
        with pytest.raises(ValueError):
            GradientClipper(max_norm=0.0)

    def test_step_lr(self):
        parameter = Tensor(np.ones(1), requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert scheduler.current_lr == pytest.approx(1.0)
        scheduler.step()
        assert scheduler.current_lr == pytest.approx(0.1)


class TestCheckpoints:
    def test_save_and_load_roundtrip(self, tmp_path):
        source = Linear(4, 3, rng=seeded_rng(0))
        target = Linear(4, 3, rng=seeded_rng(99))
        path = tmp_path / "weights.npz"
        save_checkpoint(source, path)
        load_checkpoint(target, path)
        np.testing.assert_allclose(source.weight.numpy(), target.weight.numpy())
        np.testing.assert_allclose(source.bias.numpy(), target.bias.numpy())

    def test_load_strict_mismatch(self, tmp_path):
        source = Linear(4, 3, rng=seeded_rng(0))
        path = tmp_path / "weights.npz"
        save_checkpoint(source, path)
        other = Linear(4, 4, rng=seeded_rng(1))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)
