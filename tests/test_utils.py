"""Shared utilities: seeding, batching, timing."""

import time

import numpy as np
import pytest

from repro.utils import batched_indices, moving_average, seeded_rng, spawn_rngs, timer


class TestRngHelpers:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(3).random() == seeded_rng(3).random()

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4
        values = [rng.random() for rng in rngs]
        assert len(set(values)) == 4

    def test_spawn_rngs_deterministic(self):
        a = [rng.random() for rng in spawn_rngs(7, 3)]
        b = [rng.random() for rng in spawn_rngs(7, 3)]
        assert a == b


class TestBatchedIndices:
    def test_covers_all_indices(self):
        batches = list(batched_indices(10, 3, shuffle=False))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(10))

    def test_drop_last(self):
        batches = list(batched_indices(10, 3, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [3, 3, 3]

    def test_shuffle_permutes(self):
        batches = list(batched_indices(20, 5, rng=np.random.default_rng(0), shuffle=True))
        flattened = np.concatenate(batches)
        assert not np.array_equal(flattened, np.arange(20))
        np.testing.assert_array_equal(np.sort(flattened), np.arange(20))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched_indices(5, 0))


class TestMisc:
    def test_timer_measures_elapsed(self):
        with timer() as elapsed:
            time.sleep(0.01)
        assert elapsed() >= 0.01

    def test_moving_average(self):
        assert moving_average([1.0, 2.0, 3.0, 4.0], window=2) == [1.0, 1.5, 2.5, 3.5]

    def test_moving_average_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)
