"""Pipeline artifact round-trips: save → load → predict must be bit-identical.

Covers the three model provenances the serving API promises to round-trip —
a plain baseline, a DTDBD-distilled student and a user-registered custom
detector — in both engine dtypes, plus the artifact error paths and the
versioned checkpoint header.
"""

import json
import os

import numpy as np
import pytest

from repro.core import DTDBDConfig, DTDBDTrainer
from repro.data import MultiDomainNewsDataset, NewsItem
from repro.models import (
    FakeNewsDetector,
    available_models,
    build_model,
    register_model,
    registry_name,
)
from repro.models.base import pooled_plm
from repro.nn import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    read_checkpoint_metadata,
    save_checkpoint,
)
from repro.serve import (
    CHECKSUMS_FILE,
    MANIFEST_FILE,
    PIPELINE_FORMAT_VERSION,
    Pipeline,
    PipelineError,
    load_pipeline,
    save_pipeline,
)
from repro.tensor import default_dtype

DTYPES = ("float64", "float32")


class UnitCustomDetector(FakeNewsDetector):
    """Minimal user-defined detector used to prove custom models round-trip."""

    name = "unit_serve_custom"

    def __init__(self, config):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        self.classifier = self._build_classifier(config.plm_dim, rng)

    @property
    def feature_dim(self):
        return self.config.plm_dim

    def extract_features(self, batch):
        return pooled_plm(batch)


@pytest.fixture(scope="module", autouse=True)
def _custom_model_registration():
    """Register the custom detector for this module, leave no global trace."""
    from repro.models import registry

    if "unit_serve_custom" not in available_models():
        register_model("unit_serve_custom", UnitCustomDetector)
    yield
    registry._REGISTRY.pop("unit_serve_custom", None)


@pytest.fixture(scope="module")
def probe_texts(tiny_splits):
    items = tiny_splits.test.items[:6]
    return [item.text for item in items], [item.domain for item in items]


def _build(name, model_config, dtype):
    with default_dtype(dtype):
        return build_model(name, model_config)


def _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset):
    return Pipeline.from_training(model, tiny_vocab, tiny_encoder, max_length=16,
                                  domain_names=tiny_dataset.domain_names)


def _rewrite_manifest(path, mutate):
    """Edit the manifest as a (hypothetical) different exporter would: the
    spec changes but the checksum sidecar stays consistent with the bytes."""
    from repro.reliability import sha256_file

    manifest_path = os.path.join(path, MANIFEST_FILE)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    mutate(manifest)
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    checksums_path = os.path.join(path, CHECKSUMS_FILE)
    with open(checksums_path) as handle:
        checksums = json.load(handle)
    checksums[MANIFEST_FILE] = sha256_file(manifest_path)
    with open(checksums_path, "w") as handle:
        json.dump(checksums, handle)


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", ("textcnn_s", "unit_serve_custom"))
class TestRoundTrip:
    def test_save_load_predict_bit_identical(self, name, dtype, model_config,
                                             tiny_vocab, tiny_encoder, tiny_dataset,
                                             probe_texts, tmp_path):
        texts, domains = probe_texts
        model = _build(name, model_config, dtype)
        pipeline = _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset)
        assert pipeline.dtype == dtype
        expected = pipeline.predictor().predict_proba(texts, domains=domains)
        assert expected.dtype == np.dtype(dtype)

        path = save_pipeline(pipeline, tmp_path / "artifact")
        loaded = load_pipeline(path)
        assert loaded.model_name == name
        assert loaded.dtype == dtype
        assert loaded.max_length == 16
        assert loaded.domain_names == tiny_dataset.domain_names
        restored = loaded.predictor().predict_proba(texts, domains=domains)
        np.testing.assert_array_equal(restored, expected)

    def test_loaded_model_parameters_bitwise_equal(self, name, dtype, model_config,
                                                   tiny_vocab, tiny_encoder,
                                                   tiny_dataset, tmp_path):
        model = _build(name, model_config, dtype)
        pipeline = _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset)
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "artifact"))
        source_state = model.state_dict()
        for key, value in loaded.model.state_dict().items():
            assert value.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(value, source_state[key])


@pytest.mark.parametrize("dtype", DTYPES)
def test_dtdbd_student_round_trips(dtype, model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, train_loader, probe_texts, tmp_path):
    """The paper's deployable artifact — a distilled student — must round-trip."""
    texts, domains = probe_texts
    with default_dtype(dtype):
        student = build_model("textcnn_s", model_config)
        unbiased = build_model("textcnn_s", model_config.with_overrides(seed=11))
        clean = build_model("mdfend", model_config.with_overrides(seed=12))
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=1, learning_rate=1e-3))
        trainer.fit(train_loader)
    path = trainer.export_pipeline(tmp_path / "student", vocab=tiny_vocab,
                                   encoder=tiny_encoder, max_length=16,
                                   domain_names=tiny_dataset.domain_names)
    pipeline = load_pipeline(path)
    assert pipeline.model_name == "textcnn_s"
    assert pipeline.dtype == dtype
    expected = Pipeline.from_training(
        student, tiny_vocab, tiny_encoder, max_length=16,
        domain_names=tiny_dataset.domain_names).predictor().predict_proba(
            texts, domains=domains)
    np.testing.assert_array_equal(
        pipeline.predictor().predict_proba(texts, domains=domains), expected)


class TestArtifactFormat:
    def test_manifest_contents(self, model_config, tiny_vocab, tiny_encoder,
                               tiny_dataset, tmp_path):
        model = _build("textcnn_s", model_config, "float64")
        pipeline = _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset)
        path = save_pipeline(pipeline, tmp_path / "artifact")
        with open(os.path.join(path, MANIFEST_FILE)) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == PIPELINE_FORMAT_VERSION
        assert manifest["model"]["name"] == "textcnn_s"
        assert manifest["model"]["config"]["plm_dim"] == model_config.plm_dim
        assert manifest["dtype"] == "float64"
        assert manifest["tokenizer"]["kind"] == "whitespace"
        assert manifest["encoder"]["vocab_size"] == len(tiny_vocab)
        assert manifest["labels"] == ["real", "fake"]

    def test_missing_artifact_errors(self, tmp_path):
        with pytest.raises(PipelineError, match="no pipeline artifact"):
            load_pipeline(tmp_path / "nowhere")

    def test_malformed_artifact_raises_pipeline_error(self, model_config, tiny_vocab,
                                                      tiny_encoder, tiny_dataset,
                                                      tmp_path):
        """Any broken piece — files or specs — surfaces as PipelineError.

        With the checksum sidecar present, any byte-level damage is refused
        up-front as a checksum mismatch (covered in tests/reliability/).  Each
        block below removes the sidecar first so the deeper, piece-specific
        error paths stay exercised via the legacy no-sidecar load.
        """
        model = _build("textcnn_s", model_config, "float64")
        path = save_pipeline(
            _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset),
            tmp_path / "artifact")
        os.remove(os.path.join(path, "vocab.json"))
        with pytest.raises(PipelineError, match="checksum mismatch"):
            load_pipeline(path)
        os.remove(os.path.join(path, CHECKSUMS_FILE))
        with pytest.raises(PipelineError, match="malformed"):
            load_pipeline(path)

        path = save_pipeline(
            _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset),
            tmp_path / "artifact2")
        _rewrite_manifest(
            path, lambda m: m.update(tokenizer={"kind": "sentencepiece"}))
        with pytest.raises(PipelineError, match="malformed"):
            load_pipeline(path)

        path = save_pipeline(
            _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset),
            tmp_path / "artifact3")
        os.remove(os.path.join(path, "weights.npz"))
        os.remove(os.path.join(path, CHECKSUMS_FILE))
        with pytest.raises(PipelineError, match="unloadable weights"):
            load_pipeline(path)

    def test_future_format_version_refused(self, model_config, tiny_vocab,
                                           tiny_encoder, tiny_dataset, tmp_path):
        model = _build("textcnn_s", model_config, "float64")
        path = save_pipeline(
            _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset),
            tmp_path / "artifact")
        _rewrite_manifest(
            path,
            lambda m: m.update(format_version=PIPELINE_FORMAT_VERSION + 1))
        with pytest.raises(PipelineError, match="format version"):
            load_pipeline(path)

    def test_unregistered_model_names_registration_hint(self, model_config, tiny_vocab,
                                                        tiny_encoder, tiny_dataset,
                                                        tmp_path):
        model = _build("textcnn_s", model_config, "float64")
        path = save_pipeline(
            _pipeline_for(model, tiny_vocab, tiny_encoder, tiny_dataset),
            tmp_path / "artifact")
        _rewrite_manifest(
            path,
            lambda m: m["model"].update(name="not_registered_here"))
        with pytest.raises(PipelineError, match="register_model"):
            load_pipeline(path)

    def test_encoder_vocab_mismatch_rejected(self, model_config, tiny_vocab,
                                             tiny_dataset):
        from repro.encoders import FrozenPretrainedEncoder

        model = _build("textcnn_s", model_config, "float64")
        wrong = FrozenPretrainedEncoder(len(tiny_vocab) + 5, output_dim=16, seed=3)
        with pytest.raises(PipelineError, match="vocabulary"):
            Pipeline.from_training(model, tiny_vocab, wrong, max_length=16,
                                   domain_names=tiny_dataset.domain_names)

    def test_registry_name_resolution(self, model_config):
        model = _build("unit_serve_custom", model_config, "float64")
        assert registry_name(model) == "unit_serve_custom"

        class Unregistered(UnitCustomDetector):
            name = "never_registered"

        with pytest.raises(KeyError, match="register_model"):
            registry_name(Unregistered(model_config))


class TestVersionedCheckpoints:
    def test_header_written_and_readable(self, model_config, tmp_path):
        model = _build("textcnn_s", model_config, "float32")
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        meta = read_checkpoint_metadata(path)
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert meta["dtype"] == "float32"
        state = model.state_dict()
        assert meta["parameters"].keys() == state.keys()
        for name, shape in meta["parameters"].items():
            assert tuple(shape) == state[name].shape

    def test_shape_mismatch_raises_checkpoint_error(self, model_config, tmp_path):
        from repro.nn import load_checkpoint

        source = _build("textcnn_s", model_config, "float64")
        path = tmp_path / "model.npz"
        save_checkpoint(source, path)
        wrong = _build("textcnn_s", model_config.with_overrides(cnn_channels=4), "float64")
        with pytest.raises(CheckpointError, match="shapes differ"):
            load_checkpoint(wrong, path)

    def test_legacy_headerless_checkpoint_still_loads(self, model_config,
                                                      sample_batch, tmp_path):
        from repro.nn import load_checkpoint

        source = _build("textcnn_s", model_config, "float64")
        source.eval()
        path = tmp_path / "legacy.npz"
        np.savez(path, **source.state_dict())  # PR-1-era format: bare state dict
        assert read_checkpoint_metadata(path) is None
        target = _build("textcnn_s", model_config.with_overrides(seed=99), "float64")
        load_checkpoint(target, path)
        np.testing.assert_allclose(target.eval().predict_proba(sample_batch),
                                   source.predict_proba(sample_batch), atol=1e-12)

    def test_future_checkpoint_version_refused(self, model_config, tmp_path):
        from repro.nn import load_checkpoint
        from repro.nn.serialization import CHECKPOINT_META_KEY

        model = _build("textcnn_s", model_config, "float64")
        meta = {"format_version": CHECKPOINT_FORMAT_VERSION + 1, "parameters": {}}
        np.savez(tmp_path / "future.npz",
                 **{CHECKPOINT_META_KEY: np.array(json.dumps(meta))},
                 **model.state_dict())
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(model, tmp_path / "future.npz")
