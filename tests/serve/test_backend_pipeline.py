"""Encoder backends and feature channels through the pipeline artifact.

The tentpole contract of the backend registry, end to end:

* stock local-backend exports are *byte-compatible* with pre-registry
  artifacts (no new manifest keys, legacy manifests load unchanged);
* non-local backends persist under the additive ``encoder_backend`` key and
  reload bit-identically (their math wraps the same frozen encoder);
* a custom detector consuming a custom registered channel exports, reloads
  in a *fresh process* and reproduces its probabilities bit-for-bit in both
  engine dtypes;
* failure modes (unregistered backend/channel kinds, custom channels
  exported without specs) surface as readable :class:`PipelineError`\\ s
  naming the registration call.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import backend_roundtrip_helper as helper

from repro.encoders import (
    CachedBackend,
    EmotionChannel,
    LocalBackend,
    PLMChannel,
    RemoteBackend,
    StyleChannel,
    spec_fingerprint,
)
from repro.models import build_model
from repro.serve import (
    MANIFEST_FILE,
    Pipeline,
    PipelineError,
    load_pipeline,
    save_pipeline,
)
from repro.tensor import default_dtype

DTYPES = ("float64", "float32")

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))

#: manifest keys of a pre-registry (PR-5-era) stock export — the byte-
#: compatibility contract is that stock local exports add nothing to these.
LEGACY_MANIFEST_KEYS = {
    "domain_names", "dtype", "encoder", "feature_channels", "format_version",
    "labels", "max_length", "metadata", "model", "repro_version", "tokenizer",
}


@pytest.fixture(scope="module", autouse=True)
def _registrations():
    helper.register()
    yield
    helper.unregister()


@pytest.fixture(scope="module")
def probe_texts(tiny_splits):
    items = tiny_splits.test.items[:6]
    return [item.text for item in items], [item.domain for item in items]


def _read_manifest(path):
    with open(os.path.join(path, MANIFEST_FILE)) as handle:
        return json.load(handle)


def _stock_pipeline(model_config, tiny_vocab, encoder, tiny_dataset, dtype,
                    name="textcnn_s"):
    with default_dtype(dtype):
        model = build_model(name, model_config)
    return Pipeline.from_training(model, tiny_vocab, encoder, max_length=16,
                                  domain_names=tiny_dataset.domain_names)


class TestManifestCompatibility:
    def test_stock_local_export_adds_no_manifest_keys(self, model_config,
                                                      tiny_vocab, tiny_encoder,
                                                      tiny_dataset, tmp_path):
        pipeline = _stock_pipeline(model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, "float64")
        path = save_pipeline(pipeline, tmp_path / "artifact")
        assert set(_read_manifest(path)) == LEGACY_MANIFEST_KEYS

    def test_explicit_stock_channels_add_no_manifest_keys(self, model_config,
                                                          tiny_vocab, tiny_encoder,
                                                          tiny_dataset, tmp_path):
        """Passing resolved stock channel objects (the new training path)
        must not change the artifact either."""
        backend = LocalBackend(tiny_encoder)
        with default_dtype("float64"):
            model = build_model("textcnn_s", model_config)
        pipeline = Pipeline.from_training(
            model, tiny_vocab, backend, max_length=16,
            domain_names=tiny_dataset.domain_names,
            channels=[PLMChannel(backend), StyleChannel(), EmotionChannel()])
        path = save_pipeline(pipeline, tmp_path / "artifact")
        assert set(_read_manifest(path)) == LEGACY_MANIFEST_KEYS

    def test_legacy_manifest_without_backend_keys_loads(self, model_config,
                                                        tiny_vocab, tiny_encoder,
                                                        tiny_dataset, probe_texts,
                                                        tmp_path):
        """An artifact stripped back to the legacy schema loads through the
        local-backend fallback and predicts identically."""
        texts, domains = probe_texts
        pipeline = _stock_pipeline(model_config, tiny_vocab,
                                   CachedBackend.from_encoder(tiny_encoder),
                                   tiny_dataset, "float64")
        expected = pipeline.predictor().predict_proba(texts, domains=domains)
        path = save_pipeline(pipeline, tmp_path / "artifact")
        manifest = _read_manifest(path)
        assert manifest["encoder_backend"]["kind"] == "cached"
        del manifest["encoder_backend"]  # what a pre-registry writer produced
        from repro.reliability import sha256_file

        manifest_path = os.path.join(path, MANIFEST_FILE)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with open(os.path.join(path, "checksums.json")) as handle:
            checksums = json.load(handle)
        checksums[MANIFEST_FILE] = sha256_file(manifest_path)
        with open(os.path.join(path, "checksums.json"), "w") as handle:
            json.dump(checksums, handle)

        loaded = load_pipeline(path)
        assert loaded.encoder.kind == "local"
        np.testing.assert_array_equal(
            loaded.predictor().predict_proba(texts, domains=domains), expected)


@pytest.mark.parametrize("dtype", DTYPES)
class TestNonLocalBackendRoundTrip:
    def test_cached_backend_round_trips(self, dtype, model_config, tiny_vocab,
                                        tiny_encoder, tiny_dataset, probe_texts,
                                        tmp_path):
        texts, domains = probe_texts
        backend = CachedBackend.from_encoder(tiny_encoder, max_entries=64)
        pipeline = _stock_pipeline(model_config, tiny_vocab, backend,
                                   tiny_dataset, dtype)
        expected = _stock_pipeline(model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, dtype).predictor().predict_proba(
                                       texts, domains=domains)
        # The cache is transparent: same probabilities as the local pipeline.
        np.testing.assert_array_equal(
            pipeline.predictor().predict_proba(texts, domains=domains), expected)

        path = save_pipeline(pipeline, tmp_path / "artifact")
        manifest = _read_manifest(path)
        assert manifest["encoder_backend"]["kind"] == "cached"
        assert manifest["encoder_backend"]["max_entries"] == 64
        assert "encoder" in manifest  # legacy key still written
        loaded = load_pipeline(path)
        assert isinstance(loaded.encoder, CachedBackend)
        assert loaded.encoder.fingerprint() == backend.fingerprint()
        np.testing.assert_array_equal(
            loaded.predictor().predict_proba(texts, domains=domains), expected)

    def test_remote_backend_round_trips(self, dtype, model_config, tiny_vocab,
                                        tiny_encoder, tiny_dataset, probe_texts,
                                        tmp_path):
        texts, domains = probe_texts
        backend = RemoteBackend.in_process(tiny_encoder, max_rows_per_request=3)
        pipeline = _stock_pipeline(model_config, tiny_vocab, backend,
                                   tiny_dataset, dtype)
        expected = _stock_pipeline(model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, dtype).predictor().predict_proba(
                                       texts, domains=domains)
        np.testing.assert_array_equal(
            pipeline.predictor().predict_proba(texts, domains=domains), expected)

        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "artifact"))
        assert isinstance(loaded.encoder, RemoteBackend)
        assert loaded.encoder.max_rows_per_request == 3
        np.testing.assert_array_equal(
            loaded.predictor().predict_proba(texts, domains=domains), expected)


@pytest.mark.parametrize("dtype", DTYPES)
class TestCustomChannelRoundTrip:
    def _custom_pipeline(self, model_config, tiny_vocab, tiny_encoder,
                         tiny_dataset, dtype):
        backend = LocalBackend(tiny_encoder)
        with default_dtype(dtype):
            model = build_model(helper.MODEL_NAME, model_config)
        return Pipeline.from_training(
            model, tiny_vocab, backend, max_length=16,
            domain_names=tiny_dataset.domain_names,
            channels=[PLMChannel(backend), helper.TokenCountChannel()])

    def test_manifest_carries_channel_specs(self, dtype, model_config, tiny_vocab,
                                            tiny_encoder, tiny_dataset, tmp_path):
        pipeline = self._custom_pipeline(model_config, tiny_vocab, tiny_encoder,
                                         tiny_dataset, dtype)
        path = save_pipeline(pipeline, tmp_path / "artifact")
        manifest = _read_manifest(path)
        assert manifest["feature_channels"] == ["plm", helper.CHANNEL_KIND]
        kinds = [spec["kind"] for spec in manifest["feature_channel_specs"]]
        assert kinds == ["plm", helper.CHANNEL_KIND]

    def test_same_process_round_trip(self, dtype, model_config, tiny_vocab,
                                     tiny_encoder, tiny_dataset, probe_texts,
                                     tmp_path):
        texts, domains = probe_texts
        pipeline = self._custom_pipeline(model_config, tiny_vocab, tiny_encoder,
                                         tiny_dataset, dtype)
        expected = pipeline.predictor().predict_proba(texts, domains=domains)
        assert expected.dtype == np.dtype(dtype)
        loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "artifact"))
        assert loaded.feature_channels == ("plm", helper.CHANNEL_KIND)
        # The reloaded plm channel shares the pipeline's backend instance.
        assert loaded.channels[0].backend is loaded.encoder
        np.testing.assert_array_equal(
            loaded.predictor().predict_proba(texts, domains=domains), expected)

    def test_fresh_process_round_trip_bit_identical(self, dtype, model_config,
                                                    tiny_vocab, tiny_encoder,
                                                    tiny_dataset, probe_texts,
                                                    tmp_path):
        """Satellite 3: export here, reload in a *fresh* interpreter that only
        re-runs the registrations, compare probabilities bit-for-bit."""
        texts, domains = probe_texts
        pipeline = self._custom_pipeline(model_config, tiny_vocab, tiny_encoder,
                                         tiny_dataset, dtype)
        expected = pipeline.predictor().predict_proba(texts, domains=domains)
        path = save_pipeline(pipeline, tmp_path / "artifact")

        probes_path = tmp_path / "probes.json"
        probes_path.write_text(json.dumps({"texts": texts, "domains": domains}))
        out_path = tmp_path / "probabilities.npy"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [SRC_DIR, env.get("PYTHONPATH", "")]))
        script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "backend_roundtrip_helper.py")
        result = subprocess.run(
            [sys.executable, script, path, str(probes_path), str(out_path)],
            env=env, capture_output=True, text=True)
        assert result.returncode == 0, result.stderr
        restored = np.load(out_path)
        assert restored.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(restored, expected)


class TestFailureModes:
    def test_unregistered_backend_kind_names_the_register_call(
            self, model_config, tiny_vocab, tiny_encoder, tiny_dataset, tmp_path):
        pipeline = _stock_pipeline(model_config, tiny_vocab,
                                   CachedBackend.from_encoder(tiny_encoder),
                                   tiny_dataset, "float64")
        path = save_pipeline(pipeline, tmp_path / "artifact")
        from repro.encoders.backends import ENCODER_BACKENDS

        saved = ENCODER_BACKENDS.pop("cached")
        try:
            with pytest.raises(PipelineError,
                               match="register_encoder_backend"):
                load_pipeline(path)
        finally:
            ENCODER_BACKENDS["cached"] = saved

    def test_unregistered_channel_kind_names_the_register_call(
            self, model_config, tiny_vocab, tiny_encoder, tiny_dataset, tmp_path):
        pipeline = _stock_pipeline(model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, "float64")
        with default_dtype("float64"):
            model = build_model(helper.MODEL_NAME, model_config)
        backend = LocalBackend(tiny_encoder)
        custom = Pipeline.from_training(
            model, tiny_vocab, backend, max_length=16,
            domain_names=tiny_dataset.domain_names,
            channels=[PLMChannel(backend), helper.TokenCountChannel()])
        path = save_pipeline(custom, tmp_path / "artifact")
        from repro.encoders.channels import FEATURE_CHANNELS

        saved = FEATURE_CHANNELS.pop(helper.CHANNEL_KIND)
        try:
            with pytest.raises(PipelineError,
                               match="register_feature_channel"):
                load_pipeline(path)
        finally:
            FEATURE_CHANNELS[helper.CHANNEL_KIND] = saved

    def test_custom_channel_name_without_specs_fails_readably(
            self, model_config, tiny_vocab, tiny_encoder, tiny_dataset):
        """A names-only pipeline can only recompute stock channels; anything
        else must fail at predictor construction, not mid-request."""
        with default_dtype("float64"):
            model = build_model("textcnn_s", model_config)
        pipeline = Pipeline.from_training(
            model, tiny_vocab, tiny_encoder, max_length=16,
            domain_names=tiny_dataset.domain_names,
            feature_channels=("plm", "style", "mystery_channel"))
        with pytest.raises(PipelineError, match="cannot recompute"):
            pipeline.predictor()


class TestBackendHealthReporting:
    def test_health_reports_cached_backend_state(self, model_config, tiny_vocab,
                                                 tiny_encoder, tiny_dataset,
                                                 probe_texts):
        """Satellite 1: ``Predictor.health()`` surfaces the live backend."""
        texts, domains = probe_texts
        backend = CachedBackend.from_encoder(tiny_encoder)
        pipeline = _stock_pipeline(model_config, tiny_vocab, backend,
                                   tiny_dataset, "float64")
        predictor = pipeline.predictor()
        predictor.predict_proba(texts, domains=domains)
        predictor.predict_proba(texts, domains=domains)  # second pass hits
        health = predictor.health()
        state = health["encoder_backend"]
        assert state["kind"] == "cached"
        assert state["fingerprint"] == spec_fingerprint(backend.to_spec())
        assert state["hits"] >= 1
        assert 0.0 < state["hit_rate"] <= 1.0

    def test_backend_state_includes_predictor_circuit(self, model_config,
                                                      tiny_vocab, tiny_encoder,
                                                      tiny_dataset):
        from repro.reliability import CircuitBreaker

        pipeline = _stock_pipeline(model_config, tiny_vocab, tiny_encoder,
                                   tiny_dataset, "float64")
        predictor = pipeline.predictor(
            encoder_breaker=CircuitBreaker(name="unit"))
        state = predictor.backend_state()
        assert state["kind"] == "local"
        assert state["predictor_circuit"] == "closed"

    def test_remote_backend_state_reports_circuit(self, model_config, tiny_vocab,
                                                  tiny_encoder, tiny_dataset,
                                                  probe_texts):
        texts, domains = probe_texts
        pipeline = _stock_pipeline(model_config, tiny_vocab,
                                   RemoteBackend.in_process(tiny_encoder),
                                   tiny_dataset, "float64")
        predictor = pipeline.predictor()
        predictor.predict_proba(texts, domains=domains)
        state = predictor.backend_state()
        assert state["kind"] == "remote"
        assert state["circuit"] == "closed"
        assert state["requests"] >= 1
