"""Raw-text Predictor: training-parity encoding, batching and micro-batching.

The load-bearing test here is the *parity* suite: the serving path must
produce byte-identical token ids, masks, feature channels and probabilities
to the training-time :class:`repro.data.DataLoader` for the same texts — in
both engine dtypes.  That is the contract that makes an exported pipeline's
predictions trustworthy stand-ins for the table numbers.
"""

import numpy as np
import pytest

from repro.data import DataLoader, MultiDomainNewsDataset, NewsItem
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import build_model
from repro.serve import Pipeline
from repro.tensor import default_dtype

DTYPES = ("float64", "float32")


@pytest.fixture(scope="module")
def probe_items(tiny_splits):
    return tiny_splits.test.items[:8]


def _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset, dtype,
              name="textcnn_s"):
    with default_dtype(dtype):
        model = build_model(name, model_config)
    return Pipeline.from_training(model, tiny_vocab, tiny_encoder, max_length=16,
                                  domain_names=tiny_dataset.domain_names)


@pytest.mark.parametrize("dtype", DTYPES)
class TestTrainingParity:
    """Serve-side encoding must equal the DataLoader encode bit-for-bit."""

    def _loader(self, items, tiny_dataset, tiny_vocab, tiny_encoder, dtype):
        dataset = MultiDomainNewsDataset(items, tiny_dataset.domain_names,
                                         name="parity")
        with default_dtype(dtype):
            return DataLoader(dataset, tiny_vocab, max_length=16,
                              batch_size=len(items), shuffle=False,
                              feature_extractors={
                                  "plm": tiny_encoder.as_feature_extractor(),
                                  "style": style_feature_extractor,
                                  "emotion": emotion_feature_extractor,
                              })

    def test_encode_batch_matches_dataloader(self, dtype, model_config, tiny_vocab,
                                             tiny_encoder, tiny_dataset, probe_items):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset, dtype)
        predictor = pipeline.predictor()
        loader = self._loader(probe_items, tiny_dataset, tiny_vocab, tiny_encoder, dtype)
        expected = loader.full_batch()
        batch = predictor.encode_batch([item.text for item in probe_items],
                                       domains=[item.domain for item in probe_items])
        np.testing.assert_array_equal(batch.token_ids, expected.token_ids)
        assert batch.mask.dtype == expected.mask.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(batch.mask, expected.mask)
        np.testing.assert_array_equal(batch.domains, expected.domains)
        assert set(batch.features) == set(expected.features)
        for name in expected.features:
            assert batch.features[name].dtype == expected.features[name].dtype
            np.testing.assert_array_equal(batch.features[name],
                                          expected.features[name])

    def test_probabilities_match_training_batch_path(self, dtype, model_config,
                                                     tiny_vocab, tiny_encoder,
                                                     tiny_dataset, probe_items):
        """predict_proba over raw text == model.predict_proba over loader batch."""
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset, dtype)
        loader = self._loader(probe_items, tiny_dataset, tiny_vocab, tiny_encoder, dtype)
        with default_dtype(dtype):
            expected = pipeline.model.predict_proba(loader.full_batch())
        observed = pipeline.predictor().predict_proba(
            [item.text for item in probe_items],
            domains=[item.domain for item in probe_items])
        np.testing.assert_array_equal(observed, expected)

    def test_truncation_parity_for_overlong_text(self, dtype, model_config, tiny_vocab,
                                                 tiny_encoder, tiny_dataset):
        long_text = " ".join(f"token{i}" for i in range(50))
        items = [NewsItem(text=long_text, label=0, domain=0,
                          domain_name=tiny_dataset.domain_names[0])]
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset, dtype)
        loader = self._loader(items, tiny_dataset, tiny_vocab, tiny_encoder, dtype)
        batch = pipeline.predictor().encode_batch([long_text], domains=[0])
        np.testing.assert_array_equal(batch.token_ids, loader.full_batch().token_ids)
        assert batch.token_ids.shape[1] == 16
        assert batch.mask.sum() == 16


class TestPredict:
    def test_predictions_are_structured(self, model_config, tiny_vocab, tiny_encoder,
                                        tiny_dataset, probe_items):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64")
        predictions = pipeline.predictor().predict(
            [item.text for item in probe_items],
            domains=[item.domain for item in probe_items])
        assert len(predictions) == len(probe_items)
        for item, prediction in zip(probe_items, predictions):
            assert prediction.label in (0, 1)
            assert prediction.label_name == ("fake" if prediction.label else "real")
            assert prediction.probabilities[1] == pytest.approx(
                prediction.probability_fake)
            assert sum(prediction.probabilities) == pytest.approx(1.0)
            assert prediction.domain == item.domain_name
            assert prediction.latency_ms > 0

    def test_empty_input(self, model_config, tiny_vocab, tiny_encoder, tiny_dataset):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64")
        assert pipeline.predictor().predict([]) == []

    def test_domain_resolution(self, model_config, tiny_vocab, tiny_encoder,
                               tiny_dataset):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64")
        predictor = pipeline.predictor(default_domain=tiny_dataset.domain_names[2])
        assert predictor.default_domain == 2
        batch = predictor.encode_batch(["a b", "c d", "e f"],
                                       domains=[None, "science", 1])
        science = tiny_dataset.domain_names.index("science")
        np.testing.assert_array_equal(batch.domains, [2, science, 1])
        with pytest.raises(KeyError, match="unknown domain"):
            predictor.encode_batch(["x"], domains=["galactic"])
        with pytest.raises(KeyError, match="outside"):
            predictor.encode_batch(["x"], domains=[99])
        with pytest.raises(ValueError, match="domains"):
            predictor.encode_batch(["x", "y"], domains=[0])

    def test_domain_conditioning_reaches_the_model(self, model_config, tiny_vocab,
                                                   tiny_encoder, tiny_dataset):
        """A domain-gated model must produce different outputs per domain."""
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64", name="mdfend")
        predictor = pipeline.predictor()
        text = "dom0_topic1 common_word emo_neutral2"
        p0 = predictor.predict_proba([text], domains=[0])
        p5 = predictor.predict_proba([text], domains=[5])
        assert not np.array_equal(p0, p5)

    def test_bucketed_padding_shrinks_time_axis(self, model_config, tiny_vocab,
                                                tiny_encoder, tiny_dataset):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64")
        bucketed = pipeline.predictor(bucket_size=4)
        batch = bucketed.encode_batch(["a b c", "d e f g h"])
        assert batch.token_ids.shape[1] == 8  # 5 tokens -> next multiple of 4
        assert batch.features["plm"].shape[1] == 8
        # never exceeds the training max_length, default path always pads to it
        wide = bucketed.encode_batch([" ".join(["t"] * 40)])
        assert wide.token_ids.shape[1] == 16
        default = pipeline.predictor().encode_batch(["a b c"])
        assert default.token_ids.shape[1] == 16

    def test_predict_iter_streams_in_chunks(self, model_config, tiny_vocab,
                                            tiny_encoder, tiny_dataset, probe_items):
        pipeline = _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                             "float64")
        predictor = pipeline.predictor()
        texts = [item.text for item in probe_items]
        domains = [item.domain for item in probe_items]
        streamed = list(predictor.predict_iter(iter(texts), domains=iter(domains),
                                               batch_size=3))
        # Exact equality holds chunk-by-chunk (same batch shapes); against the
        # one-shot full batch only up to BLAS batch-shape rounding (see the
        # "bit-exactness" notes in PERFORMANCE.md).
        chunked = [p for start in range(0, len(texts), 3)
                   for p in predictor.predict(texts[start:start + 3],
                                              domains=domains[start:start + 3])]
        assert [p.probabilities for p in streamed] == [p.probabilities for p in chunked]
        direct = predictor.predict(texts, domains=domains)
        np.testing.assert_allclose([p.probabilities for p in streamed],
                                   [p.probabilities for p in direct], atol=1e-12)
        with pytest.raises(ValueError, match="shorter"):
            list(predictor.predict_iter(texts, domains=domains[:2], batch_size=3))


class TestMicroBatcher:
    @pytest.fixture()
    def predictor(self, model_config, tiny_vocab, tiny_encoder, tiny_dataset):
        return _pipeline(model_config, tiny_vocab, tiny_encoder, tiny_dataset,
                         "float64").predictor()

    def test_flushes_when_full_and_on_drain(self, predictor, probe_items):
        queue = predictor.microbatch(max_batch=3, max_latency_ms=1e9)
        tickets = [queue.submit(item.text, item.domain) for item in probe_items]
        assert sum(ticket.done for ticket in tickets) == 6  # two full batches of 3
        assert len(queue) == 2
        queue.drain()
        assert all(ticket.done for ticket in tickets)
        assert queue.batches_flushed == 3
        assert queue.items_flushed == len(probe_items)
        assert queue.flush_reasons == {"full": 2, "latency": 0, "drain": 1}

    def test_latency_deadline_flushes_on_next_submit(self, predictor, probe_items):
        import time

        queue = predictor.microbatch(max_batch=100, max_latency_ms=5.0)
        first = queue.submit(probe_items[0].text)
        time.sleep(0.02)
        queue.submit(probe_items[1].text)
        assert first.done  # overdue batch flushed before the new ticket queued
        assert queue.flush_reasons["latency"] == 1
        assert len(queue) == 1

    def test_results_match_direct_predict(self, predictor, probe_items):
        texts = [item.text for item in probe_items]
        domains = [item.domain for item in probe_items]
        with predictor.microbatch(max_batch=len(texts), max_latency_ms=1e9) as queue:
            tickets = [queue.submit(text, domain)
                       for text, domain in zip(texts, domains)]
        direct = predictor.predict(texts, domains=domains)
        for ticket, expected in zip(tickets, direct):
            assert ticket.result.probabilities == expected.probabilities
            assert ticket.result.domain == expected.domain
            assert ticket.result.latency_ms > 0

    def test_unflushed_ticket_raises(self, predictor):
        queue = predictor.microbatch(max_batch=10, max_latency_ms=1e9)
        ticket = queue.submit("pending text")
        assert not ticket.done
        with pytest.raises(RuntimeError, match="still queued"):
            _ = ticket.result

    def test_invalid_parameters_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.microbatch(max_batch=0)
        with pytest.raises(ValueError):
            predictor.microbatch(max_latency_ms=-1.0)
        with pytest.raises(ValueError):
            type(predictor)(predictor.pipeline, bucket_size=0)

    def test_bad_domain_fails_in_its_own_submit(self, predictor, probe_items):
        """A bad request must not poison the batch it would flush with."""
        queue = predictor.microbatch(max_batch=3, max_latency_ms=1e9)
        good = queue.submit(probe_items[0].text, probe_items[0].domain)
        with pytest.raises(KeyError, match="unknown domain"):
            queue.submit("bad request", "galactic")
        assert len(queue) == 1  # the good ticket is still queued
        queue.drain()
        assert good.done

    def test_flush_failure_restores_pending_tickets(self, predictor, probe_items):
        queue = predictor.microbatch(max_batch=10, max_latency_ms=1e9)
        tickets = [queue.submit(item.text, item.domain) for item in probe_items[:3]]
        original_predict = predictor.predict
        try:
            def boom(*args, **kwargs):
                raise RuntimeError("transient engine failure")
            predictor.predict = boom
            with pytest.raises(RuntimeError, match="transient"):
                queue.drain()
        finally:
            predictor.predict = original_predict
        assert len(queue) == 3  # nothing lost
        queue.drain()
        assert all(ticket.done for ticket in tickets)

    def test_default_domain_none_means_domain_zero(self, predictor):
        fallback = type(predictor)(predictor.pipeline, default_domain=None)
        assert fallback.default_domain == 0
        batch = fallback.encode_batch(["a b"])
        assert batch.domains.tolist() == [0]
