"""Custom detector + custom feature channel for the fresh-process round-trip.

Imported by ``tests/serve/test_backend_pipeline.py`` (the exporting process)
and executed as a script by the fresh subprocess it launches (the importing
process), so both sides perform exactly the same ``register_model`` /
``register_feature_channel`` calls before touching the artifact — the
documented recipe for round-tripping custom components.

As a script: ``python backend_roundtrip_helper.py <artifact> <probes.json>
<out.npy>`` loads the pipeline and saves ``predict_proba`` of the probe
texts to ``out.npy``.
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.encoders import FeatureChannel, register_feature_channel
from repro.encoders.channels import FEATURE_CHANNELS
from repro.models import FakeNewsDetector, available_models, register_model
from repro.models.base import pooled_plm
from repro.tensor import Tensor

CHANNEL_KIND = "unit_token_count"
MODEL_NAME = "unit_channel_custom"


class TokenCountChannel(FeatureChannel):
    """One scalar per item: its whitespace token count."""

    kind = CHANNEL_KIND

    def extract(self, items, token_ids, mask):
        return np.array([[float(len(item.text.split()))] for item in items])

    def serve(self, request):
        return np.array([[float(len(tokens))] for tokens in request.token_lists])

    def to_spec(self):
        return {"kind": self.kind}

    @classmethod
    def from_spec(cls, spec):
        return cls()


class ChannelCustomDetector(FakeNewsDetector):
    """Pooled PLM features concatenated with the custom token-count channel."""

    name = MODEL_NAME
    required_features = ("plm", CHANNEL_KIND)

    def __init__(self, config):
        super().__init__(config)
        rng = np.random.default_rng(config.seed)
        self.classifier = self._build_classifier(self.feature_dim, rng)

    @property
    def feature_dim(self):
        return self.config.plm_dim + 1

    def extract_features(self, batch):
        counts = Tensor(batch.feature(CHANNEL_KIND))
        return Tensor.cat([pooled_plm(batch), counts], axis=1)


def register() -> None:
    if CHANNEL_KIND not in FEATURE_CHANNELS:
        register_feature_channel(CHANNEL_KIND, TokenCountChannel)
    if MODEL_NAME not in available_models():
        register_model(MODEL_NAME, ChannelCustomDetector)


def unregister() -> None:
    from repro.models import registry

    FEATURE_CHANNELS.pop(CHANNEL_KIND, None)
    registry._REGISTRY.pop(MODEL_NAME, None)


def main(argv: list[str]) -> None:
    artifact, probes_path, out_path = argv
    register()
    from repro.serve import load_pipeline

    with open(probes_path, "r", encoding="utf-8") as handle:
        probes = json.load(handle)
    pipeline = load_pipeline(artifact)
    probabilities = pipeline.predictor().predict_proba(
        probes["texts"], domains=probes["domains"])
    np.save(out_path, probabilities)


if __name__ == "__main__":
    main(sys.argv[1:])
