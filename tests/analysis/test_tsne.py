"""t-SNE projection and the domain-mixing score (Figure 2 machinery)."""

import numpy as np
import pytest

from repro.analysis import domain_mixing_score, feature_domain_mixing, tsne


def _two_clusters(n_per_cluster: int = 30, separation: float = 12.0, dim: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n_per_cluster, dim))
    b = rng.standard_normal((n_per_cluster, dim)) + separation
    features = np.vstack([a, b])
    labels = np.array([0] * n_per_cluster + [1] * n_per_cluster)
    return features, labels


class TestTsne:
    def test_output_shape(self):
        features, _ = _two_clusters(20)
        embedding = tsne(features, iterations=80, seed=0)
        assert embedding.shape == (40, 2)
        assert np.isfinite(embedding).all()

    def test_separated_clusters_remain_separated(self):
        features, labels = _two_clusters(25, separation=25.0)
        embedding = tsne(features, iterations=200, seed=0)
        centroid_a = embedding[labels == 0].mean(axis=0)
        centroid_b = embedding[labels == 1].mean(axis=0)
        spread = max(embedding[labels == 0].std(), embedding[labels == 1].std())
        assert np.linalg.norm(centroid_a - centroid_b) > spread

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 4)))

    def test_deterministic_given_seed(self):
        features, _ = _two_clusters(15)
        a = tsne(features, iterations=50, seed=3)
        b = tsne(features, iterations=50, seed=3)
        np.testing.assert_allclose(a, b)


class TestDomainMixingScore:
    def test_separated_domains_score_low(self):
        features, labels = _two_clusters(30, separation=30.0, dim=2)
        score = domain_mixing_score(features, labels, k=8)
        assert score < 0.2

    def test_fully_mixed_domains_score_high(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((80, 2))
        labels = rng.integers(0, 2, 80)
        score = domain_mixing_score(features, labels, k=10)
        assert score > 0.6

    def test_score_bounded(self):
        rng = np.random.default_rng(1)
        features = rng.standard_normal((40, 2))
        labels = rng.integers(0, 4, 40)
        assert 0.0 <= domain_mixing_score(features, labels, k=5) <= 1.0

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            domain_mixing_score(np.zeros((5, 2)), np.zeros(5), k=10)


class TestFeatureDomainMixing:
    def test_subsamples_and_reports(self):
        features, labels = _two_clusters(40, separation=1.0)
        result = feature_domain_mixing(features, labels, max_points=30, k=5,
                                       tsne_iterations=40)
        assert result["embedding"].shape[0] == 30
        assert 0.0 <= result["mixing_score"] <= 1.0

    def test_mixed_scores_higher_than_separated(self):
        separated, labels = _two_clusters(30, separation=40.0)
        mixed, _ = _two_clusters(30, separation=0.0)
        score_separated = feature_domain_mixing(separated, labels, tsne_iterations=80,
                                                seed=1)["mixing_score"]
        score_mixed = feature_domain_mixing(mixed, labels, tsne_iterations=80,
                                            seed=1)["mixing_score"]
        assert score_mixed > score_separated
