"""Case-study runner (Figure 3) and the domain-bias audit (Table III)."""

import numpy as np
import pytest

from repro.analysis import (
    TABLE3_DOMAINS,
    audit_models,
    case_study_summary,
    run_case_study,
)
from repro.data import make_case_study_probes
from repro.models import build_model


@pytest.fixture(scope="module")
def probe_items():
    return make_case_study_probes(dataset_seed=3, scale=0.5)


class TestCaseStudy:
    def test_rows_structure(self, probe_items, model_config, tiny_vocab, tiny_dataset,
                            feature_extractors):
        models = {"a": build_model("bert", model_config),
                  "b": build_model("textcnn_s", model_config)}
        rows = run_case_study(probe_items, models, tiny_vocab, tiny_dataset.domain_names,
                              max_length=16, feature_extractors=feature_extractors)
        assert len(rows) == len(probe_items)
        for row in rows:
            assert {p.model for p in row.predictions} == {"a", "b"}
            for prediction in row.predictions:
                assert 0.0 <= prediction.probability_true_label <= 1.0
                assert prediction.correct == (prediction.predicted_label == row.true_label)

    def test_as_dict(self, probe_items, model_config, tiny_vocab, tiny_dataset,
                     feature_extractors):
        models = {"only": build_model("bert", model_config)}
        rows = run_case_study(probe_items, models, tiny_vocab, tiny_dataset.domain_names,
                              max_length=16, feature_extractors=feature_extractors)
        payload = rows[0].as_dict()
        assert "only" in payload["predictions"]
        assert payload["domain"] in tiny_dataset.domain_names

    def test_summary_aggregates(self, probe_items, model_config, tiny_vocab, tiny_dataset,
                                feature_extractors):
        models = {"m": build_model("textcnn_s", model_config)}
        rows = run_case_study(probe_items, models, tiny_vocab, tiny_dataset.domain_names,
                              max_length=16, feature_extractors=feature_extractors)
        summary = case_study_summary(rows)
        assert set(summary) == {"m"}
        assert 0.0 <= summary["m"]["accuracy"] <= 1.0
        assert 0.0 <= summary["m"]["mean_confidence_true_label"] <= 1.0


class TestBiasAudit:
    def test_audit_structure(self, model_config, test_loader):
        models = {"one": build_model("bert", model_config),
                  "two": build_model("textcnn_s", model_config)}
        audit = audit_models(models, test_loader)
        table = audit.as_table()
        assert set(table) == {"one", "two"}
        present_domains = {d for d in TABLE3_DOMAINS if d in test_loader.dataset.domain_names}
        assert len(audit.rows) == len(models) * len(present_domains)
        for values in table.values():
            for value in values.values():
                assert 0.0 <= value <= 1.0

    def test_skew_summary_keys(self, model_config, test_loader):
        models = {"one": build_model("bert", model_config)}
        summary = audit_models(models, test_loader).skew_summary()
        entry = summary["one"]
        assert set(entry) >= {"fake_heavy_fpr", "real_heavy_fnr",
                              "fake_heavy_overcalls_fake", "real_heavy_overcalls_real"}

    def test_unknown_domains_fall_back_to_all(self, model_config, test_loader):
        models = {"one": build_model("bert", model_config)}
        audit = audit_models(models, test_loader, domains=("nonexistent",))
        assert len(audit.rows) == len(test_loader.dataset.domain_names)
