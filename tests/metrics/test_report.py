"""The combined evaluation report (rows of Tables VI-IX)."""

import numpy as np
import pytest

from repro.metrics import evaluate_predictions


class TestEvaluationReport:
    def _report(self):
        y_true = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        y_pred = np.array([1, 0, 1, 1, 1, 0, 0, 0])
        domains = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        return evaluate_predictions(y_true, y_pred, domains, ["alpha", "beta"],
                                    model_name="toy", extras={"note": "x"})

    def test_overall_and_per_domain_f1(self):
        report = self._report()
        assert report.model == "toy"
        assert 0 < report.overall_f1 <= 1
        assert set(report.per_domain_f1) == {"alpha", "beta"}
        assert report.overall_accuracy == pytest.approx(0.75)

    def test_bias_fields_consistent(self):
        report = self._report()
        assert report.total == pytest.approx(report.fned + report.fped)

    def test_as_dict_contains_extras(self):
        payload = self._report().as_dict()
        assert payload["note"] == "x"
        assert payload["f1"] == pytest.approx(self._report().overall_f1)

    def test_table_row_order(self):
        report = self._report()
        row = report.table_row(["beta", "alpha"])
        assert row[0] == pytest.approx(report.per_domain_f1["beta"])
        assert row[-1] == pytest.approx(report.total)
        assert len(row) == 2 + 4

    def test_perfect_predictions(self):
        y = np.array([1, 0, 1, 0])
        domains = np.array([0, 0, 1, 1])
        report = evaluate_predictions(y, y, domains, ["a", "b"])
        assert report.overall_f1 == 1.0
        assert report.total == 0.0

    def test_missing_domain_gets_zero_f1(self):
        y = np.array([1, 0])
        report = evaluate_predictions(y, y, np.array([0, 0]), ["a", "b"])
        assert report.per_domain_f1["b"] == 0.0
