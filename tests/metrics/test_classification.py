"""Classification metrics against hand-computed values."""

import numpy as np
import pytest

from repro.metrics import accuracy, confusion_matrix, f1_score, macro_f1, precision_recall_f1


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 2]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))

    def test_multiclass(self):
        matrix = confusion_matrix(np.array([0, 1, 2]), np.array([0, 2, 2]), num_classes=3)
        assert matrix[1, 2] == 1 and matrix.sum() == 3


class TestAccuracy:
    def test_value(self):
        assert accuracy(np.array([1, 0, 1, 1]), np.array([1, 1, 1, 0])) == pytest.approx(0.5)

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0


class TestF1:
    def test_known_value(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_perfect_and_zero(self):
        y = np.array([0, 1, 0, 1])
        assert f1_score(y, y) == 1.0
        assert f1_score(y, 1 - y) == 0.0

    def test_no_positive_predictions(self):
        y_true = np.array([1, 1, 0])
        y_pred = np.array([0, 0, 0])
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)
        assert precision == 0.0 and recall == 0.0 and f1 == 0.0

    def test_macro_f1_is_mean_of_class_f1(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        per_class = [f1_score(y_true, y_pred, positive_class=c) for c in (0, 1)]
        assert macro_f1(y_true, y_pred) == pytest.approx(np.mean(per_class))

    def test_macro_f1_single_class_present(self):
        y_true = np.array([1, 1, 1])
        y_pred = np.array([1, 1, 1])
        assert macro_f1(y_true, y_pred) == 1.0

    def test_macro_f1_empty(self):
        assert macro_f1(np.array([]), np.array([])) == 0.0

    def test_macro_f1_symmetry_under_label_swap(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, 50)
        y_pred = rng.integers(0, 2, 50)
        assert macro_f1(y_true, y_pred) == pytest.approx(macro_f1(1 - y_true, 1 - y_pred))
