"""Domain-bias metrics: FNR/FPR, FPED, FNED, Total and disparate mistreatment."""

import numpy as np
import pytest

from repro.metrics import (
    domain_bias_report,
    false_negative_rate,
    false_positive_rate,
    fned,
    fped,
    rolling_domain_bias,
    satisfies_disparate_mistreatment,
    total_equality_difference,
)
from repro.metrics.fairness import DomainBiasReport


class TestErrorRates:
    def test_false_positive_rate(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 1])
        assert false_positive_rate(y_true, y_pred) == pytest.approx(2 / 3)

    def test_false_negative_rate(self):
        y_true = np.array([1, 1, 1, 0])
        y_pred = np.array([0, 1, 0, 0])
        assert false_negative_rate(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_classes(self):
        assert false_positive_rate(np.array([1, 1]), np.array([1, 1])) == 0.0
        assert false_negative_rate(np.array([0, 0]), np.array([0, 0])) == 0.0


class TestDomainBiasReport:
    def _toy(self):
        #            domain 0 (4 items)     | domain 1 (4 items)
        y_true = np.array([1, 1, 0, 0,        1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 0,        1, 1, 0, 0])
        domains = np.array([0, 0, 0, 0,       1, 1, 1, 1])
        return y_true, y_pred, domains

    def test_per_domain_rates(self):
        report = domain_bias_report(*self._toy(), domain_names=["a", "b"])
        assert report.fnr_per_domain["a"] == pytest.approx(0.5)
        assert report.fpr_per_domain["a"] == pytest.approx(0.5)
        assert report.fnr_per_domain["b"] == 0.0
        assert report.fpr_per_domain["b"] == 0.0

    def test_equality_differences(self):
        report = domain_bias_report(*self._toy(), domain_names=["a", "b"])
        # Overall FNR = 0.25, FPR = 0.25; |0.25-0.5| + |0.25-0| = 0.5 each.
        assert report.fned == pytest.approx(0.5)
        assert report.fped == pytest.approx(0.5)
        assert report.total == pytest.approx(1.0)

    def test_unbiased_predictions_give_zero(self):
        y_true = np.array([1, 0, 1, 0])
        domains = np.array([0, 0, 1, 1])
        report = domain_bias_report(y_true, y_true, domains, ["a", "b"])
        assert report.total == 0.0
        assert satisfies_disparate_mistreatment(report)

    def test_functional_wrappers(self):
        y_true, y_pred, domains = self._toy()
        assert fned(y_true, y_pred, domains, 2) == pytest.approx(0.5)
        assert fped(y_true, y_pred, domains, 2) == pytest.approx(0.5)
        assert total_equality_difference(y_true, y_pred, domains, 2) == pytest.approx(1.0)

    def test_empty_domain_contributes_zero(self):
        y_true = np.array([1, 0])
        y_pred = np.array([1, 0])
        domains = np.array([0, 0])
        report = domain_bias_report(y_true, y_pred, domains, ["a", "b"])
        assert report.fnr_per_domain["b"] == 0.0
        assert report.total == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            domain_bias_report(np.array([0, 1]), np.array([0]), np.array([0, 0]), ["a"])

    def test_disparate_mistreatment_tolerance(self):
        y_true = np.array([1, 1, 0, 0, 1, 1, 0, 0])
        y_pred = np.array([1, 0, 0, 0, 1, 1, 1, 0])
        domains = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        report = domain_bias_report(y_true, y_pred, domains, ["a", "b"])
        assert not satisfies_disparate_mistreatment(report, tolerance=0.05)
        assert satisfies_disparate_mistreatment(report, tolerance=1.0)

    def test_as_dict_round_trip(self):
        report = domain_bias_report(*self._toy(), domain_names=["a", "b"])
        payload = report.as_dict()
        assert payload["total"] == pytest.approx(report.total)
        assert set(payload["fnr_per_domain"]) == {"a", "b"}

    def test_more_biased_predictions_have_larger_total(self):
        rng = np.random.default_rng(0)
        domains = np.repeat(np.arange(4), 50)
        y_true = rng.integers(0, 2, 200)
        fair_pred = y_true.copy()
        flip = rng.random(200) < 0.1
        fair_pred[flip] = 1 - fair_pred[flip]
        biased_pred = y_true.copy()
        biased_pred[domains == 0] = 1   # always call domain 0 fake
        biased_pred[domains == 1] = 0   # always call domain 1 real
        fair_total = total_equality_difference(y_true, fair_pred, domains, 4)
        biased_total = total_equality_difference(y_true, biased_pred, domains, 4)
        assert biased_total > fair_total


class TestFromDict:
    def _report(self):
        y_true = np.array([1, 1, 0, 0, 1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 0, 1, 1, 0, 0])
        domains = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        return domain_bias_report(y_true, y_pred, domains, ["a", "b"])

    def test_round_trip_preserves_every_field(self):
        report = self._report()
        restored = DomainBiasReport.from_dict(report.as_dict())
        assert restored == report
        assert restored.total == pytest.approx(report.total)

    def test_json_round_trip(self):
        import json

        report = self._report()
        restored = DomainBiasReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert restored == report

    def test_recovers_domain_order(self):
        restored = DomainBiasReport.from_dict(self._report().as_dict())
        assert restored.domain_names == ["a", "b"]

    def test_rejects_non_report_payloads(self):
        with pytest.raises(ValueError, match="not a serialised"):
            DomainBiasReport.from_dict({"fnr_overall": 0.1})
        with pytest.raises(ValueError, match="not a serialised"):
            DomainBiasReport.from_dict({})

    def test_rejects_mismatched_domain_sets(self):
        payload = self._report().as_dict()
        payload["fpr_per_domain"] = {"a": 0.0, "c": 0.0}
        with pytest.raises(ValueError, match="different domains"):
            DomainBiasReport.from_dict(payload)

    def test_deviation_is_per_domain_total_contribution(self):
        report = self._report()
        assert sum(report.deviation(name) for name in report.domain_names) \
            == pytest.approx(report.total)
        expected = (abs(report.fnr_per_domain["a"] - report.fnr_overall)
                    + abs(report.fpr_per_domain["a"] - report.fpr_overall))
        assert report.deviation("a") == pytest.approx(expected)

    def test_deviation_unknown_domain(self):
        with pytest.raises(KeyError, match="unknown domain"):
            self._report().deviation("nope")


class TestRollingDomainBias:
    def test_matches_full_report_when_window_covers_history(self):
        y_true = np.array([1, 0, 1, 0, 1, 0])
        y_pred = np.array([1, 1, 0, 0, 1, 0])
        domains = np.array([0, 0, 0, 1, 1, 1])
        full = domain_bias_report(y_true, y_pred, domains, ["a", "b"])
        rolled = rolling_domain_bias(y_true, y_pred, domains, ["a", "b"],
                                     window=100)
        assert rolled == full

    def test_only_trailing_window_contributes(self):
        # Old traffic: domain 0 always wrong.  Recent traffic: perfect.
        y_true = np.array([1, 1, 1, 1, 1, 0, 1, 0])
        y_pred = np.array([0, 0, 0, 0, 1, 0, 1, 0])
        domains = np.array([0, 0, 0, 0, 0, 0, 1, 1])
        rolled = rolling_domain_bias(y_true, y_pred, domains, ["a", "b"],
                                     window=4)
        assert rolled.total == pytest.approx(0.0)
        full = rolling_domain_bias(y_true, y_pred, domains, ["a", "b"],
                                   window=8)
        assert full.total > 0.0

    def test_window_slides_with_arrival_order(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([0, 0, 0, 0])
        domains = np.array([0, 0, 1, 1])
        rolled = rolling_domain_bias(y_true, y_pred, domains, ["a", "b"],
                                     window=2)
        # Only the two domain-1 negatives remain: no errors at all.
        assert rolled.fnr_per_domain == {"a": 0.0, "b": 0.0}
        assert rolled.fnr_overall == 0.0

    def test_rejects_bad_window_and_shapes(self):
        with pytest.raises(ValueError, match="window must be positive"):
            rolling_domain_bias(np.array([1]), np.array([1]), np.array([0]),
                                ["a"], window=0)
        with pytest.raises(ValueError, match="identical shapes"):
            rolling_domain_bias(np.array([1, 0]), np.array([1]),
                                np.array([0, 0]), ["a"], window=4)
