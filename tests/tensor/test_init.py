"""Weight-initialisation schemes."""

import numpy as np
import pytest

from repro.tensor import init


class TestInitialisers:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng=rng)
        limit = np.sqrt(6.0 / 150)
        assert w.requires_grad
        assert w.numpy().max() <= limit and w.numpy().min() >= -limit

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((200, 200), rng=rng)
        assert abs(w.numpy().std() - np.sqrt(2.0 / 400)) < 5e-3

    def test_kaiming_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng=rng)
        limit = np.sqrt(6.0 / 64)
        assert np.abs(w.numpy()).max() <= limit

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.normal((50, 50), std=0.3, rng=rng)
        assert abs(w.numpy().std() - 0.3) < 0.05

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)).numpy() == 0.0)
        assert np.all(init.ones((3,)).numpy() == 1.0)

    def test_reproducible_with_same_rng_seed(self):
        a = init.xavier_uniform((10, 10), rng=np.random.default_rng(5))
        b = init.xavier_uniform((10, 10), rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_fans_for_conv_like_shapes(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((8, 4, 3), rng=rng)
        assert w.shape == (8, 4, 3)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((), rng=np.random.default_rng(0))

    def test_1d_shape(self):
        w = init.xavier_uniform((16,), rng=np.random.default_rng(0))
        assert w.shape == (16,)
